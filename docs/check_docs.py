#!/usr/bin/env python
"""The docs build: validate the documentation tree (CI-required).

Checks, in order:

1. **Links** — every relative Markdown link in ``docs/*.md``, ``README.md``
   and ``experiments/README.md`` resolves to an existing file (anchors are
   stripped; external ``http(s)``/``mailto`` links are ignored).
2. **Paper-map coverage** — ``docs/paper-map.md`` mentions every algorithm
   registered in ``repro.algorithms.registry.REGISTRY`` and every
   incremental checker in ``CHECKERS``, and every ``src/``/``tests/`` path
   it cites exists.
3. **API reference freshness** — ``docs/api.md`` matches what
   ``docs/gen_api.py`` generates from the current docstrings.

Exits non-zero with one line per problem; run ``python docs/check_docs.py``
locally before pushing docs changes.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(DOCS))

#: Markdown files whose relative links must resolve.
LINKED_FILES = sorted(DOCS.glob("*.md")) + [
    REPO_ROOT / "README.md",
    REPO_ROOT / "experiments" / "README.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CITED_PATH = re.compile(r"`((?:src|tests|experiments|benchmarks)/[\w./-]+)`")


def check_links(problems: list) -> None:
    for md_file in LINKED_FILES:
        if not md_file.exists():
            problems.append(f"{md_file}: expected documentation file is missing")
            continue
        text = md_file.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (md_file.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md_file.relative_to(REPO_ROOT)}: broken link -> {target}"
                )


def check_paper_map(problems: list) -> None:
    from repro.algorithms.registry import CHECKERS, REGISTRY

    paper_map = DOCS / "paper-map.md"
    if not paper_map.exists():
        problems.append("docs/paper-map.md is missing")
        return
    text = paper_map.read_text(encoding="utf-8")
    for name in sorted(REGISTRY) + sorted(CHECKERS):
        if f"`{name}`" not in text:
            problems.append(
                f"docs/paper-map.md: registered algorithm/checker {name!r} "
                "is not covered by the paper-to-code map"
            )
    for cited in _CITED_PATH.findall(text):
        if not (REPO_ROOT / cited).exists():
            problems.append(f"docs/paper-map.md: cited path does not exist: {cited}")


def check_api_reference(problems: list) -> None:
    import gen_api

    api_md = DOCS / "api.md"
    if not api_md.exists():
        problems.append("docs/api.md is missing (run: python docs/gen_api.py)")
        return
    if api_md.read_text(encoding="utf-8") != gen_api.render():
        problems.append(
            "docs/api.md is stale: regenerate it with `python docs/gen_api.py`"
        )


def main() -> int:
    problems: list = []
    check_links(problems)
    check_paper_map(problems)
    check_api_reference(problems)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        print(f"\ndocs build failed with {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs build OK ({len(LINKED_FILES)} files link-checked, "
          "paper-map coverage complete, api.md fresh)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
