#!/usr/bin/env python
"""Generate docs/api.md from the public surface's docstrings.

The reference is *generated*, never hand-edited: each curated symbol
contributes its signature, its docstring summary, and (for classes) its
public methods.  Because everything comes from the live docstrings, the
reference cannot drift from the code — and ``--check`` (run by
``docs/check_docs.py`` and CI) fails when ``docs/api.md`` was not
regenerated after a docstring change::

    python docs/gen_api.py          # rewrite docs/api.md
    python docs/gen_api.py --check  # verify it is up to date
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUTPUT = REPO_ROOT / "docs" / "api.md"

#: The curated public surface: (section title, module, symbol names).
SECTIONS = [
    ("Unified verification API", "repro.core.api",
     ["verify", "verify_trace", "minimal_k", "minimal_k_bound", "MinimalKBound"]),
    ("Operation and history model", "repro.core.operation",
     ["Operation", "read", "write"]),
    ("Histories", "repro.core.history",
     ["History", "MultiHistory"]),
    ("Streaming builders", "repro.core.builder",
     ["HistoryBuilder", "TraceBuilder"]),
    ("Results and verdicts", "repro.core.result",
     ["VerificationResult", "StreamVerdict"]),
    ("Algorithm registry", "repro.algorithms.registry",
     ["AlgorithmSpec", "get_algorithm", "algorithms_for_k", "available_algorithms",
      "CheckerSpec", "get_checker"]),
    ("Incremental checkers", "repro.algorithms.online",
     ["Checker", "IncrementalGKChecker", "IncrementalLBTChecker"]),
    ("Vectorized kernel tier", "repro.core.vector",
     ["resolve_kernel", "available", "set_default_enabled", "verify_columnar",
      "columnar_from_numpy"]),
    ("Batch engine", "repro.engine.engine",
     ["Engine"]),
    ("Streaming engine", "repro.engine.streaming",
     ["StreamingEngine", "StreamSession"]),
    ("Adaptive tier ladder", "repro.engine.tiering",
     ["get_tier_policy", "TierPolicy", "TierDecision", "TierStats",
      "TierStreamState", "TraceFeatures", "CostModel"]),
    ("Durable state stores", "repro.state",
     ["StateStore", "open_state_store", "available_backends",
      "write_file_atomic", "fsync_directory", "JsonFileStateStore",
      "SqliteStateStore", "SegmentStateStore", "TimelineRetention"]),
    ("Audit service", "repro.service.server",
     ["AuditServer"]),
    ("Service client", "repro.service.client",
     ["AuditClient", "verify_remote"]),
    ("Trace I/O (native formats)", "repro.io.formats",
     ["stream_trace", "load_trace", "dump_jsonl", "iter_jsonl", "load_jsonl",
      "follow_jsonl", "JsonlDecoder", "dump_csv", "iter_csv", "load_csv",
      "load_columnar"]),
    ("Out-of-core traces (.rcol)", "repro.io.rcol",
     ["RcolFile", "RcolWriter", "iter_rcol", "dump_rcol"]),
    ("Format registry", "repro.io.registry",
     ["TraceFormat", "register_format", "get_format", "detect_format",
      "available_formats", "dump_trace"]),
    ("Foreign-trace interop", "repro.io.interop",
     ["iter_jepsen", "load_jepsen", "dump_jepsen", "iter_porcupine",
      "load_porcupine", "dump_porcupine"]),
    ("Experiment harness", "repro.experiments",
     ["ExperimentSpec", "load_spec", "run_experiment", "TrialResult",
      "ExperimentReport", "load_report", "validate_report"]),
    ("Staleness analysis", "repro.analysis.spectrum",
     ["staleness_bucket", "atomicity_spectrum", "StalenessSpectrum",
      "OnlineSpectrum"]),
    ("Reports", "repro.analysis.report",
     ["audit_trace", "format_table", "TraceVerificationReport",
      "StreamVerificationReport", "ServiceReport"]),
]

HEADER = """\
# API reference

*Generated from docstrings by `docs/gen_api.py` — do not edit by hand.
Regenerate with `python docs/gen_api.py`; CI fails if this file is stale.*

Import everything through its documented module (stable paths); the most
common names are also re-exported at the package root (`from repro import
History, verify, Engine, ...`).
"""


def summary_of(obj) -> str:
    """First paragraph of the docstring, unwrapped to one flowing block."""
    doc = inspect.getdoc(obj) or ""
    paragraph = doc.split("\n\n", 1)[0]
    return " ".join(line.strip() for line in paragraph.splitlines()).strip()


def signature_of(name: str, obj) -> str:
    try:
        if inspect.isclass(obj):
            return f"class {name}{inspect.signature(obj)}"
        return f"{name}{inspect.signature(obj)}"
    except (TypeError, ValueError):
        return name


def public_methods(cls) -> list:
    methods = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        func = member
        if isinstance(member, (staticmethod, classmethod)):
            func = member.__func__
        if isinstance(member, property):
            methods.append((name, "(property)", summary_of(member)))
            continue
        if not inspect.isfunction(func):
            continue
        try:
            sig = str(inspect.signature(func))
        except (TypeError, ValueError):
            sig = "(...)"
        methods.append((name, sig, summary_of(func)))
    return methods


def render() -> str:
    lines = [HEADER]
    for title, module_name, names in SECTIONS:
        module = importlib.import_module(module_name)
        lines.append(f"## {title}")
        lines.append("")
        lines.append(f"Module: `{module_name}` — {summary_of(module)}")
        lines.append("")
        for name in names:
            obj = getattr(module, name)
            lines.append(f"### `{module_name}.{name}`")
            lines.append("")
            lines.append("```python")
            lines.append(signature_of(name, obj))
            lines.append("```")
            lines.append("")
            summary = summary_of(obj)
            if summary:
                lines.append(summary)
                lines.append("")
            if inspect.isclass(obj):
                methods = public_methods(obj)
                if methods:
                    lines.append("| member | signature | summary |")
                    lines.append("|---|---|---|")
                    for method_name, sig, doc in methods:
                        sig_cell = sig.replace("|", "\\|")
                        doc_cell = doc.replace("|", "\\|")
                        lines.append(f"| `{method_name}` | `{sig_cell}` | {doc_cell} |")
                    lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv) -> int:
    content = render()
    if "--check" in argv:
        current = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else ""
        if current != content:
            print(
                "docs/api.md is stale: regenerate it with `python docs/gen_api.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/api.md is up to date")
        return 0
    OUTPUT.write_text(content, encoding="utf-8")
    print(f"wrote {OUTPUT} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
