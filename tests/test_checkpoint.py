"""Checkpoint parity: kill/resume at every index equals an uninterrupted run.

The resumability contract of the audit service rests on
:meth:`Checker.snapshot`/:meth:`restore` (and their
:class:`~repro.engine.streaming.StreamSession` composition): a checker
checkpointed after feeding ``i`` operations and rehydrated — in another
object, through a pickle round trip, in "another process" — must produce the
*identical* remaining verdict sequence, final verdict, and witness as one
that was never interrupted.  These tests enforce that at **every** feed
index of several small histories, for every checker class.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.algorithms.online import (
    IncrementalGKChecker,
    IncrementalLBTChecker,
    RecheckChecker,
    checker_for,
    restore_checker,
)
from repro.core.errors import VerificationError
from repro.core.history import History
from repro.core.windows import WindowPolicy
from repro.engine.streaming import StreamingEngine
from repro.service.checkpoint import CheckpointStore
from repro.service.session import AuditSession, SessionConfig
from repro.state import available_backends
from repro.workloads.adversarial import (
    concurrent_batch_history,
    non_2atomic_batch_history,
)

from tests.conftest import TEST_SEED, make_random_history


def completion_order(history: History):
    return sorted(history.operations, key=lambda op: (op.finish, op.op_id))


def small_histories():
    rng = random.Random(TEST_SEED)
    return [
        make_random_history(rng, 4, 6),
        make_random_history(rng, 6, 9, span=4.0),
        concurrent_batch_history(2, 3),
        non_2atomic_batch_history(1, 3),
    ]


def result_signature(result):
    """Everything observable about a final result (witness included)."""
    witness = None
    if result.witness is not None:
        witness = tuple(
            (op.op_type.value, op.value, op.start, op.finish) for op in result.witness
        )
    return (bool(result), result.k, result.algorithm, result.reason, witness)


def verdict_signature(verdict):
    if verdict is None:
        return None
    return (bool(verdict), verdict.final, verdict.ops_seen, verdict.result.algorithm)


# ----------------------------------------------------------------------
# Checker-level parity at every feed index
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 2])
def test_kill_resume_at_every_index_matches_uninterrupted(k):
    for case, history in enumerate(small_histories()):
        ops = completion_order(history)
        # The uninterrupted reference: verdict sequence and final result.
        reference = checker_for(k)
        reference_verdicts = [verdict_signature(reference.feed(op)) for op in ops]
        reference_final = result_signature(reference.finish())

        for cut in range(len(ops) + 1):
            checker = checker_for(k)
            for op in ops[:cut]:
                checker.feed(op)
            state = pickle.loads(pickle.dumps(checker.snapshot()))
            resumed = restore_checker(state)
            tail_verdicts = [verdict_signature(resumed.feed(op)) for op in ops[cut:]]
            assert tail_verdicts == reference_verdicts[cut:], (
                f"case {case}, k={k}: verdicts after resuming at index {cut} "
                f"differ from the uninterrupted run (seed {TEST_SEED:#x})"
            )
            assert result_signature(resumed.finish()) == reference_final, (
                f"case {case}, k={k}: final verdict after resuming at index "
                f"{cut} differs (seed {TEST_SEED:#x})"
            )


def test_recheck_checker_snapshot_for_k3():
    rng = random.Random(TEST_SEED + 5)
    history = make_random_history(rng, 4, 4)
    ops = completion_order(history)
    reference = RecheckChecker(3, algorithm="exact")
    for op in ops:
        reference.feed(op)
    expected = result_signature(reference.finish())
    for cut in range(len(ops) + 1):
        checker = RecheckChecker(3, algorithm="exact")
        for op in ops[:cut]:
            checker.feed(op)
        resumed = restore_checker(pickle.loads(pickle.dumps(checker.snapshot())))
        for op in ops[cut:]:
            resumed.feed(op)
        assert result_signature(resumed.finish()) == expected


def test_snapshot_preserves_introspection_counters():
    history = concurrent_batch_history(2, 3)
    checker = checker_for(1)
    for op in completion_order(history):
        checker.feed(op)
    resumed = restore_checker(checker.snapshot())
    assert resumed.ops_seen == checker.ops_seen
    assert resumed.pending_reads == checker.pending_reads
    assert resumed.checks_run == checker.checks_run
    assert resumed.key == checker.key


def test_restore_rejects_mismatched_checker():
    gk = IncrementalGKChecker()
    lbt = IncrementalLBTChecker()
    with pytest.raises(VerificationError):
        lbt.restore(gk.snapshot())
    with pytest.raises(VerificationError):
        restore_checker({"class": "NoSuchChecker"})


# ----------------------------------------------------------------------
# Session-level parity (assembler + checkers + timeline)
# ----------------------------------------------------------------------
def test_stream_session_kill_resume_every_index():
    rng = random.Random(TEST_SEED + 6)
    history = make_random_history(rng, 6, 10)
    ops = completion_order(history)
    policy = WindowPolicy.count(4)

    reference = StreamingEngine(window=policy).open_session(2)
    for op in ops:
        reference.feed(op)
    reference_report = reference.finish()
    expected_results = {
        key: result_signature(result)
        for key, result in reference_report.results.items()
    }

    for cut in range(len(ops) + 1):
        session = StreamingEngine(window=policy).open_session(2)
        for op in ops[:cut]:
            session.feed(op)
        state = pickle.loads(pickle.dumps(session.snapshot()))
        resumed = StreamingEngine(window=policy).resume_session(state)
        for op in ops[cut:]:
            resumed.feed(op)
        report = resumed.finish()
        assert {
            key: result_signature(result) for key, result in report.results.items()
        } == expected_results, f"resume at index {cut} (seed {TEST_SEED:#x})"
        assert report.num_windows == reference_report.num_windows
        # The timeline verdicts the resumed session produced after the cut
        # must match the reference run's window-for-window.
        for window_index in range(len(report.timeline)):
            got = report.timeline[window_index]
            want = reference_report.timeline[window_index]
            assert {
                key: verdict_signature(v) for key, v in got.verdicts.items()
            } == {key: verdict_signature(v) for key, v in want.verdicts.items()}


def test_session_restore_rejects_config_mismatch():
    session = StreamingEngine(window=WindowPolicy.count(4)).open_session(2)
    state = session.snapshot()
    with pytest.raises(VerificationError):
        StreamingEngine(window=WindowPolicy.count(8)).open_session(2).restore(state)
    with pytest.raises(VerificationError):
        StreamingEngine(window=WindowPolicy.count(4)).open_session(1).restore(state)
    with pytest.raises(VerificationError):
        StreamingEngine(window=WindowPolicy.count(4), mode="windowed").open_session(2)


# ----------------------------------------------------------------------
# CheckpointStore + AuditSession round trip
# ----------------------------------------------------------------------
def test_checkpoint_store_round_trip(tmp_path):
    store = CheckpointStore(tmp_path / "ckpts")
    config = SessionConfig(k=2, window_size=4)
    session = AuditSession.start("audit/1", config)
    ops = completion_order(concurrent_batch_history(2, 3))
    for op in ops[:5]:
        session.feed(op)
    store.save(session.session_id, session.checkpoint_payload())
    assert "audit/1" in store
    assert store.session_ids() == ["audit/1"]

    resumed = AuditSession.resume(store.load("audit/1"))
    assert resumed.resumed
    assert resumed.ops_fed == 5
    for op in ops[5:]:
        session.feed(op)
        resumed.feed(op)
    original = session.finish()
    recovered = resumed.finish()
    assert {key: result_signature(r) for key, r in original.results.items()} == {
        key: result_signature(r) for key, r in recovered.results.items()
    }
    assert store.discard("audit/1")
    assert not store.discard("audit/1")
    assert "audit/1" not in store


def test_checkpoint_store_quotes_session_ids(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.path_for("../escape me/..")
    assert path.parent == store.directory  # quoting keeps files inside the dir
    store.save("../escape me/..", {"session_id": "x"})
    assert store.session_ids() == ["../escape me/.."]


# ----------------------------------------------------------------------
# Backend axis: every state backend carries checkpoints identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", available_backends())
def test_checkpoint_round_trip_on_every_backend(tmp_path, backend):
    store = CheckpointStore(tmp_path / backend, backend=backend)
    session = AuditSession.start("audit/1", SessionConfig(k=2, window_size=4))
    ops = completion_order(concurrent_batch_history(2, 3))
    for op in ops[:5]:
        session.feed(op)
    store.save(session.session_id, session.checkpoint_payload())
    assert "audit/1" in store
    assert store.session_ids() == ["audit/1"]

    resumed = AuditSession.resume(store.load("audit/1"))
    assert resumed.resumed and resumed.ops_fed == 5
    for op in ops[5:]:
        session.feed(op)
        resumed.feed(op)
    original = session.finish()
    recovered = resumed.finish()
    assert {key: result_signature(r) for key, r in original.results.items()} == {
        key: result_signature(r) for key, r in recovered.results.items()
    }
    assert store.discard("audit/1")
    assert "audit/1" not in store
    store.close()


def test_checkpoint_payloads_are_byte_interchangeable_across_backends(tmp_path):
    """The stored blob is identical bytes no matter which backend holds it.

    This is the migration guarantee: a deployment can switch
    ``--state-backend`` and re-save sessions without any payload translation,
    and the durability suite's expectations apply uniformly.
    """
    session = AuditSession.start("swap", SessionConfig(k=2, window_size=4))
    ops = completion_order(concurrent_batch_history(2, 3))
    for op in ops[:5]:
        session.feed(op)
    payload = session.checkpoint_payload()

    raws = {}
    for backend in available_backends():
        store = CheckpointStore(tmp_path / backend, backend=backend)
        store.save("swap", payload)
        raws[backend] = store.raw("swap")
        store.close()
    assert len(set(raws.values())) == 1, (
        "checkpoint bytes differ across backends: "
        + ", ".join(f"{b}={len(blob)}B" for b, blob in raws.items())
    )
    # Any backend's bytes rehydrate to a working session.
    for blob in raws.values():
        resumed = AuditSession.resume(pickle.loads(blob))
        assert resumed.resumed and resumed.ops_fed == 5
