"""Experiment E7: the bin-packing → weighted k-AV reduction (Theorem 5.1, Figure 5).

The tests check the construction's structure (short writes, dictated reads,
long writes confined between w(1) and w(m+1)), and — most importantly — the
equivalence both ways: the bin-packing instance is feasible iff the
constructed history is weighted-(B+2)-atomic, with explicit encoding/decoding
of witnesses.
"""

import random

import pytest

from repro.algorithms.wkav import verify_weighted_k_atomic
from repro.binpacking.model import BinPackingInstance, random_instance
from repro.binpacking.reduction import decode_witness, encode_packing, reduce_to_wkav
from repro.binpacking.solver import is_feasible, solve_exact
from repro.core.errors import ReductionError
from repro.core.preprocess import find_anomalies


@pytest.fixture
def small_instance():
    return BinPackingInstance(sizes=(3, 2, 2), capacity=4, num_bins=2)


class TestConstructionStructure:
    def test_counts_match_figure5(self, small_instance):
        reduced = reduce_to_wkav(small_instance)
        m, n = small_instance.num_bins, small_instance.num_items
        assert len(reduced.short_writes) == m + 1
        assert len(reduced.reads) == m
        assert len(reduced.long_writes) == n
        assert len(reduced.history) == (m + 1) + m + n

    def test_k_is_capacity_plus_two(self, small_instance):
        assert reduce_to_wkav(small_instance).k == small_instance.capacity + 2

    def test_short_writes_have_unit_weight(self, small_instance):
        reduced = reduce_to_wkav(small_instance)
        assert all(w.weight == 1 for w in reduced.short_writes)

    def test_long_write_weights_match_item_sizes(self, small_instance):
        reduced = reduce_to_wkav(small_instance)
        assert [w.weight for w in reduced.long_writes] == list(small_instance.sizes)

    def test_reads_are_dictated_by_their_short_writes(self, small_instance):
        reduced = reduce_to_wkav(small_instance)
        h = reduced.history
        for i, r in enumerate(reduced.reads):
            assert h.dictating_write(r) is reduced.short_writes[i]

    def test_short_operations_are_totally_ordered_in_real_time(self, small_instance):
        reduced = reduce_to_wkav(small_instance)
        # Forced sequence: w(1) w(2) r(1) w(3) r(2) ... w(m+1) r(m).
        m = small_instance.num_bins
        sequence = [reduced.short_writes[0]]
        for i in range(1, m + 1):
            sequence.append(reduced.short_writes[i])
            sequence.append(reduced.reads[i - 1])
        for earlier, later in zip(sequence, sequence[1:]):
            assert earlier.precedes(later)

    def test_long_writes_span_between_w1_and_wm1(self, small_instance):
        reduced = reduce_to_wkav(small_instance)
        w1 = reduced.short_writes[0]
        w_last = reduced.short_writes[-1]
        for lw in reduced.long_writes:
            assert w1.precedes(lw)
            assert lw.precedes(w_last)

    def test_construction_is_anomaly_free(self, small_instance):
        assert not find_anomalies(reduce_to_wkav(small_instance).history)

    def test_no_bins_rejected(self):
        with pytest.raises(ReductionError):
            BinPackingInstance(sizes=(1,), capacity=2, num_bins=0)


class TestEquivalence:
    CASES = [
        # (sizes, capacity, bins, feasible)
        ((3, 2, 2), 4, 2, True),
        ((3, 3, 3), 4, 2, False),
        ((4, 3, 3, 2, 2, 2), 8, 2, True),
        ((4, 3, 3, 2, 2, 2), 7, 2, False),
        ((1, 1, 1, 1), 2, 2, True),
        ((2, 2, 2), 2, 3, True),
        ((2, 2, 2, 2), 2, 3, False),
        ((5,), 5, 1, True),
        ((5, 1), 5, 1, False),
    ]

    @pytest.mark.parametrize("sizes,capacity,bins,feasible", CASES)
    def test_feasibility_equivalence(self, sizes, capacity, bins, feasible):
        instance = BinPackingInstance(sizes=sizes, capacity=capacity, num_bins=bins)
        assert is_feasible(instance) == feasible
        reduced = reduce_to_wkav(instance)
        assert bool(verify_weighted_k_atomic(reduced.history, reduced.k)) == feasible

    @pytest.mark.parametrize("sizes,capacity,bins,feasible", CASES)
    def test_witness_round_trip(self, sizes, capacity, bins, feasible):
        instance = BinPackingInstance(sizes=sizes, capacity=capacity, num_bins=bins)
        reduced = reduce_to_wkav(instance)
        verdict = verify_weighted_k_atomic(reduced.history, reduced.k)
        if not feasible:
            assert not verdict
            return
        packing = decode_witness(reduced, verdict.require_witness())
        assert packing.is_valid()
        # Encoding an exact packing must give a valid weighted witness too.
        exact_packing = solve_exact(instance)
        order = encode_packing(reduced, exact_packing)
        assert reduced.history.is_valid_total_order(order)
        assert reduced.history.is_weighted_k_atomic_total_order(order, reduced.k)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_round_trip(self, seed):
        rng = random.Random(seed)
        instance = random_instance(
            rng,
            num_items=rng.randint(1, 5),
            capacity=rng.randint(2, 6),
            num_bins=rng.randint(1, 3),
        )
        reduced = reduce_to_wkav(instance)
        feasible = is_feasible(instance)
        verdict = verify_weighted_k_atomic(reduced.history, reduced.k)
        assert bool(verdict) == feasible

    def test_decode_rejects_incomplete_witness(self, ):
        instance = BinPackingInstance(sizes=(1,), capacity=2, num_bins=1)
        reduced = reduce_to_wkav(instance)
        with pytest.raises(ReductionError):
            decode_witness(reduced, reduced.short_writes)

    def test_encode_rejects_invalid_packing(self):
        from repro.binpacking.model import BinPackingAssignment

        instance = BinPackingInstance(sizes=(3, 3), capacity=4, num_bins=2)
        reduced = reduce_to_wkav(instance)
        bad = BinPackingAssignment(instance, ((0, 1), ()))  # over capacity
        with pytest.raises(ReductionError):
            encode_packing(reduced, bad)
