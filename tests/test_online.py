"""Unit tests for the incremental checker protocol (algorithms.online)."""

import pytest

from repro.algorithms.online import (
    Checker,
    IncrementalGKChecker,
    IncrementalLBTChecker,
    RecheckChecker,
    checker_for,
)
from repro.algorithms.registry import CHECKERS, get_checker
from repro.core.errors import (
    DuplicateValueError,
    HistoryError,
    VerificationError,
)
from repro.core.operation import read, write
from repro.core.result import StreamVerdict
from repro.core.api import verify
from repro.core.history import History


def feed_all(checker, ops):
    """Feed ops in order, returning every verdict emitted."""
    return [v for v in (checker.feed(op) for op in ops) if v is not None]


def completion_order(history):
    return sorted(history.operations, key=lambda op: (op.finish, op.op_id))


class TestProtocol:
    def test_abstract_base(self):
        with pytest.raises(TypeError):
            Checker()  # abstract

    def test_empty_stream_finish_is_yes(self):
        for checker in (IncrementalGKChecker(), IncrementalLBTChecker()):
            assert bool(checker.finish()) is True

    def test_feed_after_finish_rejected_until_reset(self):
        checker = IncrementalGKChecker()
        checker.feed(write("a", 0.0, 1.0))
        checker.finish()
        with pytest.raises(VerificationError):
            checker.feed(read("a", 2.0, 3.0))
        checker.reset()
        assert checker.ops_seen == 0
        checker.feed(write("a", 0.0, 1.0))
        assert bool(checker.finish()) is True

    def test_key_mismatch_rejected(self):
        checker = IncrementalGKChecker()
        checker.feed(write("a", 0.0, 1.0, key="r1"))
        with pytest.raises(HistoryError):
            checker.feed(write("b", 2.0, 3.0, key="r2"))

    def test_duplicate_write_value_rejected_eagerly(self):
        checker = IncrementalLBTChecker()
        checker.feed(write("a", 0.0, 1.0))
        with pytest.raises(DuplicateValueError):
            checker.feed(write("a", 2.0, 3.0))

    def test_invalid_parameters(self):
        with pytest.raises(VerificationError):
            RecheckChecker(0)
        with pytest.raises(VerificationError):
            RecheckChecker(1, check_interval=0)
        with pytest.raises(VerificationError):
            RecheckChecker(1, cadence_growth=0.5)


class TestVerdictSemantics:
    def test_no_latches_and_is_final(self):
        checker = IncrementalGKChecker(check_interval=1)
        ops = [
            write("a", 0.0, 1.0),
            write("b", 2.0, 3.0),
            read("a", 4.0, 5.0),  # stale by one: not 1-atomic
            write("c", 6.0, 7.0),
        ]
        verdicts = feed_all(checker, ops)
        failing = [v for v in verdicts if not v]
        assert failing and all(v.final for v in failing)
        # The latch survives more (harmless) operations and finish().
        assert bool(checker.check_now()) is False
        assert bool(checker.finish()) is False

    def test_yes_is_provisional_until_finish(self):
        checker = IncrementalLBTChecker(check_interval=1)
        checker.feed(write("a", 0.0, 1.0))
        verdict = checker.check_now()
        assert verdict and not verdict.final
        assert isinstance(verdict, StreamVerdict)
        result = checker.finish()
        assert bool(result) is True

    def test_pending_read_not_counted_as_anomaly_midstream(self):
        checker = IncrementalGKChecker(check_interval=1)
        # The read completes before its dictating write does (they overlap),
        # so a completion-ordered stream delivers the read first.
        checker.feed(read("a", 0.5, 1.0))
        assert checker.pending_reads == 1
        assert bool(checker.check_now()) is True  # resolved prefix is empty
        checker.feed(write("a", 0.4, 2.0))
        assert checker.pending_reads == 0
        assert bool(checker.finish()) is True

    def test_unresolved_read_is_anomaly_at_finish(self):
        checker = IncrementalGKChecker()
        checker.feed(write("a", 0.0, 1.0))
        checker.feed(read("ghost", 2.0, 3.0))
        result = checker.finish()
        assert not result and result.algorithm == "preprocess"

    def test_ops_seen_counts_pending(self):
        checker = IncrementalLBTChecker()
        checker.feed(read("later", 0.0, 1.0))
        checker.feed(write("x", 2.0, 3.0))
        assert checker.ops_seen == 2

    def test_peek_is_stale_but_cheap(self):
        checker = IncrementalGKChecker(check_interval=1000)
        checker.feed(write("a", 0.0, 1.0))
        first = checker.peek()  # first peek runs the one bootstrap check
        checks = checker.checks_run
        checker.feed(read("a", 2.0, 3.0))
        assert checker.peek() is first  # stale: no re-check despite new op
        assert checker.checks_run == checks
        assert checker.check_now() is not first  # forcing does re-check
        assert checker.checks_run == checks + 1

    def test_peek_returns_latched_no(self):
        checker = IncrementalGKChecker(check_interval=1)
        for op in (
            write("a", 0.0, 1.0),
            write("b", 2.0, 3.0),
            read("a", 4.0, 5.0),
        ):
            checker.feed(op)
        latched = checker.check_now()
        assert latched.final and not latched
        assert checker.peek() is latched  # O(1) after the latch

    def test_check_now_caches_until_dirty(self):
        checker = IncrementalGKChecker(check_interval=1000)
        checker.feed(write("a", 0.0, 1.0))
        first = checker.check_now()
        checks = checker.checks_run
        assert checker.check_now() is first
        assert checker.checks_run == checks
        checker.feed(read("a", 2.0, 3.0))
        checker.check_now()
        assert checker.checks_run == checks + 1


class TestGKIncremental:
    def test_eager_alarm_before_cadence(self):
        # Forward zones overlap at the 4th op; the zone monitor should raise
        # the alarm long before the default cadence point (16 resolved ops).
        checker = IncrementalGKChecker()
        ops = [
            write("a", 0.0, 1.0),
            read("a", 10.0, 11.0),  # cluster(a) zone becomes forward [1, 10]
            write("b", 4.0, 5.0),
            read("b", 6.0, 7.0),  # cluster(b) forward [5, 6] inside [1, 10]
        ]
        verdicts = feed_all(checker, ops)
        assert any(v.final and not v for v in verdicts)
        assert checker.ops_seen == 4

    def test_no_false_alarms_on_atomic_history(self):
        from repro.workloads.synthetic import serial_history

        history = serial_history(12, 2)
        checker = IncrementalGKChecker(check_interval=4)
        verdicts = feed_all(checker, completion_order(history))
        assert all(bool(v) for v in verdicts)
        assert bool(checker.finish()) is bool(verify(history, 1)) is True


class TestCheckerFactory:
    def test_auto_selection(self):
        assert isinstance(checker_for(1), IncrementalGKChecker)
        assert isinstance(checker_for(2), IncrementalLBTChecker)
        generic = checker_for(3)
        assert isinstance(generic, RecheckChecker)
        assert generic.k == 3

    def test_explicit_names(self):
        assert isinstance(checker_for(1, algorithm="gk"), IncrementalGKChecker)
        assert isinstance(checker_for(2, algorithm="fzf"), IncrementalLBTChecker)
        assert isinstance(checker_for(2, algorithm="lbt-reference"), IncrementalLBTChecker)
        exact = checker_for(2, algorithm="exact")
        assert isinstance(exact, RecheckChecker)

    def test_mismatched_k_rejected(self):
        with pytest.raises(VerificationError):
            checker_for(2, algorithm="gk")
        with pytest.raises(VerificationError):
            checker_for(1, algorithm="lbt")
        with pytest.raises(VerificationError):
            checker_for(1, algorithm="nonsense")

    def test_generic_rechecker_parity_k3(self, stale_by_two_history):
        checker = checker_for(3)
        for op in completion_order(stale_by_two_history):
            checker.feed(op)
        assert bool(checker.finish()) is True
        checker2 = checker_for(2)
        for op in completion_order(stale_by_two_history):
            checker2.feed(op)
        assert bool(checker2.finish()) is False


class TestCheckerRegistry:
    def test_registry_entries(self):
        assert set(CHECKERS) >= {"gk-online", "lbt-online"}
        gk_spec = get_checker("gk-online")
        assert gk_spec.supports(1) and not gk_spec.supports(2)
        assert gk_spec.batch_counterpart == "gk"
        assert isinstance(gk_spec.factory(), IncrementalGKChecker)
        lbt_spec = get_checker("LBT-ONLINE")  # case-insensitive
        assert lbt_spec.supports(2)
        assert isinstance(lbt_spec.factory(), IncrementalLBTChecker)

    def test_unknown_checker_rejected(self):
        with pytest.raises(VerificationError):
            get_checker("gk-offline")
