"""Unit tests for the algorithm registry."""

import pytest

from repro.algorithms.registry import (
    REGISTRY,
    algorithms_for_k,
    available_algorithms,
    get_algorithm,
)
from repro.core.errors import VerificationError


class TestLookups:
    def test_all_expected_algorithms_registered(self):
        assert {"gk", "lbt", "lbt-reference", "fzf", "exact"} <= set(REGISTRY)

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("FZF").name == "fzf"
        assert get_algorithm("  Lbt ").name == "lbt"

    def test_unknown_name_raises(self):
        with pytest.raises(VerificationError):
            get_algorithm("quantum")

    def test_descriptions_available(self):
        descriptions = available_algorithms()
        assert "fzf" in descriptions
        assert all(isinstance(text, str) and text for text in descriptions.values())


class TestKSupport:
    def test_gk_supports_only_k1(self):
        spec = get_algorithm("gk")
        assert spec.supports(1)
        assert not spec.supports(2)

    def test_lbt_and_fzf_support_only_k2(self):
        for name in ("lbt", "lbt-reference", "fzf"):
            spec = get_algorithm(name)
            assert spec.supports(2)
            assert not spec.supports(1)
            assert not spec.supports(3)

    def test_exact_supports_any_k(self):
        spec = get_algorithm("exact")
        for k in (1, 2, 3, 10, 100):
            assert spec.supports(k)

    def test_algorithms_for_k(self):
        assert set(algorithms_for_k(1)) == {"gk", "exact"}
        assert set(algorithms_for_k(2)) == {"lbt", "lbt-reference", "fzf", "exact"}
        assert set(algorithms_for_k(7)) == {"exact"}


class TestAdapters:
    def test_adapter_rejects_wrong_k(self, atomic_history):
        with pytest.raises(VerificationError):
            get_algorithm("gk").fn(atomic_history, 2)
        with pytest.raises(VerificationError):
            get_algorithm("fzf").fn(atomic_history, 1)
        with pytest.raises(VerificationError):
            get_algorithm("lbt").fn(atomic_history, 3)

    def test_adapter_runs_correct_algorithm(self, stale_by_one_history):
        assert get_algorithm("gk").fn(stale_by_one_history, 1).algorithm == "GK"
        assert get_algorithm("fzf").fn(stale_by_one_history, 2).algorithm == "FZF"
        assert get_algorithm("exact").fn(stale_by_one_history, 3).algorithm == "exact"
