"""Audit-service tests: concurrent multiplexing, resume parity, protocol.

The acceptance bar for the serving layer: one server process must handle
eight-plus concurrent sessions whose final per-session reports equal
``verify_trace`` batch output over the same traces, and a
checkpointed-then-resumed session must yield the same verdicts and witnesses
as an uninterrupted one.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.api import verify_trace
from repro.core.errors import ServiceError
from repro.core.result import StreamVerdict, VerificationResult
from repro.io.formats import JsonlDecoder
from repro.service import (
    AuditClient,
    AuditServer,
    CheckpointStore,
    verify_remote,
)
from repro.service.protocol import (
    decode_frame,
    encode_frame,
    format_address,
    hashable_key,
    parse_address,
    result_from_dict,
    result_to_dict,
    verdict_from_dict,
    verdict_to_dict,
)
from repro.service.session import SessionConfig
from repro.workloads.synthetic import synthetic_trace

from tests.conftest import TEST_SEED


def make_trace_ops(rng, *, registers=4, ops=30, staleness=0.1):
    trace = synthetic_trace(
        rng, registers, ops, staleness_probability=staleness, max_staleness=1
    )
    stream = sorted(
        (op for key in trace.keys() for op in trace[key].operations),
        key=lambda op: (op.finish, op.op_id),
    )
    return trace, stream


def result_signature(result, *, witness=True):
    order = None
    if witness and result.witness is not None:
        order = tuple(
            (op.op_type.value, op.value, op.start, op.finish) for op in result.witness
        )
    return (bool(result), result.k, result.algorithm, result.reason, order)


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------
def test_frame_round_trip():
    frame = {"type": "hello", "k": 2, "window": {"mode": "count", "size": 8}}
    assert decode_frame(encode_frame(frame)) == frame
    with pytest.raises(ServiceError):
        decode_frame(b"not json\n")
    with pytest.raises(ServiceError):
        decode_frame(b"[1, 2]\n")


def test_result_round_trip_with_witness():
    from repro.core.operation import read, write

    result = VerificationResult.yes(
        2, "LBT", witness=[write("a", 0.0, 1.0), read("a", 2.0, 3.0)], reason="ok"
    )
    decoded = result_from_dict(result_to_dict(result, witness=True))
    assert result_signature(decoded) == result_signature(result)
    # Witness omitted by default.
    assert result_from_dict(result_to_dict(result)).witness is None

    verdict = StreamVerdict(result=result, ops_seen=7, final=False)
    round_tripped = verdict_from_dict(verdict_to_dict(verdict))
    assert round_tripped.ops_seen == 7 and not round_tripped.final


def test_addresses_and_keys():
    assert parse_address("unix:/tmp/a.sock") == ("unix", "/tmp/a.sock")
    assert parse_address("10.0.0.1:7400") == ("tcp", ("10.0.0.1", 7400))
    assert parse_address(":7400") == ("tcp", ("127.0.0.1", 7400))
    assert format_address(*[*parse_address("unix:/x")]) == "unix:/x"
    for bad in ("nope", "host:port", "unix:"):
        with pytest.raises(ServiceError):
            parse_address(bad)
    assert hashable_key([1, [2, 3]]) == (1, (2, 3))


def test_session_config_validation():
    config = SessionConfig.from_dict({"k": 1, "window": {"size": 8, "overlap": 2}})
    assert config.k == 1 and config.window_policy().describe() == "count(8, overlap=2)"
    with pytest.raises(ServiceError):
        SessionConfig.from_dict({"k": 0})
    with pytest.raises(ServiceError):
        SessionConfig.from_dict({"window": {"mode": "bogus"}})
    with pytest.raises(ServiceError):
        SessionConfig.from_dict({"k": "not-a-number"})


def test_jsonl_decoder_mixed_frames():
    decoder = JsonlDecoder(mixed=True)
    chunk = (
        b'{"type":"hello","k":2}\n'
        b'{"op_type":"write","value":"a","start":0.0,"finish":1.0}\n'
    )
    # Split mid-record to exercise partial-line buffering.
    items = decoder.feed(chunk[:30])
    items += decoder.feed(chunk[30:])
    assert items[0] == {"type": "hello", "k": 2}
    assert items[1].is_write and items[1].value == "a"
    assert not decoder.pending


def test_jsonl_decoder_handles_split_multibyte_utf8():
    decoder = JsonlDecoder()
    record = '{"op_type":"write","value":"café","start":0.0,"finish":1.0}\n'.encode()
    split = record.index("é".encode()) + 1  # cut inside the 2-byte sequence
    ops = decoder.feed(record[:split])
    ops += decoder.feed(record[split:])
    assert len(ops) == 1 and ops[0].value == "café"


def test_invalid_utf8_gets_in_band_error_not_a_hang():
    async def scenario():
        server = AuditServer()
        await server.start()
        client = await AuditClient.connect(server.addresses[0], k=2)
        client._writer.write(b"\xff\xfe\xff\xfe\n")
        await client._writer.drain()
        with pytest.raises(ServiceError, match="decode|invalid"):
            await asyncio.wait_for(client._expect("report"), timeout=5)
        await client.close()
        await server.stop()

    asyncio.run(scenario())


def test_abrupt_abort_frees_the_session_id():
    """A client that vanishes while the server is emitting window frames must
    not leave its id locked in _active (that would block resume forever)."""
    import json as jsonlib

    from repro.io.formats import operation_to_dict

    rng = random.Random(TEST_SEED + 97)
    _, stream = make_trace_ops(rng, registers=2, ops=40)

    async def scenario():
        server = AuditServer()
        await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.tcp_port)
        payload = b'{"type":"hello","session":"ghost","k":2,"window":8}\n'
        for op in stream:
            payload += (jsonlib.dumps(operation_to_dict(op)) + "\n").encode()
        writer.write(payload)
        await writer.drain()
        # Vanish without reading a single verdict frame or sending 'end'.
        writer.transport.abort()
        # The id must come free once the server notices.
        for _ in range(100):
            try:
                client = await AuditClient.connect(
                    server.addresses[0], session="ghost", k=2
                )
                break
            except ServiceError:
                await asyncio.sleep(0.05)
        else:
            raise AssertionError("session id never came free after abort")
        await client.close()
        await server.stop()

    asyncio.run(scenario())


def test_jsonl_decoder_counts_physical_lines():
    from repro.core.errors import TraceFormatError

    decoder = JsonlDecoder(source="t")
    decoder.feed("\n\n")  # two blank physical lines
    with pytest.raises(TraceFormatError, match="t:3"):
        decoder.feed("not json\n")


# ----------------------------------------------------------------------
# Concurrent multiplexing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 3], ids=["in-process", "pool-3"])
def test_eight_plus_concurrent_sessions_match_batch(workers):
    rng = random.Random(TEST_SEED)
    cases = [make_trace_ops(random.Random(TEST_SEED + i), staleness=0.05 * (i % 3))
             for i in range(9)]
    # The rolling k=2 checkers delegate to LBT, so the batch reference uses
    # the same algorithm to make reports comparable *exactly* — verdict,
    # reason, and witness — not just boolean-wise.
    batch = [verify_trace(trace, 2, algorithm="lbt") for trace, _ in cases]

    async def scenario():
        server = AuditServer(workers=workers)
        await server.start()
        address = server.addresses[0]

        async def one_session(index):
            trace, stream = cases[index]
            client = await AuditClient.connect(
                address, session=f"mux-{index}", k=2, algorithm="lbt",
                window=16, witness=True,
            )
            await client.feed_ops(stream)
            return await client.finish()

        reports = await asyncio.gather(*[one_session(i) for i in range(9)])
        service = server.service_report()
        await server.stop()
        return reports, service

    reports, service = asyncio.run(scenario())
    assert service.num_sessions == 9 and service.active_sessions == 0
    if workers:
        assert len(service.workers) == workers
        assert sum(row.batches for row in service.workers) > 0
    for index, report in enumerate(reports):
        assert report.session_id == f"mux-{index}"
        assert report.ops == len(cases[index][1])
        expected = batch[index]
        assert set(report.results) == set(expected)
        for key, result in expected.items():
            assert result_signature(report.results[key]) == result_signature(result), (
                f"session {index} register {key!r} (seed {TEST_SEED:#x})"
            )


def test_backpressure_small_queue_still_exact():
    rng = random.Random(TEST_SEED + 50)
    trace, stream = make_trace_ops(rng, registers=2, ops=60)
    expected = {key: bool(r) for key, r in verify_trace(trace, 2).items()}

    async def scenario():
        server = AuditServer(queue_size=2)  # pathologically tight bound
        await server.start()
        windows_seen = []
        client = await AuditClient.connect(
            server.addresses[0], k=2, window=8, on_window=windows_seen.append
        )
        await client.feed_ops(stream)
        report = await client.finish()
        await server.stop()
        return report, windows_seen

    report, windows_seen = asyncio.run(scenario())
    assert {key: bool(r) for key, r in report.results.items()} == expected
    assert report.ops == len(stream)
    # 120 ops over count(8) windows: every window closed mid-stream and its
    # rolling-verdict frame arrived despite the 2-item queue bound.
    assert len(windows_seen) == report.num_windows == len(stream) // 8


def test_unix_socket_session(tmp_path):
    rng = random.Random(TEST_SEED + 60)
    trace, stream = make_trace_ops(rng, registers=2, ops=20)
    expected = {key: bool(r) for key, r in verify_trace(trace, 2).items()}

    async def scenario():
        server = AuditServer(port=None, unix_path=tmp_path / "audit.sock")
        await server.start()
        address = server.addresses[0]
        assert address.startswith("unix:")
        client = await AuditClient.connect(address, k=2, window=8)
        await client.feed_ops(stream)
        report = await client.finish()
        await server.stop()
        return report

    report = asyncio.run(scenario())
    assert {key: bool(r) for key, r in report.results.items()} == expected


# ----------------------------------------------------------------------
# Checkpoint / crash / resume
# ----------------------------------------------------------------------
def test_checkpoint_resume_across_server_restart(tmp_path):
    rng = random.Random(TEST_SEED + 70)
    trace, stream = make_trace_ops(rng, registers=3, ops=30, staleness=0.1)
    reference = verify_trace(trace, 2, algorithm="lbt")
    cut = len(stream) // 2

    async def phase_one():
        server = AuditServer(checkpoint_dir=tmp_path)
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="crashy", k=2, algorithm="lbt", window=8
        )
        await client.feed_ops(stream[:cut])
        ack = await client.checkpoint()
        await client.close()  # abrupt disconnect: the "crash"
        await server.stop()  # the whole server goes down too
        return ack

    ack = asyncio.run(phase_one())
    assert ack["ops"] == cut
    assert "crashy" in CheckpointStore(tmp_path)

    async def phase_two():
        server = AuditServer(checkpoint_dir=tmp_path)  # a fresh process, morally
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="crashy", resume=True, witness=True
        )
        assert client.resumed and client.ops_restored == cut
        await client.feed_ops(stream[cut:])
        report = await client.finish()
        await server.stop()
        return report

    report = asyncio.run(phase_two())
    assert set(report.results) == set(reference)
    for key, result in reference.items():
        assert result_signature(report.results[key]) == result_signature(result), (
            f"register {key!r} after resume (seed {TEST_SEED:#x})"
        )
    # The completed session's checkpoint is garbage-collected.
    assert "crashy" not in CheckpointStore(tmp_path)


def test_server_rejects_unknown_state_backend(tmp_path):
    # Even without a checkpoint_dir the backend name must be validated at
    # construction — a typo'd --state-backend must not serve silently.
    with pytest.raises(ServiceError, match="unknown state backend"):
        AuditServer(port=0, state_backend="bogus")
    with pytest.raises(ServiceError, match="unknown state backend"):
        AuditServer(port=0, checkpoint_dir=tmp_path, state_backend="bogus")


@pytest.mark.parametrize("backend", ["sqlite", "segments"])
def test_checkpoint_resume_across_restart_on_every_backend(tmp_path, backend):
    """The restart-resume contract holds verbatim on the non-default
    state backends (``repro serve --state-backend``)."""
    rng = random.Random(TEST_SEED + 71)
    trace, stream = make_trace_ops(rng, registers=3, ops=30, staleness=0.1)
    reference = verify_trace(trace, 2, algorithm="lbt")
    cut = len(stream) // 2

    async def phase_one():
        server = AuditServer(checkpoint_dir=tmp_path, state_backend=backend)
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="crashy", k=2, algorithm="lbt", window=8
        )
        await client.feed_ops(stream[:cut])
        ack = await client.checkpoint()
        await client.close()
        await server.stop()
        return ack

    ack = asyncio.run(phase_one())
    assert ack["ops"] == cut
    probe = CheckpointStore(tmp_path, backend=backend)
    assert "crashy" in probe
    probe.close()

    async def phase_two():
        server = AuditServer(checkpoint_dir=tmp_path, state_backend=backend)
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="crashy", resume=True, witness=True
        )
        assert client.resumed and client.ops_restored == cut
        await client.feed_ops(stream[cut:])
        report = await client.finish()
        await server.stop()
        return report

    report = asyncio.run(phase_two())
    assert set(report.results) == set(reference)
    for key, result in reference.items():
        assert result_signature(report.results[key]) == result_signature(result), (
            f"register {key!r} after {backend} resume (seed {TEST_SEED:#x})"
        )


def test_automatic_checkpoints_every_n_ops(tmp_path):
    rng = random.Random(TEST_SEED + 80)
    _, stream = make_trace_ops(rng, registers=2, ops=15)

    async def scenario():
        server = AuditServer(checkpoint_dir=tmp_path, checkpoint_every=10)
        await server.start()
        client = await AuditClient.connect(server.addresses[0], session="auto", k=2)
        await client.feed_ops(stream[:25])
        await client.close()  # vanish without an end frame
        await server.stop()

    asyncio.run(scenario())
    store = CheckpointStore(tmp_path)
    assert "auto" in store  # periodic checkpoint survived the disconnect
    payload = store.load("auto")
    assert payload["stream"]["ops_fed"] in (10, 20)


# ----------------------------------------------------------------------
# Protocol errors and service stats
# ----------------------------------------------------------------------
def test_duplicate_and_unknown_sessions_are_refused():
    async def scenario():
        server = AuditServer()
        await server.start()
        address = server.addresses[0]
        first = await AuditClient.connect(address, session="dup", k=2)
        with pytest.raises(ServiceError, match="already connected"):
            await AuditClient.connect(address, session="dup", k=2)
        with pytest.raises(ServiceError, match="no checkpoint store"):
            await AuditClient.connect(address, session="ghost", resume=True)
        await first.close()
        await server.stop()

    asyncio.run(scenario())


def test_malformed_stream_reports_error():
    async def scenario():
        server = AuditServer()
        await server.start()
        client = await AuditClient.connect(server.addresses[0], k=2)
        client._writer.write(b'{"op_type": "write", "value": "a"}\n')  # no times
        await client._writer.drain()
        with pytest.raises(ServiceError, match="malformed"):
            await client.finish()
        await client.close()
        await server.stop()

    asyncio.run(scenario())


def test_newline_less_flood_is_refused():
    """A frame with no newline must hit the size cap, not grow memory forever."""
    from repro.service import protocol

    async def scenario(monkey_max):
        original = protocol.MAX_FRAME_BYTES
        from repro.service import server as server_module

        server_module.MAX_FRAME_BYTES = monkey_max
        try:
            server = AuditServer()
            await server.start()
            client = await AuditClient.connect(server.addresses[0], k=2)
            client._writer.write(b"x" * (monkey_max * 3))  # never a newline
            await client._writer.drain()
            # The server must refuse in-band without ever seeing a newline.
            with pytest.raises(ServiceError, match="exceeds"):
                await client._expect("report")
            await client.close()
            await server.stop()
        finally:
            server_module.MAX_FRAME_BYTES = original

    asyncio.run(scenario(4096))


def test_hello_window_shorthand_and_validation():
    async def scenario():
        server = AuditServer()
        await server.start()
        address = server.addresses[0]
        # Raw protocol: a bare number is accepted as a count-window size...
        reader, writer = await asyncio.open_connection("127.0.0.1", server.tcp_port)
        writer.write(b'{"type":"hello","session":"shorthand","k":2,"window":16}\n')
        await writer.drain()
        welcome = decode_frame(await reader.readline())
        assert welcome["type"] == "welcome"
        writer.close()
        await writer.wait_closed()
        # ...while a non-numeric, non-object window gets an in-band error.
        reader, writer = await asyncio.open_connection("127.0.0.1", server.tcp_port)
        writer.write(b'{"type":"hello","window":"big"}\n')
        await writer.drain()
        refusal = decode_frame(await reader.readline())
        assert refusal["type"] == "error" and "window" in refusal["error"]
        writer.close()
        await writer.wait_closed()
        await server.stop()

    asyncio.run(scenario())


def test_resume_with_pipelined_ops_keeps_op_ids_distinct(tmp_path):
    """A client that pipelines ops straight after a resume hello (never
    waiting for welcome) must still get verdicts equal to an uninterrupted
    run — the handshake completes restore before any op record is decoded,
    so fresh auto op-ids cannot collide with restored ones."""
    import json as jsonlib

    from repro.io.formats import operation_to_dict

    rng = random.Random(TEST_SEED + 95)
    trace, stream = make_trace_ops(rng, registers=3, ops=20, staleness=0.1)
    reference = verify_trace(trace, 2, algorithm="lbt")
    cut = len(stream) // 2

    async def scenario():
        server = AuditServer(checkpoint_dir=tmp_path)
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="pipeliner", k=2, window=8
        )
        await client.feed_ops(stream[:cut])
        await client.checkpoint()
        await client.close()

        # Raw reconnect: hello + every remaining op + end in ONE write.
        reader, writer = await asyncio.open_connection("127.0.0.1", server.tcp_port)
        payload = b'{"type":"hello","session":"pipeliner","resume":true,"witness":true}\n'
        for op in stream[cut:]:
            payload += (jsonlib.dumps(operation_to_dict(op)) + "\n").encode()
        payload += b'{"type":"end"}\n'
        writer.write(payload)
        await writer.drain()
        report_frame = None
        while report_frame is None:
            frame = decode_frame(await reader.readline())
            assert frame["type"] != "error", frame
            if frame["type"] == "report":
                report_frame = frame
        writer.close()
        await writer.wait_closed()
        await server.stop()
        return report_frame

    frame = asyncio.run(scenario())
    from repro.service.protocol import results_from_pairs

    results = results_from_pairs(frame["results"])
    assert set(results) == set(reference)
    for key, result in reference.items():
        assert result_signature(results[key]) == result_signature(result), (
            f"register {key!r} diverged after pipelined resume (seed {TEST_SEED:#x})"
        )


def test_completed_sessions_are_frozen_to_stats(tmp_path):
    """The service log must not retain live checker state after a session ends."""
    rng = random.Random(TEST_SEED + 96)
    _, stream = make_trace_ops(rng, registers=2, ops=10)

    async def scenario():
        server = AuditServer()
        await server.start()
        client = await AuditClient.connect(server.addresses[0], session="brief", k=2)
        await client.feed_ops(stream)
        await client.finish()
        entries = list(server._session_log.values())
        report = server.service_report()
        await server.stop()
        return entries, report

    entries, report = asyncio.run(scenario())
    assert len(entries) == 1
    assert type(entries[0]).__name__ == "SessionStats"  # not a live AuditSession
    assert report.sessions[0].finished and report.sessions[0].num_ops == len(stream)


def test_resume_does_not_double_count_service_stats(tmp_path):
    rng = random.Random(TEST_SEED + 85)
    _, stream = make_trace_ops(rng, registers=2, ops=20)
    cut = len(stream) // 2

    async def scenario():
        server = AuditServer(checkpoint_dir=tmp_path)
        await server.start()
        client = await AuditClient.connect(server.addresses[0], session="once", k=2)
        await client.feed_ops(stream[:cut])
        await client.checkpoint()
        await client.close()
        client = await AuditClient.connect(
            server.addresses[0], session="once", resume=True
        )
        await client.feed_ops(stream[cut:])
        await client.finish()
        report = server.service_report()
        await server.stop()
        return report

    report = asyncio.run(scenario())
    # One logical session: the resumed entry replaces its predecessor.
    assert report.num_sessions == 1
    assert report.active_sessions == 0
    assert report.total_ops == len(stream)


def test_detached_sessions_reported_distinctly():
    """A client that vanishes without 'end' leaves a *detached* row — it must
    not be counted as actively streaming forever."""

    async def scenario():
        server = AuditServer()
        await server.start()
        client = await AuditClient.connect(server.addresses[0], session="dt", k=2)
        await client.close()
        for _ in range(200):
            report = server.service_report()
            if report.sessions and report.sessions[0].state == "detached":
                break
            await asyncio.sleep(0.02)
        report = server.service_report()
        await server.stop()
        return report

    report = asyncio.run(scenario())
    assert report.active_sessions == 0
    assert report.detached_sessions == 1
    assert "detached" in report.render()


def test_stats_frame_and_service_report():
    rng = random.Random(TEST_SEED + 90)
    _, stream = make_trace_ops(rng, registers=2, ops=10)

    async def scenario():
        server = AuditServer()
        await server.start()
        client = await AuditClient.connect(server.addresses[0], session="statsy", k=2)
        await client.feed_ops(stream)
        stats = await client.stats()
        report = await client.finish()
        service = server.service_report()
        await server.stop()
        return stats, report, service

    stats, report, service = asyncio.run(scenario())
    assert stats["type"] == "stats" and stats["sessions"] == 1
    assert stats["ops"] == len(stream)
    rendered = service.render()
    assert "statsy" in rendered and "audit service" in rendered
    assert service.total_ops == len(stream)


def test_oversized_report_frame_reaches_the_client():
    """A witness report bigger than the protocol's inbound frame cap must
    still be delivered — the client asked for that data."""
    from repro.service import protocol
    from repro.workloads.synthetic import serial_history

    # A 12k-op serial register's witness serialises past MAX_FRAME_BYTES
    # (1 MiB) — the size that used to kill the client's readline.
    ops = list(serial_history(12000, 1, key="big").operations)

    async def scenario():
        server = AuditServer()
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="bigwit", k=2, witness=True, window=8192
        )
        # Bulk write without per-op drain: this test cares about the frame
        # size on the way back, not about feed pacing.
        import json as jsonlib

        from repro.io.formats import operation_to_dict

        payload = b"".join(
            (jsonlib.dumps(operation_to_dict(op)) + "\n").encode() for op in ops
        )
        client._writer.write(payload)
        await client._writer.drain()
        client._ops_sent += len(ops)
        report = await client.finish()
        await server.stop()
        return report

    report = asyncio.run(scenario())
    result = report.results["big"]
    assert bool(result) and result.witness is not None
    assert len(result.witness) == len(ops)
    encoded = len(
        __import__("json").dumps(
            protocol.result_to_dict(result, witness=True)
        ).encode()
    )
    assert encoded > protocol.MAX_FRAME_BYTES  # frame really exceeded the cap


def test_verify_remote_sync_helper(tmp_path):
    from repro.io.formats import dump_jsonl

    rng = random.Random(TEST_SEED + 100)
    trace, stream = make_trace_ops(rng, registers=3, ops=20)
    path = tmp_path / "trace.jsonl"
    dump_jsonl(stream, path)
    expected = {key: bool(r) for key, r in verify_trace(trace, 2).items()}

    import threading

    server = AuditServer(max_sessions=1)
    loop_ready = threading.Event()
    holder = {}

    def run_server():
        async def go():
            await server.start()
            holder["address"] = server.addresses[0]
            loop_ready.set()
            await server.serve_forever()
            await server.stop()

        asyncio.run(go())

    thread = threading.Thread(target=run_server)
    thread.start()
    assert loop_ready.wait(timeout=10)
    try:
        report = verify_remote(path, 2, address=holder["address"], window=8)
    finally:
        thread.join(timeout=10)
    assert {key: bool(r) for key, r in report.results.items()} == expected
    assert report.ops == len(stream)
    assert not thread.is_alive()
