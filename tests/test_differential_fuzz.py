"""Differential fuzzing: every verification path against the exact oracle.

Random histories — uniform-random interval soups and the structured
worst-case shapes from :mod:`repro.workloads.adversarial` — are pushed
through every redundant implementation the library carries:

* GK (k=1) and LBT / LBT-reference / FZF (k=2), through every kernel tier
  (object, columnar and — when numpy is importable — the vectorized tier),
* the incremental (rolling) checkers,
* the adaptive tier ladder (``screen`` and ``auto`` policies, whose cheap
  screens are sound only by k-monotonicity),
* windowed streaming (whose NO verdicts must be *sound*: a windowed NO on a
  history the oracle accepts is a bug),
* the serial/threads/processes shard executors (on a combined trace),

and every verdict is cross-checked against :mod:`repro.algorithms.exact`,
the brute-force oracle.  On a disagreement the harness *shrinks* the history
to a local minimum (greedy single-operation removal while the disagreement
persists) and writes the minimised trace to ``tests/corpus/`` so the failure
is replayable; ``test_corpus_replays_agree`` then re-runs every stored entry
forever after.

Iteration count is bounded by ``REPRO_FUZZ_ITERS`` (default 25, raised in
the CI fuzz-smoke job); the seed comes from ``REPRO_TEST_SEED`` and is
included in every failure message.
"""

from __future__ import annotations

import hashlib
import os
import random
from pathlib import Path
from typing import Callable, List, Sequence

import pytest

from repro.algorithms.online import checker_for
from repro.core import vector
from repro.core.api import verify
from repro.core.builder import TraceBuilder
from repro.core.history import History
from repro.core.operation import Operation
from repro.core.windows import WindowPolicy
from repro.engine import Engine, StreamingEngine
from repro.engine.tiering import get_tier_policy
from repro.io.formats import dump_jsonl, load_jsonl
from repro.simulation.clock import SkewedClocks
from repro.workloads.adversarial import (
    concurrent_batch_history,
    non_2atomic_batch_history,
)
from repro.workloads.chaos import apply_clock_skew, indeterminate_storm_trace

from tests.conftest import TEST_SEED, make_random_history

CORPUS_DIR = Path(__file__).parent / "corpus"
FUZZ_ITERS = int(os.environ.get("REPRO_FUZZ_ITERS", "25"))

#: Every k=2 decision procedure is differential-tested against the oracle.
TWO_AV_ALGORITHMS = ("lbt", "lbt-reference", "fzf")

#: Every kernel tier runs through the same differential check; the numpy
#: tier joins automatically when numpy is importable.
KERNELS = ("object", "columnar") + (
    ("numpy",) if vector.NUMPY_AVAILABLE else ()
)


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------
def disagreements(ops: Sequence[Operation]) -> List[str]:
    """Run every path over one single-register history; list any divergences."""
    history = History(ops)
    problems: List[str] = []
    for k in (1, 2):
        oracle = bool(verify(history, k, algorithm="exact", max_exact_ops=10**9))
        names = ("gk",) if k == 1 else TWO_AV_ALGORITHMS
        for name in names:
            for kernel in KERNELS:
                got = bool(verify(history, k, algorithm=name, kernel=kernel))
                if got != oracle:
                    problems.append(
                        f"{name}/{kernel} says {got} but the exact oracle says "
                        f"{oracle} at k={k}"
                    )
        # Rolling incremental checker: final verdict must equal batch exactly.
        checker = checker_for(k)
        for op in sorted(ops, key=lambda o: (o.finish, o.op_id)):
            checker.feed(op)
        online = bool(checker.finish())
        if online != oracle:
            problems.append(
                f"incremental checker says {online} but the exact oracle says "
                f"{oracle} at k={k}"
            )
        # Tier ladder: the screened route must reproduce the oracle verdict
        # on every screening tier — a screen YES is only sound because of
        # k-monotonicity, and this is where that claim gets fuzzed.
        for tier in ("screen", "auto"):
            policy = get_tier_policy(tier)
            tiered, decision = policy.verify_with_decision(history, k, key="x")
            if bool(tiered) != oracle:
                problems.append(
                    f"tier={tier} says {bool(tiered)} via {decision.tier!r} "
                    f"but the exact oracle says {oracle} at k={k}"
                )
        # Windowed streaming: NO verdicts are final and sound, so a windowed
        # NO on an oracle-YES history is a divergence.  (A windowed YES is an
        # approximation and proves nothing.)
        engine = StreamingEngine(
            window=WindowPolicy.count(4, overlap=1), mode="windowed"
        )
        report = engine.verify_stream(
            sorted(ops, key=lambda o: (o.finish, o.op_id)), k
        )
        for key, result in report.results.items():
            if not result and oracle:
                problems.append(
                    f"windowed streaming raised a final NO on register {key!r} "
                    f"({result.reason}) but the exact oracle says YES at k={k}"
                )
    return problems


def shrink(
    ops: List[Operation], disagrees: Callable[[Sequence[Operation]], bool]
) -> List[Operation]:
    """Greedy 1-minimal shrink: drop operations while the divergence persists."""
    changed = True
    while changed:
        changed = False
        for i in range(len(ops)):
            candidate = ops[:i] + ops[i + 1 :]
            if candidate and disagrees(candidate):
                ops = candidate
                changed = True
                break
    return ops


def report_divergence(ops: List[Operation], problems: List[str], origin: str) -> None:
    """Shrink, persist to the corpus, and fail with a replayable message."""
    minimal = shrink(list(ops), lambda candidate: bool(disagreements(candidate)))
    digest = hashlib.sha256(
        "".join(
            f"{op.op_type.value}:{op.value!r}:{op.start!r}:{op.finish!r};"
            for op in minimal
        ).encode()
    ).hexdigest()[:12]
    CORPUS_DIR.mkdir(exist_ok=True)
    path = CORPUS_DIR / f"fuzz-{digest}.jsonl"
    dump_jsonl(minimal, path)
    pytest.fail(
        f"differential divergence from {origin} (seed {TEST_SEED:#x}):\n  "
        + "\n  ".join(disagreements(minimal))
        + f"\nminimised to {len(minimal)} ops, written to {path} "
        f"(replay: pytest tests/test_differential_fuzz.py::test_corpus_replays_agree)"
    )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def random_case(rng: random.Random) -> tuple:
    """One random small history (oracle-sized) plus a description of it."""
    shape = rng.randrange(6)
    if shape == 0:
        writes, reads = rng.randint(2, 6), rng.randint(1, 7)
        span = rng.choice([2.0, 6.0, 12.0])
        history = make_random_history(rng, writes, reads, span=span)
        origin = f"make_random_history({writes}, {reads}, span={span})"
    elif shape == 1:
        # Dense overlap: long durations force heavy concurrency.
        writes, reads = rng.randint(2, 5), rng.randint(1, 5)
        history = make_random_history(rng, writes, reads, span=3.0, max_duration=6.0)
        origin = f"make_random_history({writes}, {reads}, dense)"
    elif shape == 2:
        batches, size = rng.randint(1, 2), rng.randint(3, 4)
        base = concurrent_batch_history(batches, size)
        ops = [op for op in base.operations if rng.random() > 0.15]
        if not ops:
            ops = list(base.operations)
        history = History(ops)
        origin = f"concurrent_batch_history({batches}, {size}) with drops"
    elif shape == 3:
        batches, size = rng.randint(1, 2), 3
        base = non_2atomic_batch_history(batches, size)
        ops = [op for op in base.operations if rng.random() > 0.1]
        if not ops:
            ops = list(base.operations)
        history = History(ops)
        origin = f"non_2atomic_batch_history({batches}, {size}) with drops"
    elif shape == 4:
        # Chaos-layer generator: indeterminate-op storm on one register.
        per = rng.randint(4, 8)
        ops = indeterminate_storm_trace(
            rng, num_keys=1, ops_per_key=per, fraction=0.4
        )
        history = History(ops)
        origin = f"indeterminate_storm_trace(1, {per})"
    else:
        # Chaos-layer clock model: re-stamp a random history through
        # per-client skewed clocks before verification.
        writes, reads = rng.randint(2, 5), rng.randint(1, 6)
        base = make_random_history(rng, writes, reads, span=4.0)
        model = SkewedClocks(
            max_skew_ms=rng.choice([0.05, 0.2, 1.0]),
            drift_ppm=rng.choice([0.0, 500.0]),
            seed=rng.getrandbits(32),
        )
        history = History(apply_clock_skew(list(base.operations), model))
        origin = (
            f"make_random_history({writes}, {reads}) + SkewedClocks"
            f"({model.max_skew_ms}, {model.drift_ppm})"
        )
    return history, origin


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
def test_differential_fuzz_against_oracle():
    rng = random.Random(TEST_SEED)
    for iteration in range(FUZZ_ITERS):
        history, origin = random_case(rng)
        problems = disagreements(history.operations)
        if problems:
            report_divergence(
                list(history.operations), problems, f"iteration {iteration}: {origin}"
            )


def test_differential_fuzz_across_executors():
    """serial/threads/processes engines must agree register-for-register."""
    rng = random.Random(TEST_SEED + 17)
    builder = TraceBuilder()
    for register in range(6):
        history, _ = random_case(rng)
        for op in history.operations:
            # Rebuild with a register key; op_ids stay unique.
            builder.append(
                Operation(
                    op_type=op.op_type,
                    value=op.value,
                    start=op.start,
                    finish=op.finish,
                    key=f"fuzz-{register}",
                    client=op.client,
                    weight=op.weight,
                )
            )
    trace = builder.build()
    baseline = {
        key: bool(result)
        for key, result in Engine(executor="serial").verify_trace(trace, 2).results.items()
    }
    for executor in ("threads", "processes"):
        report = Engine(executor=executor, jobs=2).verify_trace(trace, 2)
        got = {key: bool(result) for key, result in report.results.items()}
        assert got == baseline, (
            f"{executor} executor diverges from serial (seed {TEST_SEED:#x})"
        )


def test_corpus_replays_agree():
    """Every minimised divergence ever recorded must stay fixed."""
    entries = sorted(CORPUS_DIR.glob("fuzz-*.jsonl"))
    if not entries:
        pytest.skip("corpus is empty (no divergence has ever been recorded)")
    for path in entries:
        trace = load_jsonl(path)
        for key in trace.keys():
            problems = disagreements(trace[key].operations)
            assert not problems, (
                f"corpus entry {path.name} diverges again:\n  " + "\n  ".join(problems)
            )


@pytest.mark.skipif(not vector.NUMPY_AVAILABLE, reason="numpy not installed")
def test_rcol_roundtrip_fuzz_parity(tmp_path):
    """.rcol round-trips preserve every verdict observable, YES and NO alike."""
    import re

    from repro.core.vector import verify_columnar
    from repro.io.rcol import RcolFile, dump_rcol

    def scrub(reason):
        # Loading a trace file assigns fresh op_ids (ids are process-local,
        # not serialised), so "#N" references in reasons cannot be stable.
        return None if reason is None else re.sub(r"#\d+", "#?", reason)

    rng = random.Random(TEST_SEED + 29)
    for iteration in range(FUZZ_ITERS):
        history, origin = random_case(rng)
        if history.is_empty:
            continue
        path = tmp_path / f"fuzz-{iteration}.rcol"
        dump_rcol(history, path)
        with RcolFile(path) as rf:
            (key,) = rf.keys()
            for k in (1, 2):
                ref = verify(history, k, kernel="numpy")
                got = verify_columnar(rf.load_columnar(key), k)
                context = (iteration, origin, k, TEST_SEED)
                assert bool(got) == bool(ref), context
                assert scrub(got.reason) == scrub(ref.reason), context
                assert got.stats == ref.stats, context
