"""Unit tests for the Gibbons–Korach 1-AV (linearizability) checker."""

import pytest

from repro.algorithms.gk import find_1atomicity_violation, is_1atomic, verify_1atomic
from repro.core.history import History
from repro.core.operation import read, write


class TestAtomicHistories:
    def test_serial_history_is_atomic(self, atomic_history):
        result = verify_1atomic(atomic_history)
        assert result
        assert result.k == 1
        assert result.algorithm == "GK"

    def test_overlapping_read_write_is_atomic(self, concurrent_overlap_history):
        assert is_1atomic(concurrent_overlap_history)

    def test_empty_history_is_atomic(self):
        assert verify_1atomic(History([]))

    def test_writes_only_history_is_atomic(self):
        h = History([write("a", 0.0, 5.0), write("b", 1.0, 6.0), write("c", 2.0, 7.0)])
        assert is_1atomic(h)

    def test_concurrent_writes_with_fresh_reads(self):
        # Two concurrent writes, each read after both finish, reads ordered so
        # a valid serialisation exists (read of b, then read of a would fail;
        # here both reads return the same final value).
        h = History(
            [
                write("a", 0.0, 10.0),
                write("b", 1.0, 11.0),
                read("b", 12.0, 13.0),
                read("b", 14.0, 15.0),
            ]
        )
        assert is_1atomic(h)


class TestNonAtomicHistories:
    def test_stale_read_is_not_atomic(self, stale_by_one_history):
        result = verify_1atomic(stale_by_one_history)
        assert not result
        assert "forward-overlap" in result.reason or "backward-in-forward" in result.reason

    def test_two_stale_values_not_atomic(self, stale_by_two_history):
        assert not is_1atomic(stale_by_two_history)

    def test_new_old_inversion_not_atomic(self):
        # Read of the old value strictly after a read of the new value.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0),
                read("b", 4.0, 5.0),
                read("a", 6.0, 7.0),
            ]
        )
        assert not is_1atomic(h)

    def test_anomalous_history_rejected(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        result = verify_1atomic(h)
        assert not result
        assert "anomal" in result.reason.lower()


class TestViolationReporting:
    def test_forward_overlap_detected(self):
        # Two forward zones that overlap: w(a) finishes, w(b) finishes, then a
        # read of a and a read of b whose zones overlap in time.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0),
                read("a", 6.0, 7.0),
                read("b", 4.0, 8.0),
            ]
        )
        violation = find_1atomicity_violation(h)
        assert violation is not None
        condition, first, second = violation
        assert condition == "forward-overlap"
        assert {first.value, second.value} == {"a", "b"}

    def test_backward_in_forward_detected(self):
        # Cluster "outer" has a forward zone [1, 10]; cluster "inner" is a lone
        # write spanning [3, 5], a backward zone contained in the forward one.
        h = History(
            [
                write("outer", 0.0, 1.0),
                read("outer", 10.0, 11.0),
                write("inner", 3.0, 5.0),
            ]
        )
        violation = find_1atomicity_violation(h)
        assert violation is not None
        condition, forward_cluster, backward_cluster = violation
        assert condition == "backward-in-forward"
        assert forward_cluster.value == "outer"
        assert backward_cluster.value == "inner"

    def test_no_violation_on_atomic_history(self, atomic_history):
        assert find_1atomicity_violation(atomic_history) is None

    def test_reason_names_both_values(self, stale_by_one_history):
        result = verify_1atomic(stale_by_one_history)
        assert "'a'" in result.reason and "'b'" in result.reason


class TestAgreementWithDefinition:
    @pytest.mark.parametrize("num_writes", [1, 2, 3, 5, 8])
    def test_serial_histories_always_atomic(self, num_writes):
        ops = []
        t = 0.0
        for i in range(num_writes):
            ops.append(write(i, t, t + 1.0))
            ops.append(read(i, t + 2.0, t + 3.0))
            t += 4.0
        assert is_1atomic(History(ops))

    @pytest.mark.parametrize("staleness", [1, 2, 3])
    def test_any_definitely_stale_read_breaks_atomicity(self, staleness):
        ops = [write(i, 2.0 * i, 2.0 * i + 1.0) for i in range(staleness + 1)]
        last_finish = ops[-1].finish
        ops.append(read(0, last_finish + 1.0, last_finish + 2.0))
        assert not is_1atomic(History(ops))
