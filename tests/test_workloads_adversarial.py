"""Unit tests for the adversarial (high write concurrency) history generators."""

import pytest

from repro.algorithms.fzf import verify_2atomic_fzf
from repro.algorithms.lbt import verify_2atomic
from repro.core.preprocess import find_anomalies
from repro.workloads.adversarial import (
    concurrent_batch_history,
    high_concurrency_history,
    non_2atomic_batch_history,
)


class TestConcurrentBatchHistory:
    def test_operation_counts(self):
        h = concurrent_batch_history(num_batches=4, batch_size=6, reads_per_batch=2)
        assert len(h.writes) == 24
        assert len(h.reads) == 8

    def test_write_concurrency_equals_batch_size(self):
        h = concurrent_batch_history(num_batches=3, batch_size=7)
        assert h.max_concurrent_writes() == 7

    def test_is_2atomic(self):
        h = concurrent_batch_history(num_batches=3, batch_size=5)
        assert verify_2atomic(h)
        assert verify_2atomic_fzf(h)

    def test_no_anomalies(self):
        assert not find_anomalies(concurrent_batch_history(3, 4))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            concurrent_batch_history(0, 3)
        with pytest.raises(ValueError):
            concurrent_batch_history(3, 0)

    def test_values_are_unique(self):
        h = concurrent_batch_history(5, 5)
        values = [w.value for w in h.writes]
        assert len(values) == len(set(values))


class TestHighConcurrencyHistory:
    def test_concurrency_scales_with_size(self):
        small = high_concurrency_history(40, concurrency_fraction=0.25)
        large = high_concurrency_history(160, concurrency_fraction=0.25)
        assert large.max_concurrent_writes() > small.max_concurrent_writes()

    def test_concurrency_close_to_requested_fraction(self):
        n = 200
        h = high_concurrency_history(n, concurrency_fraction=0.25)
        assert h.max_concurrent_writes() == pytest.approx(n * 0.25, rel=0.1)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            high_concurrency_history(3)

    def test_still_2atomic(self):
        h = high_concurrency_history(60)
        assert verify_2atomic(h)


class TestNon2AtomicBatchHistory:
    def test_rejected_by_both_algorithms(self):
        h = non_2atomic_batch_history(num_batches=3, batch_size=4)
        assert not verify_2atomic(h)
        assert not verify_2atomic_fzf(h)

    def test_requires_batch_size_three(self):
        with pytest.raises(ValueError):
            non_2atomic_batch_history(2, 2)

    def test_single_batch_is_already_non_2atomic(self):
        assert not verify_2atomic(non_2atomic_batch_history(1, 3))

    def test_no_anomalies(self):
        assert not find_anomalies(non_2atomic_batch_history(2, 4))
