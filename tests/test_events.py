"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.core.errors import SimulationError
from repro.simulation.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(5.0, order.append, "late")
        loop.schedule(1.0, order.append, "early")
        loop.schedule(3.0, order.append, "middle")
        loop.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_run_in_scheduling_order(self):
        loop = EventLoop()
        order = []
        for name in ("first", "second", "third"):
            loop.schedule(1.0, order.append, name)
        loop.run()
        assert order == ["first", "second", "third"]

    def test_now_advances_with_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.5, lambda: seen.append(loop.now))
        loop.schedule(7.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [2.5, 7.0]
        assert loop.now == 7.0

    def test_events_can_schedule_more_events(self):
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule(1.0, lambda: order.append("chained"))

        loop.schedule(1.0, first)
        loop.run()
        assert order == ["first", "chained"]

    def test_schedule_at_absolute_time(self):
        loop = EventLoop(start_time=10.0)
        seen = []
        loop.schedule_at(12.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [12.0]

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        loop = EventLoop()
        ran = []
        event = loop.schedule(1.0, ran.append, "x")
        event.cancel()
        loop.run()
        assert ran == []

    def test_cancel_only_affects_target_event(self):
        loop = EventLoop()
        ran = []
        keep = loop.schedule(1.0, ran.append, "keep")
        drop = loop.schedule(2.0, ran.append, "drop")
        drop.cancel()
        loop.run()
        assert ran == ["keep"]


class TestRunControls:
    def test_run_returns_number_of_events(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), lambda: None)
        assert loop.run() == 5
        assert loop.processed == 5

    def test_run_until_stops_at_time(self):
        loop = EventLoop()
        ran = []
        loop.schedule(1.0, ran.append, "a")
        loop.schedule(5.0, ran.append, "b")
        loop.run_until(2.0)
        assert ran == ["a"]
        assert loop.now == 2.0
        loop.run()
        assert ran == ["a", "b"]

    def test_max_events_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(1.0, reschedule)

        loop.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=50)

    def test_step_on_empty_queue(self):
        assert EventLoop().step() is False
