"""Unit tests for the unified verification API (repro.core.api)."""

import pytest

from repro.core.api import (
    DEFAULT_MAX_EXACT_OPS,
    MinimalKBound,
    minimal_k,
    minimal_k_bound,
    verify,
    verify_trace,
)
from repro.core.errors import VerificationError
from repro.core.history import History, MultiHistory
from repro.core.operation import read, write
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestVerifyDispatch:
    def test_k1_uses_gk(self, atomic_history):
        result = verify(atomic_history, 1)
        assert result
        assert result.algorithm == "GK"

    def test_k2_uses_fzf_by_default(self, stale_by_one_history):
        result = verify(stale_by_one_history, 2)
        assert result
        assert result.algorithm == "FZF"

    def test_k3_uses_exact_for_small_histories(self, stale_by_two_history):
        result = verify(stale_by_two_history, 3)
        assert result
        assert result.algorithm == "exact"

    def test_explicit_algorithm_selection(self, stale_by_one_history):
        assert verify(stale_by_one_history, 2, algorithm="lbt").algorithm == "LBT"
        assert (
            verify(stale_by_one_history, 2, algorithm="lbt-reference").algorithm
            == "LBT-reference"
        )

    def test_unknown_algorithm_rejected(self, atomic_history):
        with pytest.raises(VerificationError):
            verify(atomic_history, 1, algorithm="does-not-exist")

    def test_algorithm_k_mismatch_rejected(self, atomic_history):
        with pytest.raises(VerificationError):
            verify(atomic_history, 1, algorithm="lbt")

    def test_invalid_k_rejected(self, atomic_history):
        with pytest.raises(VerificationError):
            verify(atomic_history, 0)

    def test_large_history_with_k3_refused_in_auto_mode(self):
        h = serial_history(num_writes=60, reads_per_write=1)
        assert len(h) > DEFAULT_MAX_EXACT_OPS
        with pytest.raises(VerificationError):
            verify(h, 3)

    def test_large_history_with_k3_allowed_when_limit_raised(self):
        h = serial_history(num_writes=30, reads_per_write=1)
        result = verify(h, 3, max_exact_ops=len(h))
        assert result

    def test_preprocess_handles_anomalies_gracefully(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        result = verify(h, 2)
        assert not result
        assert "anomal" in result.reason.lower()

    def test_preprocess_false_requires_clean_history(self, atomic_history):
        # Clean histories work either way.
        assert verify(atomic_history, 1, preprocess=False)

    def test_preprocess_applies_write_shortening(self):
        # A write far longer than its read requires Section II-C shortening
        # for the algorithms' assumptions to hold.
        h = History(
            [
                write("a", 0.0, 100.0),
                read("a", 1.0, 2.0),
                write("b", 3.0, 4.0),
                read("b", 5.0, 6.0),
            ]
        )
        assert verify(h, 2)


class TestVerifyTrace:
    def test_per_key_results(self):
        ops = [
            write("a", 0.0, 1.0, key="good"),
            read("a", 2.0, 3.0, key="good"),
            write("x", 0.0, 1.0, key="stale"),
            write("y", 2.0, 3.0, key="stale"),
            read("x", 4.0, 5.0, key="stale"),
        ]
        trace = MultiHistory(ops)
        results = verify_trace(trace, 1)
        assert bool(results["good"]) is True
        assert bool(results["stale"]) is False

    def test_trace_is_2atomic_iff_every_key_is(self):
        ops = [
            write("x", 0.0, 1.0, key="k1"),
            write("y", 2.0, 3.0, key="k1"),
            read("x", 4.0, 5.0, key="k1"),
            write("p", 0.0, 1.0, key="k2"),
            read("p", 2.0, 3.0, key="k2"),
        ]
        results = verify_trace(MultiHistory(ops), 2)
        assert all(bool(r) for r in results.values())


class TestMinimalK:
    def test_atomic(self, atomic_history):
        assert minimal_k(atomic_history) == 1

    def test_stale_by_one(self, stale_by_one_history):
        assert minimal_k(stale_by_one_history) == 2

    def test_stale_by_two(self, stale_by_two_history):
        assert minimal_k(stale_by_two_history) == 3

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_generator(self, k):
        h = exactly_k_atomic_history(k, num_writes=k + 2)
        assert minimal_k(h) == k

    def test_anomalous_history_returns_none(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        assert minimal_k(h) is None

    def test_empty_history(self):
        assert minimal_k(History([])) == 1

    def test_large_history_needing_k3_raises(self):
        # The documented contract: minimal_k does NOT return a lower bound,
        # it raises; minimal_k_bound is the total variant.
        h = exactly_k_atomic_history(3, num_writes=40)
        with pytest.raises(VerificationError, match="k >= 3"):
            minimal_k(h)

    def test_large_history_within_2_is_fine(self):
        h = exactly_k_atomic_history(2, num_writes=60)
        assert minimal_k(h) == 2


class TestMinimalKBound:
    def test_exact_small_ks(self, atomic_history, stale_by_one_history, stale_by_two_history):
        assert minimal_k_bound(atomic_history) == MinimalKBound(k=1, exact=True)
        assert minimal_k_bound(stale_by_one_history) == MinimalKBound(k=2, exact=True)
        bound = minimal_k_bound(stale_by_two_history)
        assert (bound.k, bound.exact) == (3, True)

    def test_large_history_returns_lower_bound_instead_of_raising(self):
        h = exactly_k_atomic_history(3, num_writes=40)
        assert len(h) > DEFAULT_MAX_EXACT_OPS
        bound = minimal_k_bound(h)
        assert (bound.k, bound.exact) == (3, False)
        assert "max_exact_ops" in bound.reason
        assert str(bound) == "k >= 3"

    def test_anomalous_history_has_no_finite_k(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        bound = minimal_k_bound(h)
        assert (bound.k, bound.exact) == (None, True)
        assert "anomal" in bound.reason

    def test_empty_history_is_atomic(self):
        assert minimal_k_bound(History([])) == MinimalKBound(k=1, exact=True)

    def test_agrees_with_minimal_k_when_exact(self):
        for k in (1, 2, 3):
            h = exactly_k_atomic_history(k, num_writes=k + 2)
            bound = minimal_k_bound(h)
            assert bound.exact and bound.k == minimal_k(h) == k


class TestVerifyTraceEngineDelegation:
    def _trace(self):
        ops = []
        ops.extend(serial_history(3, 1, key="fresh").operations)
        ops.extend(exactly_k_atomic_history(2, 4, key="lagging").operations)
        return MultiHistory(ops)

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_parallel_executors_match_serial(self, executor):
        trace = self._trace()
        expected = {key: bool(r) for key, r in verify_trace(trace, 2).items()}
        got = verify_trace(trace, 2, executor=executor, jobs=2)
        assert {key: bool(r) for key, r in got.items()} == expected

    def test_serial_preserves_trace_key_order(self):
        trace = self._trace()
        assert list(verify_trace(trace, 2)) == list(trace.keys())
