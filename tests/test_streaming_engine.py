"""Unit tests for the streaming verification engine."""

import random

import pytest

from repro.analysis.report import StreamVerificationReport, TraceVerificationReport
from repro.core.errors import VerificationError
from repro.core.operation import read, write
from repro.core.windows import WindowPolicy
from repro.engine import Engine, StreamingEngine
from repro.workloads.synthetic import synthetic_trace


def completion_order(ops):
    return sorted(ops, key=lambda op: (op.finish, op.op_id))


def trace_stream(trace):
    return completion_order(op for key in trace.keys() for op in trace[key].operations)


@pytest.fixture
def small_trace():
    return synthetic_trace(random.Random(5), 4, 40, staleness_probability=0.2)


class TestConfiguration:
    def test_invalid_mode_rejected(self):
        with pytest.raises(VerificationError):
            StreamingEngine(mode="batch")

    def test_rolling_rejects_process_executor(self):
        with pytest.raises(VerificationError):
            StreamingEngine(executor="processes")

    def test_windowed_accepts_process_executor(self):
        engine = StreamingEngine(mode="windowed", executor="processes", jobs=2)
        assert engine.executor.name == "processes"

    def test_invalid_jobs_rejected(self):
        with pytest.raises(VerificationError):
            StreamingEngine(jobs=0)

    def test_invalid_k_rejected(self, small_trace):
        with pytest.raises(VerificationError):
            StreamingEngine().verify_stream(trace_stream(small_trace), 0)


class TestRollingMode:
    def test_report_shape(self, small_trace):
        ops = trace_stream(small_trace)
        report = StreamingEngine(window=WindowPolicy.count(50)).verify_stream(ops, 2)
        assert isinstance(report, StreamVerificationReport)
        assert report.mode == "rolling"
        assert report.total_ops == len(ops)
        assert report.num_registers == len(small_trace)
        assert report.num_windows == len(report.timeline)
        assert report.window == "count(50)"

    def test_on_window_called_per_window(self, small_trace):
        ops = trace_stream(small_trace)
        calls = []
        report = StreamingEngine(window=WindowPolicy.count(30)).verify_stream(
            ops, 2, on_window=calls.append
        )
        assert [w.stats.index for w in calls] == [
            w.stats.index for w in report.timeline
        ]

    def test_thread_executor_matches_serial(self, small_trace):
        ops = trace_stream(small_trace)
        serial = StreamingEngine(window=WindowPolicy.count(25)).verify_stream(ops, 2)
        threaded = StreamingEngine(
            window=WindowPolicy.count(25), executor="threads", jobs=4
        ).verify_stream(ops, 2)
        assert {k: bool(v) for k, v in serial.results.items()} == {
            k: bool(v) for k, v in threaded.results.items()
        }

    def test_peek_windows_match_exact_final_verdicts(self, small_trace):
        ops = trace_stream(small_trace)
        exact = StreamingEngine(window=WindowPolicy.count(25)).verify_stream(ops, 2)
        peeked = StreamingEngine(
            window=WindowPolicy.count(25), check_per_window=False
        ).verify_stream(ops, 2)
        assert {k: bool(v) for k, v in exact.results.items()} == {
            k: bool(v) for k, v in peeked.results.items()
        }
        # Peeked windows still carry verdict objects for every touched register.
        assert all(w.verdicts for w in peeked.timeline)

    def test_time_windows_supported(self, small_trace):
        ops = trace_stream(small_trace)
        span = ops[-1].finish - ops[0].finish
        report = StreamingEngine(
            window=WindowPolicy.time(max(span / 5, 1e-6))
        ).verify_stream(ops, 1)
        assert report.num_windows >= 2
        assert report.total_ops == len(ops)

    def test_empty_stream(self):
        report = StreamingEngine().verify_stream([], 2)
        assert report.num_windows == 0
        assert report.num_registers == 0
        assert report.is_k_atomic  # vacuously


class TestTimeline:
    def test_first_alarm_location(self):
        # Register "bad" turns non-linearizable in the second window.
        ops = [
            write("a", 0.0, 1.0, key="bad"),
            read("a", 2.0, 3.0, key="bad"),
            write("b", 4.0, 5.0, key="bad"),
            read("a", 6.0, 7.0, key="bad"),  # stale: not 1-atomic
        ]
        report = StreamingEngine(window=WindowPolicy.count(2)).verify_stream(ops, 1)
        alarm = report.first_alarm
        assert alarm is not None
        window_index, key, verdict = alarm
        assert key == "bad" and window_index == 1
        assert verdict.final and not verdict

    def test_to_trace_report_round_trip(self, small_trace):
        ops = trace_stream(small_trace)
        streaming = StreamingEngine(window=WindowPolicy.count(40)).verify_stream(ops, 2)
        merged = streaming.to_trace_report()
        assert isinstance(merged, TraceVerificationReport)
        assert merged.executor == "streaming-rolling"
        assert merged.num_shards == streaming.num_windows
        assert merged.total_ops == streaming.total_ops
        assert {k: bool(v) for k, v in merged.results.items()} == {
            k: bool(v) for k, v in streaming.results.items()
        }
        assert merged.summary()  # renders

    def test_render_outputs_timeline_and_failures(self):
        ops = [
            write("a", 0.0, 1.0, key="r"),
            write("b", 2.0, 3.0, key="r"),
            read("a", 4.0, 5.0, key="r"),
        ]
        report = StreamingEngine(window=WindowPolicy.count(2)).verify_stream(ops, 1)
        text = report.render()
        assert "window timeline:" in text
        assert "failing registers:" in text

    def test_window_report_render_lines(self, small_trace):
        ops = trace_stream(small_trace)
        captured = []
        StreamingEngine(window=WindowPolicy.count(30)).verify_stream(
            ops, 2, on_window=captured.append
        )
        lines = captured[0].render_lines()
        assert lines[0].startswith("[window ")
        assert len(lines) == 1 + len(captured[0].verdicts)


class TestWindowedMode:
    def test_pending_reads_do_not_false_alarm_across_windows(self):
        # Write and read overlap; the read completes first and lands one
        # window before its dictating write.  Windowed mode must wait, not
        # report a spurious anomaly.
        ops = [
            write("x", 0.0, 1.0, key="r"),
            read("x", 1.5, 2.0, key="r"),
            read("y", 2.5, 3.0, key="r"),  # completes before write("y") does
            write("y", 2.4, 4.0, key="r"),
            read("y", 5.0, 6.0, key="r"),
        ]
        report = StreamingEngine(
            window=WindowPolicy.count(2), mode="windowed"
        ).verify_stream(ops, 2)
        assert bool(report.results["r"]), report.results["r"].reason

    def test_never_written_value_is_anomaly_at_end(self):
        ops = [
            write("x", 0.0, 1.0, key="r"),
            read("ghost", 2.0, 3.0, key="r"),
        ]
        report = StreamingEngine(
            window=WindowPolicy.count(10), mode="windowed"
        ).verify_stream(ops, 2)
        result = report.results["r"]
        assert not result and "ever assigned" in result.reason

    def test_dictating_write_injected_for_stale_cross_window_reads(self):
        # A read in window 2 returns the value written in window 0; the
        # carried write must be injected so the window verifies (2-atomically)
        # rather than failing with a missing-write anomaly.
        ops = [
            write("a", 0.0, 1.0, key="r"),
            read("a", 2.0, 3.0, key="r"),
            write("b", 4.0, 5.0, key="r"),
            read("b", 6.0, 7.0, key="r"),
            read("a", 8.0, 9.0, key="r"),  # stale read of window-0 value
            read("b", 10.0, 11.0, key="r"),
        ]
        report = StreamingEngine(
            window=WindowPolicy.count(2), mode="windowed"
        ).verify_stream(ops, 2)
        assert bool(report.results["r"]), report.results["r"].reason
        # The same trace is NOT 1-atomic, and windowed mode must catch it
        # inside the window containing the stale read.
        report1 = StreamingEngine(
            window=WindowPolicy.count(2), mode="windowed"
        ).verify_stream(ops, 1)
        assert not report1.results["r"]
        assert report1.first_alarm is not None

    def test_ops_seen_is_per_register_like_rolling_mode(self):
        ops = [
            write("a", 0.0, 1.0, key="r1"),
            write("x", 0.5, 1.5, key="r2"),
            write("b", 2.0, 3.0, key="r1"),
            read("a", 4.0, 5.0, key="r1"),  # r1 not 1-atomic after its 3rd op
            read("x", 4.5, 5.5, key="r2"),
        ]
        report = StreamingEngine(
            window=WindowPolicy.count(len(ops)), mode="windowed"
        ).verify_stream(ops, 1)
        alarm = report.first_alarm
        assert alarm is not None
        _, key, verdict = alarm
        assert key == "r1"
        # Stamped with r1's own stream count (3), not the global count (5).
        assert verdict.ops_seen == 3

    def test_final_yes_is_labelled_approximate(self, small_trace):
        ops = trace_stream(small_trace)
        report = StreamingEngine(
            window=WindowPolicy.count(30), mode="windowed"
        ).verify_stream(ops, 2)
        for result in report.results.values():
            if result:
                assert result.algorithm == "windowed"
                assert "approximation" in result.reason
