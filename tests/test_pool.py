"""Worker pool, consistent-hash routing, failover, and graceful drain.

The contract under test everywhere here is *verdict parity*: a pooled audit
session — even one that loses workers mid-stream, resizes its pool, or is
drained and resumed — must emit the exact verdict stream (reasons and
witnesses included) of a single-process session over the same operations.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal

import pytest

from repro.core.api import verify_trace
from repro.core.errors import ServiceError
from repro.engine.codec import decode_feed_batches, encode_feed_batches
from repro.service import (
    AuditClient,
    AuditServer,
    AuditSession,
    HashRing,
    PooledAuditSession,
    WorkerPool,
)
from repro.service.checkpoint import CheckpointStore
from repro.service.pool import POOL_LOG_NAMESPACE, POOL_SNAP_NAMESPACE
from repro.service.routing import canonical_key_bytes
from repro.service.session import SessionConfig
from repro.state import available_backends, open_state_store

from tests.conftest import TEST_SEED
from tests.test_service import make_trace_ops, result_signature

CONFIG = SessionConfig(k=2, algorithm="lbt", window_mode="count", window_size=16)

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def run_single_process(ops, config=CONFIG):
    """Reference: windows + final report from an in-process session."""
    session = AuditSession.start("ref", config)
    windows = [r for op in ops if (r := session.feed(op)) is not None]
    return windows, session.finish()


def assert_window_parity(ref_windows, got_windows):
    assert len(ref_windows) == len(got_windows)
    for index, (ref, got) in enumerate(zip(ref_windows, got_windows)):
        assert list(ref.verdicts) == list(got.verdicts), f"window {index}"
        for key in ref.verdicts:
            a, b = ref.verdicts[key], got.verdicts[key]
            assert (bool(a.result), a.final, a.ops_seen) == (
                bool(b.result), b.final, b.ops_seen,
            ), f"window {index} register {key!r}"


def assert_report_parity(ref_report, got_report):
    assert list(ref_report.results) == list(got_report.results)
    for key, expected in ref_report.results.items():
        assert result_signature(expected) == result_signature(
            got_report.results[key]
        ), f"register {key!r} (seed {TEST_SEED:#x})"


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
def test_ring_routes_deterministically_and_validates():
    ring = HashRing([0, 1, 2])
    keys = [(f"s{i}", f"r{j}") for i in range(20) for j in range(10)]
    assert ring.assignment(keys) == ring.assignment(keys)
    rebuilt = HashRing([0, 1, 2])  # a fresh process would build this ring
    assert ring.assignment(keys) == rebuilt.assignment(keys)
    with pytest.raises(ServiceError):
        HashRing([])
    with pytest.raises(ServiceError):
        HashRing([0, 0, 1])
    with pytest.raises(ServiceError):
        HashRing([0], replicas=0)


def test_canonical_key_bytes_distinguishes_types():
    values = [1, "1", 1.0, True, None, ("1",), (1,)]
    encodings = [canonical_key_bytes(v) for v in values]
    # bool is an int subclass and 1.0 == 1, so only the byte encodings —
    # not the values — can tell these shard keys apart.
    assert len(set(encodings)) == len(values)


def test_ring_resize_moves_about_one_over_n():
    rng = random.Random(TEST_SEED)
    keys = [(f"session-{rng.randrange(1 << 30)}", f"reg-{i}") for i in range(4000)]
    for n in (2, 4, 8):
        ring = HashRing(range(n))
        grown = ring.resized(range(n + 1))
        moved = ring.moved_keys(grown, keys)
        fraction = len(moved) / len(keys)
        # Ideal is 1/(n+1); replicas concentrate the distribution near it.
        assert fraction <= 1.5 / (n + 1), (n, fraction)
        # Every moved key must land on the *new* worker — a key hopping
        # between two old workers would invalidate untouched checker state.
        assert all(grown.route(key) == n for key in moved)


def test_ring_load_spread_is_reasonable():
    rng = random.Random(TEST_SEED + 1)
    keys = [(f"s{rng.randrange(1 << 30)}", i) for i in range(6000)]
    ring = HashRing(range(4))
    counts = {w: 0 for w in range(4)}
    for key in keys:
        counts[ring.route(key)] += 1
    ideal = len(keys) / 4
    assert max(counts.values()) <= 1.35 * ideal, counts


# ----------------------------------------------------------------------
# Feed-batch codec
# ----------------------------------------------------------------------
def test_feed_batch_codec_round_trips_stream_order():
    _trace, stream = make_trace_ops(random.Random(TEST_SEED), staleness=0.1)
    by_key = {}
    for op in stream:
        by_key.setdefault(op.key, []).append(op)
    blob = encode_feed_batches(list(by_key.items()))
    decoded = decode_feed_batches(blob)
    assert [key for key, _ in decoded] == list(by_key)
    for (key, ops) in decoded:
        originals = by_key[key]
        assert len(ops) == len(originals)
        for got, want in zip(ops, originals):
            assert (
                got.op_id, got.op_type, got.value, got.start,
                got.finish, got.key, got.client, got.weight,
            ) == (
                want.op_id, want.op_type, want.value, want.start,
                want.finish, want.key, want.client, want.weight,
            )


# ----------------------------------------------------------------------
# Pooled sessions: parity, failover, resize
# ----------------------------------------------------------------------
def test_pooled_session_matches_single_process_exactly():
    trace, stream = make_trace_ops(
        random.Random(TEST_SEED), registers=6, ops=80, staleness=0.15
    )
    ref_windows, ref_report = run_single_process(stream)
    batch = verify_trace(trace, 2, algorithm="lbt")

    async def scenario():
        pool = WorkerPool(3)
        await pool.start()
        try:
            session = PooledAuditSession.start("p1", CONFIG, pool)
            windows = [
                r for op in stream if (r := await session.afeed(op)) is not None
            ]
            return windows, await session.afinish()
        finally:
            await pool.stop()

    windows, report = asyncio.run(scenario())
    assert_window_parity(ref_windows, windows)
    assert_report_parity(ref_report, report)
    # ...and the final verdicts equal batch verification, witness included.
    for key, result in batch.items():
        assert result_signature(report.results[key]) == result_signature(result)


def test_worker_kill_failover_keeps_verdict_stream_identical():
    rng = random.Random(TEST_SEED + 2)
    trace, stream = make_trace_ops(
        rng, registers=6, ops=70, staleness=0.2
    )
    ref_windows, ref_report = run_single_process(stream)
    # Kill a worker at randomized feed indices — including mid-window
    # positions — across a few runs; parity must hold at every one.
    kill_points = sorted(rng.sample(range(20, len(stream) - 10), 3))

    async def scenario(kill_at):
        pool = WorkerPool(3)
        await pool.start()
        try:
            session = PooledAuditSession.start("kill", CONFIG, pool)
            windows = []
            for index, op in enumerate(stream):
                if index == kill_at:
                    victim = rng.choice(list(pool.worker_pids().values()))
                    os.kill(victim, signal.SIGKILL)
                report = await session.afeed(op)
                if report is not None:
                    windows.append(report)
            final = await session.afinish()
            return windows, final, pool.worker_stats()
        finally:
            await pool.stop()

    for kill_at in kill_points:
        windows, report, stats = asyncio.run(scenario(kill_at))
        assert_window_parity(ref_windows, windows)
        assert_report_parity(ref_report, report)
        assert sum(row.restarts for row in stats) >= 1
        assert sum(row.restored_shards for row in stats) >= 1


def test_resize_mid_stream_keeps_parity_and_moves_few_shards():
    trace, stream = make_trace_ops(
        random.Random(TEST_SEED + 3), registers=8, ops=60, staleness=0.1
    )
    ref_windows, ref_report = run_single_process(stream)
    third = len(stream) // 3

    async def scenario():
        pool = WorkerPool(2)
        await pool.start()
        try:
            session = PooledAuditSession.start("rz", CONFIG, pool)
            windows = []
            moves = []
            for index, op in enumerate(stream):
                if index == third:
                    moves.append(await pool.resize(4))
                    assert pool.size == 4
                if index == 2 * third:
                    moves.append(await pool.resize(3))
                    assert pool.size == 3
                report = await session.afeed(op)
                if report is not None:
                    windows.append(report)
            final = await session.afinish()
            return windows, final, moves
        finally:
            await pool.stop()

    windows, report, moves = asyncio.run(scenario())
    assert_window_parity(ref_windows, windows)
    assert_report_parity(ref_report, report)
    # Growing 2→4 must not re-deal every shard (8 registers = 8 shards).
    assert moves[0] <= 6, moves


def test_pooled_and_in_process_checkpoints_are_interchangeable():
    _trace, stream = make_trace_ops(
        random.Random(TEST_SEED + 4), registers=5, ops=60, staleness=0.15
    )
    _ref_windows, ref_report = run_single_process(stream)
    half = len(stream) // 2

    async def pooled_then_inproc():
        pool = WorkerPool(2)
        await pool.start()
        try:
            session = PooledAuditSession.start("x1", CONFIG, pool)
            for op in stream[:half]:
                await session.afeed(op)
            payload = await session.acheckpoint_payload()
            await session.aclose()
        finally:
            await pool.stop()
        resumed = AuditSession.resume(payload)
        for op in stream[half:]:
            resumed.feed(op)
        return resumed.finish()

    async def inproc_then_pooled():
        session = AuditSession.start("x2", CONFIG)
        for op in stream[:half]:
            session.feed(op)
        payload = session.checkpoint_payload()
        pool = WorkerPool(2)
        await pool.start()
        try:
            resumed = await PooledAuditSession.resume(payload, pool)
            assert resumed.resumed and resumed.ops_fed == half
            for op in stream[half:]:
                await resumed.afeed(op)
            return await resumed.afinish()
        finally:
            await pool.stop()

    assert_report_parity(ref_report, asyncio.run(pooled_then_inproc()))
    assert_report_parity(ref_report, asyncio.run(inproc_then_pooled()))


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_drain_checkpoints_live_sessions_and_resumes_exactly(tmp_path):
    _trace, stream = make_trace_ops(
        random.Random(TEST_SEED + 5), registers=5, ops=60, staleness=0.1
    )
    _ref_windows, ref_report = run_single_process(stream)
    cut = (len(stream) * 2) // 3

    async def scenario():
        server = AuditServer(
            port=0, checkpoint_dir=tmp_path, workers=2,
            default_config=CONFIG,
        )
        await server.start()
        address = server.addresses[0]
        client = await AuditClient.connect(
            address, session="dr", k=2, algorithm="lbt", window=16, witness=True
        )
        await client.feed_ops(stream[:cut])
        # The checkpoint ack doubles as a sync barrier: the drain sentinel
        # queues behind whatever the pump has produced, so without it the
        # drain could legitimately land before the ops left the socket.
        ack = await client.checkpoint()
        assert ack["ops"] == cut
        drained = asyncio.create_task(server.drain())
        # The drain frame must arrive in-band after the fed operations.
        frame = await asyncio.wait_for(client._frames.get(), timeout=10)
        assert frame["type"] == "draining", frame
        assert frame["resumable"] is True
        assert frame["ops"] == cut
        await client.close()
        await asyncio.wait_for(drained, timeout=10)
        await server.stop()

        # A fresh server (different pool size, to prove routing is not
        # baked into the checkpoint) resumes and finishes the stream.
        server2 = AuditServer(
            port=0, checkpoint_dir=tmp_path, workers=3, default_config=CONFIG
        )
        await server2.start()
        client2 = await AuditClient.connect(
            server2.addresses[0], session="dr", resume=True,
            k=2, algorithm="lbt", window=16, witness=True,
        )
        assert client2.resumed and client2.ops_restored == cut
        await client2.feed_ops(stream[cut:])
        report = await client2.finish()
        await client2.close()
        await server2.stop()
        return report

    report = asyncio.run(scenario())
    assert_report_parity(ref_report, report)


def test_drain_refuses_new_connections(tmp_path):
    async def scenario():
        server = AuditServer(
            port=0, checkpoint_dir=tmp_path, workers=1, default_config=CONFIG
        )
        await server.start()
        await server.drain()
        # The listener is gone: connecting must fail outright.
        with pytest.raises((ConnectionError, OSError, asyncio.TimeoutError)):
            await asyncio.wait_for(
                AuditClient.connect(f"127.0.0.1:{server.tcp_port or 1}", k=2),
                timeout=5,
            )
        await server.stop()

    asyncio.run(scenario())


def test_sigterm_drains_the_cli_server_and_exits_cleanly(tmp_path):
    """``repro serve`` + SIGTERM: checkpoint, notify the client, exit 0."""
    import subprocess
    import sys

    _trace, stream = make_trace_ops(
        random.Random(TEST_SEED + 6), registers=4, ops=40, staleness=0.1
    )
    cut = len(stream) // 2
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(_REPO_SRC), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1", "--algorithm", "lbt",
            "--checkpoint-dir", str(tmp_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "audit service listening on" in banner, banner
        address = banner.strip().rsplit(" ", 1)[-1]

        async def drive():
            client = await AuditClient.connect(
                address, session="sig", k=2, algorithm="lbt", window=16
            )
            await client.feed_ops(stream[:cut])
            ack = await client.checkpoint()  # barrier: ops are all fed
            assert ack["ops"] == cut
            proc.send_signal(signal.SIGTERM)
            frame = await asyncio.wait_for(client._frames.get(), timeout=15)
            assert frame["type"] == "draining", frame
            assert frame["ops"] == cut and frame["resumable"] is True
            await client.close()

        asyncio.run(drive())
        assert proc.wait(timeout=20) == 0
        output = proc.stdout.read()
        assert "draining audit service" in output
        assert "worker pool:" in output  # final report includes pool stats
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The drain-time checkpoint resumes: finish on an in-process server.
    async def resume_and_finish():
        server = AuditServer(
            port=0, checkpoint_dir=tmp_path, default_config=CONFIG
        )
        await server.start()
        client = await AuditClient.connect(
            server.addresses[0], session="sig", resume=True,
            k=2, algorithm="lbt", window=16, witness=True,
        )
        assert client.resumed and client.ops_restored == cut
        await client.feed_ops(stream[cut:])
        report = await client.finish()
        await server.stop()
        return report

    _ref_windows, ref_report = run_single_process(stream)
    assert_report_parity(ref_report, asyncio.run(resume_and_finish()))


def test_pool_rejects_bad_sizes():
    with pytest.raises(ServiceError):
        WorkerPool(0)
    with pytest.raises(ServiceError):
        WorkerPool(2, snapshot_every=-1)
    with pytest.raises(ServiceError):
        AuditServer(workers=-1)


# ----------------------------------------------------------------------
# State-backend axis: journalled failover state and checkpoint interchange
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", available_backends())
def test_pooled_checkpoint_interchange_through_every_backend(tmp_path, backend):
    """PR 7's pooled↔in-process interchange, routed through each backend."""
    _trace, stream = make_trace_ops(
        random.Random(TEST_SEED + 4), registers=5, ops=60, staleness=0.15
    )
    _ref_windows, ref_report = run_single_process(stream)
    half = len(stream) // 2
    store = CheckpointStore(tmp_path / backend, backend=backend)

    async def pooled_half():
        pool = WorkerPool(2)
        await pool.start()
        try:
            session = PooledAuditSession.start("x1", CONFIG, pool)
            for op in stream[:half]:
                await session.afeed(op)
            store.save("x1", await session.acheckpoint_payload())
            await session.aclose()
        finally:
            await pool.stop()

    asyncio.run(pooled_half())
    # The checkpoint persisted by the pooled session finishes in-process.
    resumed = AuditSession.resume(store.load("x1"))
    for op in stream[half:]:
        resumed.feed(op)
    assert_report_parity(ref_report, resumed.finish())
    store.close()


@pytest.mark.parametrize("backend", ["sqlite", "segments"])
def test_journalled_pool_failover_keeps_parity(tmp_path, backend):
    """Failover state lives in the journal, not parent memory — and a worker
    kill recovers from it with exact verdict parity."""
    _trace, stream = make_trace_ops(
        random.Random(TEST_SEED + 9), registers=5, ops=60, staleness=0.15
    )
    ref_windows, ref_report = run_single_process(stream)
    journal = open_state_store(backend, tmp_path / backend)
    kill_at = len(stream) // 2

    async def scenario():
        pool = WorkerPool(2, journal=journal)
        await pool.start()
        try:
            session = PooledAuditSession.start("jf", CONFIG, pool)
            windows = []
            for index, op in enumerate(stream):
                if index == kill_at:
                    victim = sorted(pool.worker_pids().values())[0]
                    os.kill(victim, signal.SIGKILL)
                report = await session.afeed(op)
                if report is not None:
                    windows.append(report)
            final = await session.afinish()
            return windows, final, pool.worker_stats()
        finally:
            await pool.stop()

    windows, report, stats = asyncio.run(scenario())
    assert_window_parity(ref_windows, windows)
    assert_report_parity(ref_report, report)
    assert sum(row.restarts for row in stats) >= 1
    assert sum(row.restored_shards for row in stats) >= 1
    # The failover copies actually flowed through the journal...
    assert journal.puts > 0
    # ...and retiring the session cleaned its journalled state back out.
    assert journal.keys(POOL_SNAP_NAMESPACE) == []
    assert journal.keys(POOL_LOG_NAMESPACE) == []
    journal.close()
