"""Unit tests for the quorum coordinator protocol."""

import random

import pytest

from repro.core.errors import SimulationError
from repro.simulation.coordinator import Coordinator, QuorumConfig
from repro.simulation.events import EventLoop
from repro.simulation.network import FixedLatency, Network
from repro.simulation.replica import Replica


def build_cluster(num_replicas=3, *, latency=None, drop=0.0, config=None, seed=0):
    loop = EventLoop()
    network = Network(
        loop,
        latency if latency is not None else FixedLatency(1.0),
        random.Random(seed),
        drop_probability=drop,
    )
    replicas = [Replica(f"replica-{i}", loop) for i in range(num_replicas)]
    config = config if config is not None else QuorumConfig(num_replicas=num_replicas)
    coordinator = Coordinator("client-0", loop, network, replicas, config)
    return loop, network, replicas, coordinator


class TestQuorumConfig:
    def test_strictness(self):
        assert QuorumConfig(num_replicas=3, read_quorum=2, write_quorum=2).is_strict
        assert not QuorumConfig(num_replicas=5, read_quorum=1, write_quorum=2).is_strict

    def test_describe_mentions_kind(self):
        assert "sloppy" in QuorumConfig(5, 1, 2).describe()
        assert "strict" in QuorumConfig(3, 2, 2).describe()

    def test_invalid_quorums_rejected(self):
        with pytest.raises(SimulationError):
            QuorumConfig(num_replicas=3, read_quorum=0, write_quorum=1)
        with pytest.raises(SimulationError):
            QuorumConfig(num_replicas=3, read_quorum=1, write_quorum=4)
        with pytest.raises(SimulationError):
            QuorumConfig(num_replicas=0)


class TestWrites:
    def test_write_completes_after_w_acks(self):
        config = QuorumConfig(num_replicas=3, read_quorum=1, write_quorum=2)
        loop, _, replicas, coordinator = build_cluster(3, config=config)
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)
        loop.run()
        assert outcomes == [True]
        # All replicas eventually receive the write even though only W acks
        # were needed for completion.
        assert all(r.store["k"].value == "v1" for r in replicas)

    def test_write_times_out_when_quorum_unreachable(self):
        config = QuorumConfig(num_replicas=3, read_quorum=1, write_quorum=3,
                              request_timeout_ms=20.0)
        loop, _, replicas, coordinator = build_cluster(3, config=config)
        replicas[0].crash()
        outcomes = []
        coordinator.write("k", "v1", outcomes.append)
        loop.run()
        assert outcomes == [False]
        assert coordinator.stats.writes_timed_out == 1

    def test_versions_are_monotonic_per_coordinator(self):
        loop, _, _, coordinator = build_cluster(3)
        v1 = coordinator.next_version()
        v2 = coordinator.next_version()
        assert v2 > v1


class TestReads:
    def test_read_returns_freshest_of_r_replies(self):
        config = QuorumConfig(num_replicas=3, read_quorum=3, write_quorum=1)
        loop, _, replicas, coordinator = build_cluster(3, config=config)
        replicas[0].install("k", "old", (1, "x", 0))
        replicas[1].install("k", "old", (1, "x", 0))
        replicas[2].install("k", "new", (2, "x", 1))
        results = []
        coordinator.read("k", lambda value, version: results.append(value))
        loop.run()
        assert results == ["new"]

    def test_sloppy_read_can_miss_the_latest_value(self):
        # R=1 with per-replica visibility skew: the fastest reply wins, and it
        # may come from a replica that has not seen the newest write.
        config = QuorumConfig(num_replicas=3, read_quorum=1, write_quorum=1)
        loop, _, replicas, coordinator = build_cluster(3, config=config)
        for r in replicas:
            r.install("k", "old", (1, "x", 0))
        replicas[2].install("k", "new", (2, "x", 1))
        results = []
        coordinator.read("k", lambda value, version: results.append(value))
        loop.run()
        # With fixed symmetric latency the first reply is replica-0's, which
        # still holds the old value.
        assert results == ["old"]

    def test_read_of_unknown_key_times_out_to_none(self):
        config = QuorumConfig(num_replicas=2, read_quorum=2, write_quorum=1,
                              request_timeout_ms=10.0)
        loop, _, replicas, coordinator = build_cluster(2, config=config)
        results = []
        coordinator.read("missing", lambda value, version: results.append((value, version)))
        loop.run()
        assert results == [(None, None)]

    def test_read_repair_pushes_fresh_value_to_stale_replicas(self):
        config = QuorumConfig(num_replicas=3, read_quorum=3, write_quorum=1, read_repair=True)
        loop, _, replicas, coordinator = build_cluster(3, config=config)
        replicas[0].install("k", "old", (1, "x", 0))
        replicas[1].install("k", "old", (1, "x", 0))
        replicas[2].install("k", "new", (2, "x", 1))
        coordinator.read("k", lambda value, version: None)
        loop.run()
        assert all(r.store["k"].value == "new" for r in replicas)
        assert coordinator.stats.read_repairs_sent >= 2

    def test_no_read_repair_by_default(self):
        config = QuorumConfig(num_replicas=3, read_quorum=3, write_quorum=1)
        loop, _, replicas, coordinator = build_cluster(3, config=config)
        replicas[0].install("k", "old", (1, "x", 0))
        replicas[1].install("k", "old", (1, "x", 0))
        replicas[2].install("k", "new", (2, "x", 1))
        coordinator.read("k", lambda value, version: None)
        loop.run()
        assert replicas[0].store["k"].value == "old"
        assert coordinator.stats.read_repairs_sent == 0


class TestStats:
    def test_counters_track_operations(self):
        config = QuorumConfig(num_replicas=3, read_quorum=2, write_quorum=2)
        loop, _, _, coordinator = build_cluster(3, config=config)
        coordinator.write("k", "v", lambda ok: None)
        loop.run()
        coordinator.read("k", lambda value, version: None)
        loop.run()
        assert coordinator.stats.writes_started == 1
        assert coordinator.stats.writes_completed == 1
        assert coordinator.stats.reads_started == 1
        assert coordinator.stats.reads_completed == 1
