"""The numpy kernel tier: selection, internals and targeted edge cases.

The randomized parity nets live in ``tests/test_columnar.py`` and the
differential fuzz harness; this module pins the pieces those nets cannot
see directly — the tier-selection precedence of :func:`resolve_kernel`
(including the numpy-absent behaviour, simulated by monkeypatching), the
segmented suffix-minimum (both of its internal strategies), construction
errors in :func:`columnar_from_numpy`, and the closed-form chain-order
check of the vectorized FZF, asserted against the columnar kernels on
histories chosen so the chain path provably runs.
"""

from __future__ import annotations

import random

import pytest

from repro.core import columnar, vector
from repro.core.api import verify
from repro.core.errors import DuplicateValueError, VerificationError
from repro.core.preprocess import find_anomalies, normalize
from repro.workloads.synthetic import practical_history

np = pytest.importorskip("numpy", reason="the vector tier needs numpy")


class TestResolveKernel:
    def test_explicit_kernel_wins(self):
        assert vector.resolve_kernel("object", True) == "object"
        assert vector.resolve_kernel("COLUMNAR", None) == "columnar"
        assert vector.resolve_kernel("numpy", False) == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(VerificationError, match="unknown kernel"):
            vector.resolve_kernel("simd")

    def test_legacy_columnar_boolean(self):
        assert vector.resolve_kernel(None, True) == "columnar"
        assert vector.resolve_kernel(None, False) == "object"

    def test_auto_prefers_numpy_when_available(self):
        assert vector.resolve_kernel() == "numpy"

    def test_numpy_default_toggle(self):
        previous = vector.set_default_enabled(False)
        try:
            assert vector.resolve_kernel() == "columnar"
        finally:
            vector.set_default_enabled(previous)
        assert vector.resolve_kernel() == "numpy"

    def test_columnar_default_toggle_falls_back_to_object(self):
        previous = columnar.set_default_enabled(False)
        try:
            assert vector.resolve_kernel() == "object"
        finally:
            columnar.set_default_enabled(previous)

    def test_numpy_absent_simulation(self, monkeypatch):
        monkeypatch.setattr(vector, "NUMPY_AVAILABLE", False)
        # Auto-selection silently skips the tier...
        assert vector.resolve_kernel() == "columnar"
        # ...but an explicit request is an error, not a silent downgrade.
        with pytest.raises(VerificationError, match="numpy is not importable"):
            vector.resolve_kernel("numpy")

    def test_engine_auto_matches_explicit_numpy(self):
        history = practical_history(random.Random(3), 60, key="auto")
        auto = verify(history, 2)
        explicit = verify(history, 2, kernel="numpy")
        assert (bool(auto), auto.reason, auto.stats) == (
            bool(explicit), explicit.reason, explicit.stats
        )


class TestSegmentedSuffixMin:
    @staticmethod
    def reference(values, off, lengths):
        out = np.empty_like(values)
        for seg, (lo, m) in enumerate(zip(off, lengths)):
            acc = float("inf")
            for i in range(lo + m - 1, lo - 1, -1):
                acc = min(acc, values[i])
                out[i] = acc
        return out

    def _roundtrip(self, lengths, rng):
        lengths = np.asarray(lengths, dtype=np.int64)
        off = np.concatenate(([0], np.cumsum(lengths)))[:-1]
        values = np.asarray(
            [rng.uniform(0, 100) for _ in range(int(lengths.sum()))]
        )
        got = vector._segmented_suffix_min(values, off, lengths)
        assert np.array_equal(got, self.reference(values, off, lengths))

    def test_many_short_segments(self):
        # maxm <= max(64, nsegments): the position-loop strategy.
        rng = random.Random(0)
        self._roundtrip([rng.randint(1, 6) for _ in range(40)], rng)

    def test_few_long_segments(self):
        # maxm > max(64, nsegments): the per-segment accumulate strategy.
        rng = random.Random(1)
        self._roundtrip([100, 73, 1], rng)

    def test_single_element_segments(self):
        rng = random.Random(2)
        self._roundtrip([1, 1, 1, 1], rng)


class TestColumnarFromNumpy:
    def build(self, start, finish, is_write, value_id, values, **kw):
        n = len(start)
        return vector.columnar_from_numpy(
            key=kw.pop("key", "r"),
            start=np.asarray(start, dtype=np.float64),
            finish=np.asarray(finish, dtype=np.float64),
            is_write=np.asarray(is_write, dtype=np.uint8),
            value_id=np.asarray(value_id, dtype=np.int32),
            values=values,
            op_ids=np.arange(n, dtype=np.int64) + 10**6,
            **kw,
        )

    def test_duplicate_write_value_rejected(self):
        with pytest.raises(DuplicateValueError):
            self.build(
                [0.0, 2.0], [1.0, 3.0], [1, 1], [0, 0], ["a"]
            )

    def test_matches_from_rows(self):
        history = normalize(
            practical_history(random.Random(7), 50, key="r", num_clients=2)
        )
        ref = columnar.columnar_of(history)
        col = self.build(
            list(ref.start), list(ref.finish),
            list(ref.is_write), list(ref.value_id),
            list(ref.values),
        )
        assert list(col.dictating) == list(ref.dictating)
        assert list(col.write_ord) == list(ref.write_ord)
        for k in (1, 2):
            got = vector.verify_columnar(col, k, preprocess=False)
            want = verify(history, k, preprocess=False, kernel="columnar")
            assert (bool(got), got.reason, got.stats) == (
                bool(want), want.reason, want.stats
            )


def chain_chunks(col):
    """Chunks the closed-form chain-order check handles: nf >= 2, nb == 0."""
    ct = vector.cluster_table(col)
    ch = vector.chunk_table(col)
    starts = np.concatenate((ch.chain_starts, [ch.fidx.size]))
    nf = np.diff(starts)
    nb = np.bincount(
        ch.b_chunk[ch.b_chunk >= 0], minlength=ch.num_chunks
    ) if ch.bidx.size else np.zeros(ch.num_chunks, dtype=np.int64)
    del ct
    return np.flatnonzero((nf >= 2) & (nb == 0))


class TestChainOrderCheck:
    """The closed-form viability screen for pure-forward chains."""

    def stale_histories(self):
        cases = []
        for seed in range(30):
            history = practical_history(
                random.Random(seed), 90, staleness_probability=0.45,
                max_staleness=1, key=f"s{seed}",
            )
            if not find_anomalies(history):
                cases.append(normalize(history))
        return cases

    def test_chain_path_is_actually_exercised(self):
        hit = 0
        for history in self.stale_histories():
            hit += chain_chunks(columnar.columnar_of(history)).size
        assert hit > 0, "no pure-forward multi-write chains in the battery"

    def test_chain_verdicts_match_columnar_kernels(self):
        exercised = 0
        for history in self.stale_histories():
            col = columnar.columnar_of(history)
            exercised += chain_chunks(col).size
            got = vector.fzf_result_np(col)
            want = verify(history, 2, algorithm="fzf", preprocess=False,
                          kernel="columnar")
            assert bool(got) == bool(want), history.key
            assert got.reason == want.reason, history.key
            assert got.stats == want.stats, history.key
            if got and got.witness is not None:
                assert history.is_k_atomic_total_order(got.witness, 2), history.key
        assert exercised > 0

    def test_deep_chain_with_interleaved_reads(self):
        # One register alternating write/read with bounded staleness 1 makes
        # long pure-forward chains whose reads straddle segment boundaries.
        history = normalize(
            practical_history(
                random.Random(123), 400, staleness_probability=0.5,
                max_staleness=1, key="deep",
            )
        )
        col = columnar.columnar_of(history)
        assert chain_chunks(col).size > 0
        got = vector.fzf_result_np(col)
        want = verify(history, 2, algorithm="fzf", preprocess=False,
                      kernel="columnar")
        assert (bool(got), got.reason, got.stats) == (
            bool(want), want.reason, want.stats
        )
        if got and got.witness is not None:
            assert history.is_k_atomic_total_order(got.witness, 2)
