"""Doctest smoke: docstring examples on the public surface must not rot.

Runs :func:`doctest.testmod` over the curated modules whose docstrings carry
examples (the same set CI's ``--doctest-modules`` step exercises) and
requires every module to actually contain at least one example — so removing
the examples, or breaking them, both fail here.
"""

import doctest
import importlib

import pytest

#: Modules whose docstring examples are part of the documented contract.
DOCTESTED_MODULES = [
    "repro",
    "repro.core.api",
    "repro.core.operation",
    "repro.engine.engine",
    "repro.engine.streaming",
    "repro.io.registry",
    "repro.experiments.spec",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctest examples"
    assert results.failed == 0, f"{module_name}: {results.failed} doctest(s) failed"
