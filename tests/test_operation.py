"""Unit tests for the operation model (Section II-A)."""

import pytest

from repro.core.errors import MalformedOperationError
from repro.core.operation import Operation, OpType, concurrent, precedes, read, write


class TestConstruction:
    def test_read_factory_sets_type(self):
        r = read("a", 1.0, 2.0)
        assert r.op_type is OpType.READ
        assert r.is_read and not r.is_write

    def test_write_factory_sets_type(self):
        w = write("a", 1.0, 2.0)
        assert w.op_type is OpType.WRITE
        assert w.is_write and not w.is_read

    def test_value_and_times_are_stored(self):
        w = write("v", 1.5, 2.5, key="k", client="c7")
        assert w.value == "v"
        assert w.start == 1.5
        assert w.finish == 2.5
        assert w.key == "k"
        assert w.client == "c7"

    def test_interval_property(self):
        assert read("a", 1.0, 3.0).interval == (1.0, 3.0)

    def test_finish_must_exceed_start(self):
        with pytest.raises(MalformedOperationError):
            write("a", 2.0, 1.0)

    def test_zero_length_operation_rejected(self):
        with pytest.raises(MalformedOperationError):
            read("a", 2.0, 2.0)

    def test_default_weight_is_one(self):
        assert write("a", 0.0, 1.0).weight == 1

    def test_write_weight_must_be_positive(self):
        with pytest.raises(MalformedOperationError):
            write("a", 0.0, 1.0, weight=0)

    def test_explicit_weight_accepted(self):
        assert write("a", 0.0, 1.0, weight=7).weight == 7

    def test_op_ids_are_unique(self):
        ids = {write(i, 0.0, 1.0).op_id for i in range(100)}
        assert len(ids) == 100

    def test_explicit_op_id_respected(self):
        assert read("a", 0.0, 1.0, op_id=12345).op_id == 12345


class TestOrdering:
    def test_precedes_when_strictly_before(self):
        a = write("a", 0.0, 1.0)
        b = write("b", 2.0, 3.0)
        assert a.precedes(b)
        assert precedes(a, b)
        assert not b.precedes(a)

    def test_no_precedence_when_overlapping(self):
        a = write("a", 0.0, 2.0)
        b = write("b", 1.0, 3.0)
        assert not a.precedes(b)
        assert not b.precedes(a)

    def test_concurrent_when_overlapping(self):
        a = write("a", 0.0, 2.0)
        b = read("a", 1.0, 3.0)
        assert a.concurrent_with(b)
        assert concurrent(b, a)

    def test_not_concurrent_when_disjoint(self):
        a = write("a", 0.0, 1.0)
        b = read("a", 5.0, 6.0)
        assert not a.concurrent_with(b)

    def test_touching_endpoints_do_not_precede(self):
        # precedes is strict: finish < start.
        a = write("a", 0.0, 1.0)
        b = read("a", 1.0, 2.0)
        assert not a.precedes(b)
        assert a.concurrent_with(b)


class TestIdentityAndCopies:
    def test_equality_is_identity_by_op_id(self):
        a = write("a", 0.0, 1.0, op_id=1)
        b = write("a", 0.0, 1.0, op_id=2)
        assert a != b
        assert a == write("x", 5.0, 6.0, op_id=1)

    def test_hashable_and_usable_in_sets(self):
        a = write("a", 0.0, 1.0)
        b = read("a", 2.0, 3.0)
        assert len({a, b, a}) == 2

    def test_with_times_preserves_identity(self):
        a = write("a", 0.0, 10.0)
        shortened = a.with_times(finish=5.0)
        assert shortened.finish == 5.0
        assert shortened.start == a.start
        assert shortened.op_id == a.op_id
        assert shortened == a  # same identity

    def test_with_times_can_change_start(self):
        a = read("a", 3.0, 10.0)
        moved = a.with_times(start=1.0)
        assert moved.start == 1.0 and moved.finish == 10.0

    def test_repr_mentions_kind_and_value(self):
        assert "w(" in repr(write("val", 0.0, 1.0))
        assert "r(" in repr(read("val", 0.0, 1.0))
