"""Unit tests for the core stream-windowing machinery."""

import pytest

from repro.core.builder import HistoryBuilder, TraceBuilder
from repro.core.errors import VerificationError
from repro.core.operation import read, write
from repro.core.windows import Window, WindowAssembler, WindowPolicy, iter_windows
from repro.workloads.synthetic import serial_history


def serial_ops(n, key=None):
    """n serial writes with unit duration, finish-ordered."""
    return [write(i, 2.0 * i, 2.0 * i + 1.0, key=key) for i in range(n)]


class TestWindowPolicy:
    def test_count_and_time_factories(self):
        assert WindowPolicy.count(8).mode == "count"
        assert WindowPolicy.time(5.0).mode == "time"
        assert not WindowPolicy.count(8).is_sliding
        assert WindowPolicy.count(8, overlap=2).is_sliding

    def test_describe(self):
        assert WindowPolicy.count(64).describe() == "count(64)"
        assert WindowPolicy.count(64, overlap=8).describe() == "count(64, overlap=8)"
        assert WindowPolicy.time(2.5).describe() == "time(2.5)"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mode="weird", size=4),
            dict(mode="count", size=0),
            dict(mode="count", size=2.5),
            dict(mode="count", size=4, overlap=-1),
            dict(mode="count", size=4, overlap=4),
            dict(mode="count", size=4, overlap=1.5),
            dict(mode="time", size=-1.0),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(VerificationError):
            WindowPolicy(**kwargs)


class TestCountWindows:
    def test_tumbling_partition(self):
        ops = serial_ops(10)
        windows = list(iter_windows(ops, WindowPolicy.count(4)))
        assert [len(w) for w in windows] == [4, 4, 2]
        assert [w.index for w in windows] == [0, 1, 2]
        assert windows[-1].is_last
        assert [op for w in windows for op in w.fresh_ops] == ops

    def test_single_op_windows(self):
        ops = serial_ops(3)
        windows = list(iter_windows(ops, WindowPolicy.count(1)))
        assert [len(w) for w in windows] == [1, 1, 1]

    def test_window_larger_than_stream(self):
        ops = serial_ops(3)
        windows = list(iter_windows(ops, WindowPolicy.count(100)))
        assert len(windows) == 1
        assert windows[0].is_last and len(windows[0]) == 3

    def test_sliding_overlap_replays_tail(self):
        ops = serial_ops(9)
        windows = list(iter_windows(ops, WindowPolicy.count(4, overlap=2)))
        # Every window except the first starts with the previous window's tail.
        for prev, cur in zip(windows, windows[1:]):
            assert cur.carried == min(2, len(cur.ops))
            assert cur.ops[: cur.carried] == prev.ops[-cur.carried :]
        # Fresh operations still partition the stream exactly.
        assert [op for w in windows for op in w.fresh_ops] == ops

    def test_empty_stream_yields_no_windows(self):
        assert list(iter_windows([], WindowPolicy.count(4))) == []


class TestTimeWindows:
    def test_grid_anchored_at_first_finish(self):
        ops = serial_ops(6)  # finishes at 1, 3, 5, 7, 9, 11
        windows = list(iter_windows(ops, WindowPolicy.time(4.0)))
        # Grid: [1, 5), [5, 9), [9, 13) by finish time.
        assert [len(w) for w in windows] == [2, 2, 2]
        assert windows[0].t_high < 5.0 <= windows[1].t_low

    def test_gap_skips_empty_cells(self):
        ops = [write(0, 0.0, 1.0), write(1, 100.0, 101.0)]
        windows = list(iter_windows(ops, WindowPolicy.time(2.0)))
        assert [len(w) for w in windows] == [1, 1]
        assert windows[1].index == 1  # indices stay dense even across the gap

    def test_time_overlap_carries_recent_tail(self):
        ops = serial_ops(6)  # finishes at odd timestamps
        windows = list(iter_windows(ops, WindowPolicy.time(4.0, overlap=2.0)))
        assert sum(w.num_fresh for w in windows) == len(ops)
        assert any(w.carried for w in windows[1:])

    def test_straggler_joins_current_window(self):
        ops = [write(0, 0.0, 1.0), write(1, 4.0, 5.0), write(2, 1.0, 1.5)]
        windows = list(iter_windows(ops, WindowPolicy.time(3.0)))
        # The straggler (finish 1.5 after finish 5.0) lands in the open window.
        assert sum(w.num_fresh for w in windows) == 3


class TestAssemblerLifecycle:
    def test_flush_is_terminal(self):
        assembler = WindowAssembler(WindowPolicy.count(4))
        assembler.feed(write(0, 0.0, 1.0))
        assert assembler.flush() is not None
        with pytest.raises(VerificationError):
            assembler.feed(write(1, 2.0, 3.0))

    def test_flush_empty_returns_none(self):
        assert WindowAssembler(WindowPolicy.count(4)).flush() is None


class TestBuilderWindows:
    def test_history_builder_windows_in_completion_order(self):
        history = serial_history(6, 0)
        builder = HistoryBuilder().extend(reversed(history.operations))
        windows = builder.windows(WindowPolicy.count(4))
        flattened = [op for w in windows for op in w.fresh_ops]
        assert flattened == sorted(history.operations, key=lambda o: o.finish)

    def test_trace_builder_windows_interleave_registers(self):
        builder = TraceBuilder()
        builder.extend(serial_ops(4, key="a"))
        builder.extend(serial_ops(4, key="b"))
        windows = builder.windows(WindowPolicy.count(3))
        flattened = [op for w in windows for op in w.fresh_ops]
        assert len(flattened) == 8
        finishes = [op.finish for op in flattened]
        assert finishes == sorted(finishes)
        # Registers interleave: the first window spans both keys.
        assert {op.key for op in windows[0].fresh_ops} == {"a", "b"}
