"""Tests for the sharded verification engine (repro.engine).

The heart of this module is the parity property: for every multi-register
fixture and every k in {1, 2, 3}, the engine — under every executor and every
partitioner — must return exactly the verdicts of the seed-style serial loop
(one ``verify`` call per register, in trace order).  The locality theorem
says any register partitioning is correct; these tests say the code agrees.
"""

import pickle
import random

import pytest

from repro.core.api import verify
from repro.core.builder import TraceBuilder
from repro.core.errors import VerificationError
from repro.core.history import MultiHistory
from repro.core.operation import read, write
from repro.engine import (
    Engine,
    HashPartitioner,
    RoundRobinPartitioner,
    ShardTask,
    SizeBalancedPartitioner,
    get_executor,
    get_partitioner,
    run_shard,
)
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history, synthetic_trace

EXECUTORS = ["serial", "threads", "processes"]
KS = [1, 2, 3]


# ----------------------------------------------------------------------
# Multi-register fixtures
# ----------------------------------------------------------------------
def mixed_staleness_trace():
    """Registers whose minimal staleness bounds are exactly 1, 2 and 3."""
    ops = []
    ops.extend(serial_history(4, 1, key="atomic").operations)
    ops.extend(exactly_k_atomic_history(2, 4, key="lag-1").operations)
    ops.extend(exactly_k_atomic_history(3, 5, key="lag-2").operations)
    return MultiHistory(ops)


def anomalous_trace():
    """A clean register next to two anomalous ones (never k-atomic)."""
    ops = [
        write("a", 0.0, 1.0, key="clean"),
        read("a", 2.0, 3.0, key="clean"),
        # Read of a value nobody wrote.
        write("x", 0.0, 1.0, key="ghost-read"),
        read("phantom", 2.0, 3.0, key="ghost-read"),
        # Read that finishes before its dictating write starts.
        write("y", 5.0, 6.0, key="time-travel"),
        read("y", 0.0, 1.0, key="time-travel"),
    ]
    return MultiHistory(ops)


def synthetic_many_register_trace():
    return synthetic_trace(
        random.Random(42), 12, 16, staleness_probability=0.2, max_staleness=2, size_skew=1.5
    )


def single_register_trace():
    return MultiHistory(exactly_k_atomic_history(2, 5, key="only").operations)


TRACES = {
    "mixed": mixed_staleness_trace,
    "anomalous": anomalous_trace,
    "synthetic": synthetic_many_register_trace,
    "single": single_register_trace,
}


def seed_verdicts(trace, k):
    """The reference semantics: verify each register in trace order."""
    return {key: bool(verify(trace[key], k)) for key in trace.keys()}


# ----------------------------------------------------------------------
# Parity across executors, partitioners and k
# ----------------------------------------------------------------------
class TestExecutorParity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    def test_verdicts_match_seed_serial_loop(self, trace_name, k, executor):
        trace = TRACES[trace_name]()
        report = Engine(executor=executor, jobs=2).verify_trace(trace, k)
        assert report.verdicts() == seed_verdicts(trace, k)
        assert not report.skipped_keys
        assert set(report.results) == set(trace.keys())

    @pytest.mark.parametrize("partitioner", ["hash", "round-robin", "size-balanced"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_verdicts_independent_of_partitioner(self, partitioner, k):
        trace = synthetic_many_register_trace()
        report = Engine(
            executor="serial", jobs=3, partitioner=partitioner, shards_per_job=2
        ).verify_trace(trace, k)
        assert report.verdicts() == seed_verdicts(trace, k)
        assert report.partitioner == partitioner

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_result_objects_match_serial_fields(self, executor):
        trace = mixed_staleness_trace()
        report = Engine(executor=executor, jobs=2).verify_trace(trace, 2)
        for key in trace.keys():
            expected = verify(trace[key], 2)
            got = report.results[key]
            assert (got.is_k_atomic, got.k, got.algorithm, got.reason) == (
                expected.is_k_atomic,
                expected.k,
                expected.algorithm,
                expected.reason,
            )

    def test_results_preserve_trace_key_order(self):
        trace = synthetic_many_register_trace()
        report = Engine(executor="threads", jobs=3).verify_trace(trace, 2)
        assert list(report.results) == list(trace.keys())


class TestIngestion:
    def test_accepts_trace_builder(self):
        trace = mixed_staleness_trace()
        builder = TraceBuilder()
        for key in trace.keys():
            builder.extend(trace[key].operations)
        report = Engine().verify_trace(builder, 2)
        assert report.verdicts() == seed_verdicts(trace, 2)

    def test_accepts_raw_operation_iterable(self):
        trace = mixed_staleness_trace()
        ops = [op for key in trace.keys() for op in trace[key].operations]
        report = Engine().verify_trace(iter(ops), 2)
        assert report.verdicts() == seed_verdicts(trace, 2)

    def test_empty_trace(self):
        report = Engine().verify_trace(MultiHistory([]), 2)
        assert report.results == {}
        assert report.is_k_atomic  # vacuous truth: every register is k-atomic
        assert report.num_shards == 0


class TestFailFast:
    def _failing_trace(self):
        builder = TraceBuilder()
        for i in range(8):
            key = f"r{i}"
            builder.append(write("a", 0.0, 1.0, key=key))
            builder.append(write("b", 2.0, 3.0, key=key))
            # Register r3 is stale by one write: fails k=1.
            builder.append(read("a" if i == 3 else "b", 4.0, 5.0, key=key))
        return builder

    def test_fail_fast_skips_remaining_shards(self):
        report = Engine(executor="serial", fail_fast=True, shards_per_job=8).verify_trace(
            self._failing_trace(), 1
        )
        assert not report.is_k_atomic
        key, result = report.first_failure
        assert key == "r3" and not result
        assert report.skipped_keys  # at least one later shard never ran
        assert set(report.skipped_keys).isdisjoint(report.results)

    def test_no_fail_fast_verifies_everything(self):
        report = Engine(executor="serial", fail_fast=False).verify_trace(
            self._failing_trace(), 1
        )
        assert not report.is_k_atomic
        assert not report.skipped_keys
        assert list(report.failures) == ["r3"]


class TestReport:
    def test_shard_stats_cover_all_ops(self):
        trace = synthetic_many_register_trace()
        report = Engine(executor="serial", jobs=2).verify_trace(trace, 2)
        assert report.total_ops == trace.total_operations()
        assert sum(s.num_registers for s in report.shard_stats) == len(trace)
        assert report.num_shards == len(report.shard_stats)

    def test_render_mentions_failures_and_shards(self):
        trace = mixed_staleness_trace()
        report = Engine().verify_trace(trace, 1)
        text = report.render()
        assert "per-shard statistics" in text
        assert "failing registers" in text
        assert "lag-1" in text and "lag-2" in text

    def test_summary_states_verdict(self):
        trace = single_register_trace()
        assert "YES" in Engine().verify_trace(trace, 2).summary()
        assert "NO" in Engine().verify_trace(trace, 1).summary()


class TestPicklability:
    def test_algorithm_spec_pickles_to_registry_instance(self):
        from repro.algorithms.registry import REGISTRY, get_algorithm

        for name in REGISTRY:
            spec = get_algorithm(name)
            assert pickle.loads(pickle.dumps(spec)) is spec

    def test_shard_task_roundtrip_runs_in_this_process(self):
        trace = mixed_staleness_trace()
        task = ShardTask(
            shard_id=0,
            items=tuple((key, trace[key]) for key in trace.keys()),
            k=2,
            algorithm="auto",
            preprocess=True,
            max_exact_ops=40,
        )
        clone = pickle.loads(pickle.dumps(task))
        outcome = run_shard(clone)
        assert {key: bool(r) for key, r in outcome.results} == seed_verdicts(trace, 2)
        assert outcome.num_ops == trace.total_operations()

    def test_unregistered_spec_keeps_default_pickling(self):
        from repro.algorithms import exact
        from repro.algorithms.registry import AlgorithmSpec

        spec = AlgorithmSpec(
            name="custom-exact",
            supported_k=None,
            fn=exact.verify_k_atomic_exact,
            description="ad-hoc spec outside the registry",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone is not spec


class TestPartitioners:
    SIZED = [("a", 10), ("b", 1), ("c", 7), ("d", 7), ("e", 2), ("f", 30)]

    @pytest.mark.parametrize("name", ["hash", "round-robin", "size-balanced"])
    def test_every_key_assigned_exactly_once(self, name):
        shards = get_partitioner(name).partition(self.SIZED, 3)
        assert len(shards) == 3
        flat = [key for shard in shards for key in shard]
        assert sorted(flat) == sorted(key for key, _ in self.SIZED)

    def test_hash_is_stable_per_key(self):
        p = HashPartitioner()
        first = p.partition(self.SIZED, 4)
        # Same key lands in the same shard even when the rest of the trace changes.
        alone = p.partition([("f", 30)], 4)
        (f_shard,) = [i for i, shard in enumerate(first) if "f" in shard]
        assert "f" in alone[f_shard]

    def test_round_robin_preserves_appearance_order(self):
        shards = RoundRobinPartitioner().partition(self.SIZED, 2)
        assert shards == [["a", "c", "e"], ["b", "d", "f"]]

    def test_size_balanced_minimises_spread(self):
        shards = SizeBalancedPartitioner().partition(self.SIZED, 2)
        sizes = dict(self.SIZED)
        loads = sorted(sum(sizes[k] for k in shard) for shard in shards)
        assert loads == [27, 30]  # LPT optimum for these sizes

    def test_unknown_names_rejected(self):
        with pytest.raises(VerificationError):
            get_partitioner("nope")
        with pytest.raises(VerificationError):
            get_executor("nope")


class TestEngineConfig:
    def test_bad_jobs_rejected(self):
        with pytest.raises(VerificationError):
            Engine(jobs=0)

    def test_serial_defaults_to_one_job(self):
        assert Engine().jobs == 1

    def test_plan_caps_shards_at_register_count(self):
        trace = single_register_trace()
        engine = Engine(executor="threads", jobs=8)
        registers = engine._as_register_histories(trace)
        assert len(engine.plan(registers, 2)) == 1
