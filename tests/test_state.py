"""Contract tests for the pluggable state-store backends.

Every backend must present the same ``(namespace, key) -> bytes`` behaviour
— same round trips, same typed errors, same hostile-key safety — so the
suite is parametrized over :func:`repro.state.available_backends` and any
backend-specific assertions (WAL pragmas, segment rotation, eviction,
compaction) live in their own tests below the shared block.
"""

from __future__ import annotations

import os
import sqlite3

import pytest

from repro.core.errors import CorruptStateError, StateError
from repro.state import (
    DEFAULT_STATE_BACKEND,
    JsonFileStateStore,
    SegmentStateStore,
    SqliteStateStore,
    TimelineRetention,
    available_backends,
    open_state_store,
    write_file_atomic,
)

BACKENDS = available_backends()

HOSTILE_KEYS = [
    "../escape me/..",
    "a/b\\c",
    "unicode-é中文",
    "",
    ".",
    # Long but under the ~255-byte filename cap the json layout inherits
    # from the pre-1.8 checkpoint store (percent-quoting triples some bytes).
    "a" * 120,
]


# ----------------------------------------------------------------------
# Shared contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_round_trip_and_overwrite(tmp_path, backend):
    with open_state_store(backend, tmp_path) as store:
        assert store.backend == backend
        store.put("sessions", "s1", b"one")
        assert store.get("sessions", "s1") == b"one"
        store.put("sessions", "s1", b"two")
        assert store.get("sessions", "s1") == b"two"
        assert store.contains("sessions", "s1")
        assert not store.contains("sessions", "absent")
        assert store.keys("sessions") == ["s1"]
        assert store.keys("empty-namespace") == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_namespaces_are_disjoint(tmp_path, backend):
    with open_state_store(backend, tmp_path) as store:
        store.put("sessions", "k", b"session blob")
        store.put("pool-snap", "k", b"snapshot blob")
        assert store.get("sessions", "k") == b"session blob"
        assert store.get("pool-snap", "k") == b"snapshot blob"
        assert store.delete("pool-snap", "k")
        assert store.get("sessions", "k") == b"session blob"
        assert not store.contains("pool-snap", "k")


@pytest.mark.parametrize("backend", BACKENDS)
def test_missing_entry_raises_typed_error(tmp_path, backend):
    with open_state_store(backend, tmp_path) as store:
        with pytest.raises(StateError):
            store.get("sessions", "never-written")
        assert store.delete("sessions", "never-written") is False


@pytest.mark.parametrize("backend", BACKENDS)
def test_survives_close_and_reopen(tmp_path, backend):
    with open_state_store(backend, tmp_path) as store:
        store.put("sessions", "a", b"\x00\x01binary\xff")
        store.put("timeline", "w:0", b"x" * 4096)
        store.delete("sessions", "a")
        store.put("sessions", "b", b"kept")
    with open_state_store(backend, tmp_path) as store:
        assert store.keys("sessions") == ["b"]
        assert store.get("sessions", "b") == b"kept"
        assert store.get("timeline", "w:0") == b"x" * 4096
        assert not store.contains("sessions", "a")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("key", HOSTILE_KEYS)
def test_hostile_keys_stay_inside_the_store(tmp_path, backend, key):
    store_dir = tmp_path / "store"
    with open_state_store(backend, store_dir) as store:
        store.put("sessions", key, b"payload")
        assert store.get("sessions", key) == b"payload"
        assert store.keys("sessions") == [key]
    # Nothing may be created outside the store directory.
    outside = [p for p in tmp_path.iterdir() if p.name != "store"]
    assert outside == []
    with open_state_store(backend, store_dir) as store:
        assert store.get("sessions", key) == b"payload"


@pytest.mark.parametrize("backend", BACKENDS)
def test_same_bytes_across_backends(tmp_path, backend):
    """All backends return exactly the bytes stored — interchangeability."""
    blob = os.urandom(2048)
    with open_state_store(backend, tmp_path / backend) as store:
        store.put("sessions", "sid", blob)
    with open_state_store(backend, tmp_path / backend) as store:
        assert store.get("sessions", "sid") == blob


@pytest.mark.parametrize("backend", BACKENDS)
def test_stats_counters(tmp_path, backend):
    with open_state_store(backend, tmp_path) as store:
        store.put("sessions", "a", b"12345")
        store.get("sessions", "a")
        stats = store.stats()
        assert stats["puts"] == 1
        assert stats["gets"] == 1
        assert stats["bytes_written"] >= 5
        assert stats["bytes_read"] == 5


def test_unknown_backend_raises():
    with pytest.raises(StateError, match="unknown state-store backend"):
        open_state_store("bogus", ".")


def test_default_backend_registered():
    assert DEFAULT_STATE_BACKEND in BACKENDS
    assert set(BACKENDS) >= {"json", "sqlite", "segments"}


# ----------------------------------------------------------------------
# json backend specifics (historical layout + orphan sweep)
# ----------------------------------------------------------------------
def test_json_sessions_live_at_directory_root(tmp_path):
    store = JsonFileStateStore(tmp_path)
    path = store.path_for("sessions", "sid one")
    assert path.parent == store.directory
    assert path.suffix == ".ckpt"
    other = store.path_for("timeline", "sid one")
    assert other.parent.parent == store.directory


def test_json_orphan_tmp_sweep(tmp_path):
    """A crash mid-write leaves a ``*.tmp`` orphan: swept at open, never a session."""
    (tmp_path / "crashed%2Fsid.ckpt.tmp").write_bytes(b"torn half-write")
    sub = tmp_path / "timeline"
    sub.mkdir()
    (sub / "w0.blob.tmp").write_bytes(b"torn")
    store = JsonFileStateStore(tmp_path)
    assert store.swept_tmp == 2
    assert not (tmp_path / "crashed%2Fsid.ckpt.tmp").exists()
    assert not (sub / "w0.blob.tmp").exists()
    assert store.keys("sessions") == []
    assert store.keys("timeline") == []


def test_write_file_atomic_cleans_up_tmp_on_failure(tmp_path):
    target = tmp_path / "missing-dir" / "file.bin"
    with pytest.raises(OSError):
        write_file_atomic(target, b"data")
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# sqlite backend specifics
# ----------------------------------------------------------------------
def test_sqlite_uses_wal_and_full_sync(tmp_path):
    store = SqliteStateStore(tmp_path)
    mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
    sync = store._conn.execute("PRAGMA synchronous").fetchone()[0]
    assert mode.lower() == "wal"
    assert int(sync) == 2  # FULL
    store.close()
    relaxed = SqliteStateStore(tmp_path, durable=False)
    assert int(relaxed._conn.execute("PRAGMA synchronous").fetchone()[0]) == 1
    relaxed.close()


def test_sqlite_rejects_foreign_file(tmp_path):
    (tmp_path / "state.db").write_bytes(b"this is not a database at all")
    with pytest.raises(CorruptStateError):
        store = SqliteStateStore(tmp_path)
        try:
            store.put("sessions", "k", b"v")
        finally:
            store.close()


def test_sqlite_single_file_layout(tmp_path):
    with SqliteStateStore(tmp_path) as store:
        store.put("sessions", "a", b"1")
        store.put("timeline", "b", b"2")
        store.flush()
    files = sorted(p.name for p in tmp_path.iterdir() if not p.name.startswith("state.db-"))
    assert files == ["state.db"]
    with sqlite3.connect(tmp_path / "state.db") as conn:
        rows = conn.execute("SELECT namespace, key FROM kv ORDER BY 1, 2").fetchall()
    assert rows == [("sessions", "a"), ("timeline", "b")]


# ----------------------------------------------------------------------
# segments backend specifics
# ----------------------------------------------------------------------
def test_segments_rotation_seals_footers(tmp_path):
    store = SegmentStateStore(tmp_path, max_segment_bytes=4096)
    for i in range(64):
        store.put("ns", f"k{i}", bytes([i]) * 256)
    segments = sorted(tmp_path.glob("seg-*.seg"))
    assert len(segments) > 1
    # Every non-active segment ends with the end magic (sealed footer).
    from repro.state.segments import END_MAGIC

    for path in segments[:-1]:
        assert path.read_bytes().endswith(END_MAGIC)
    store.close()
    assert segments[-1].read_bytes().endswith(END_MAGIC)  # sealed on close
    with SegmentStateStore(tmp_path) as reopened:
        for i in range(64):
            assert reopened.get("ns", f"k{i}") == bytes([i]) * 256


def test_segments_eviction_bounds_open_mappings(tmp_path):
    store = SegmentStateStore(tmp_path, max_segment_bytes=4096, cache_segments=2)
    for i in range(128):
        store.put("ns", f"k{i}", bytes([i]) * 200)
    for i in range(128):
        assert store.get("ns", f"k{i}") == bytes([i]) * 200
    assert len(store._maps) <= 2
    assert store.evictions > 0
    # A second sweep transparently re-maps previously evicted segments.
    remaps_before = store.remaps
    assert store.get("ns", "k0") == b"\x00" * 200
    assert store.remaps >= remaps_before
    store.close()


def test_segments_delete_and_tombstone_survive_reopen(tmp_path):
    with SegmentStateStore(tmp_path, max_segment_bytes=2048) as store:
        for i in range(32):
            store.put("ns", f"k{i}", b"v" * 128)
    # Delete keys whose records live in already-sealed segments.
    with SegmentStateStore(tmp_path, max_segment_bytes=2048) as store:
        assert store.delete("ns", "k0")
        assert store.delete("ns", "k1")
    with SegmentStateStore(tmp_path) as store:
        assert not store.contains("ns", "k0")
        assert not store.contains("ns", "k1")
        assert store.contains("ns", "k2")


def test_segments_compaction_reclaims_space(tmp_path):
    store = SegmentStateStore(tmp_path, max_segment_bytes=2048)
    for round_ in range(8):
        for i in range(16):
            store.put("ns", f"k{i}", bytes([round_]) * 128)
    before = sum(p.stat().st_size for p in tmp_path.glob("seg-*.seg"))
    reclaimed = store.compact()
    after = sum(p.stat().st_size for p in tmp_path.glob("seg-*.seg"))
    assert reclaimed > 0
    assert after < before
    for i in range(16):
        assert store.get("ns", f"k{i}") == bytes([7]) * 128
    store.close()
    with SegmentStateStore(tmp_path) as reopened:
        assert len(reopened.keys("ns")) == 16


def test_segments_bad_magic_raises_typed_error(tmp_path):
    (tmp_path / "seg-00000000.seg").write_bytes(b"NOTASEGM" + b"x" * 64)
    with pytest.raises(CorruptStateError):
        SegmentStateStore(tmp_path)


# ----------------------------------------------------------------------
# Timeline retention
# ----------------------------------------------------------------------
def test_retention_unbounded_without_store():
    timeline = TimelineRetention()
    for i in range(10):
        timeline.append(i)
    assert not timeline.bounded
    assert list(timeline) == list(range(10))
    assert timeline.spills == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_retention_spills_and_reloads(tmp_path, backend):
    with open_state_store(backend, tmp_path) as store:
        timeline = TimelineRetention(store, keep=3, prefix="t")
        for i in range(12):
            timeline.append({"window": i})
        assert timeline.bounded
        assert len(timeline) == 12
        assert timeline.spills == 9
        assert timeline[0] == {"window": 0}  # cold: reloaded from the store
        assert timeline[-1] == {"window": 11}  # hot
        assert timeline[3:5] == [{"window": 3}, {"window": 4}]
        assert timeline.materialize() == [{"window": i} for i in range(12)]
        assert timeline.reloads > 0
        timeline.clear()
        assert len(timeline) == 0
        assert store.keys("timeline") == []


def test_retention_two_streams_share_one_store(tmp_path):
    with open_state_store("segments", tmp_path) as store:
        a = TimelineRetention(store, keep=2, prefix="a")
        b = TimelineRetention(store, keep=2, prefix="b")
        for i in range(6):
            a.append(("a", i))
            b.append(("b", i))
        assert a.materialize() == [("a", i) for i in range(6)]
        assert b.materialize() == [("b", i) for i in range(6)]
