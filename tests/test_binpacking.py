"""Unit tests for the bin-packing model, exact solver, and heuristics."""

import random

import pytest

from repro.binpacking.model import BinPackingAssignment, BinPackingInstance, random_instance
from repro.binpacking.solver import (
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    is_feasible,
    minimum_bins,
    solve_exact,
)
from repro.core.errors import ReductionError


class TestModel:
    def test_basic_properties(self):
        inst = BinPackingInstance(sizes=(3, 2, 2), capacity=4, num_bins=2)
        assert inst.num_items == 3
        assert inst.total_size == 7
        assert not inst.trivially_infeasible()

    def test_item_larger_than_capacity_is_trivially_infeasible(self):
        inst = BinPackingInstance(sizes=(5,), capacity=4, num_bins=3)
        assert inst.trivially_infeasible()

    def test_total_size_exceeding_capacity_is_trivially_infeasible(self):
        inst = BinPackingInstance(sizes=(4, 4, 4), capacity=4, num_bins=2)
        assert inst.trivially_infeasible()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReductionError):
            BinPackingInstance(sizes=(1,), capacity=0, num_bins=1)
        with pytest.raises(ReductionError):
            BinPackingInstance(sizes=(1,), capacity=2, num_bins=0)
        with pytest.raises(ReductionError):
            BinPackingInstance(sizes=(0,), capacity=2, num_bins=1)

    def test_lower_bound_bins(self):
        inst = BinPackingInstance(sizes=(3, 3, 3), capacity=4, num_bins=5)
        assert inst.lower_bound_bins() == 3  # ceil(9/4)

    def test_assignment_validation(self):
        inst = BinPackingInstance(sizes=(3, 2, 2), capacity=4, num_bins=2)
        good = BinPackingAssignment(inst, ((0,), (1, 2)))
        assert good.is_valid()
        over_capacity = BinPackingAssignment(inst, ((0, 1), (2,)))
        assert not over_capacity.is_valid()
        missing_item = BinPackingAssignment(inst, ((0,), (1,)))
        assert not missing_item.is_valid()

    def test_assignment_loads(self):
        inst = BinPackingInstance(sizes=(3, 2, 2), capacity=4, num_bins=2)
        assert BinPackingAssignment(inst, ((0,), (1, 2))).loads() == [3, 4]

    def test_random_instance_shape(self):
        inst = random_instance(random.Random(1), num_items=6, capacity=5, num_bins=3)
        assert inst.num_items == 6
        assert all(1 <= s <= 5 for s in inst.sizes)


class TestExactSolver:
    def test_feasible_instance_solved(self):
        inst = BinPackingInstance(sizes=(3, 2, 2, 1), capacity=4, num_bins=2)
        packing = solve_exact(inst)
        assert packing is not None
        assert packing.is_valid()

    def test_infeasible_instance_rejected(self):
        inst = BinPackingInstance(sizes=(3, 3, 3), capacity=4, num_bins=2)
        assert solve_exact(inst) is None
        assert not is_feasible(inst)

    def test_empty_instance_feasible(self):
        inst = BinPackingInstance(sizes=(), capacity=4, num_bins=2)
        packing = solve_exact(inst)
        assert packing is not None and packing.is_valid()

    def test_exact_matches_partition_structure(self):
        # Classic PARTITION-style instance: {4,3,3,2,2,2} into 2 bins of 8.
        inst = BinPackingInstance(sizes=(4, 3, 3, 2, 2, 2), capacity=8, num_bins=2)
        packing = solve_exact(inst)
        assert packing is not None
        assert sorted(packing.loads()) == [8, 8]

    def test_tight_infeasible_partition(self):
        # Same items but capacity 7: total 16 > 14, infeasible.
        inst = BinPackingInstance(sizes=(4, 3, 3, 2, 2, 2), capacity=7, num_bins=2)
        assert not is_feasible(inst)

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_never_contradicts_heuristic_success(self, seed):
        rng = random.Random(seed)
        for _ in range(10):
            inst = random_instance(
                rng, num_items=rng.randint(1, 7), capacity=rng.randint(2, 6),
                num_bins=rng.randint(1, 3),
            )
            ffd = first_fit_decreasing(inst)
            if ffd is not None:
                # If a heuristic found a packing, the instance is feasible.
                assert is_feasible(inst)
                assert ffd.is_valid()


class TestHeuristics:
    def test_first_fit_respects_capacity(self):
        inst = BinPackingInstance(sizes=(2, 2, 2, 2), capacity=4, num_bins=2)
        packing = first_fit(inst)
        assert packing is not None and packing.is_valid()

    def test_ffd_solves_classic_case_first_fit_misses(self):
        # FFD places the large items first and succeeds where FF can fail.
        inst = BinPackingInstance(sizes=(1, 4, 1, 4, 2, 2), capacity=7, num_bins=2)
        assert first_fit_decreasing(inst) is not None

    def test_best_fit_decreasing_valid(self):
        inst = BinPackingInstance(sizes=(5, 4, 3, 2, 1), capacity=8, num_bins=2)
        packing = best_fit_decreasing(inst)
        assert packing is not None and packing.is_valid()

    def test_heuristics_return_none_when_they_fail(self):
        inst = BinPackingInstance(sizes=(3, 3, 3), capacity=4, num_bins=2)
        assert first_fit(inst) is None
        assert first_fit_decreasing(inst) is None


class TestMinimumBins:
    def test_known_minimum(self):
        assert minimum_bins([4, 3, 3, 2, 2, 2], capacity=8) == 2
        assert minimum_bins([4, 4, 4], capacity=4) == 3

    def test_empty_items(self):
        assert minimum_bins([], capacity=5) == 0

    def test_oversized_item_raises(self):
        with pytest.raises(ValueError):
            minimum_bins([6], capacity=5)

    def test_minimum_bins_is_tight(self):
        sizes = [3, 3, 2, 2, 2]
        m = minimum_bins(sizes, capacity=6)
        assert is_feasible(BinPackingInstance(tuple(sizes), 6, m))
        if m > 1:
            assert not is_feasible(BinPackingInstance(tuple(sizes), 6, m - 1))
