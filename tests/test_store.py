"""Integration tests for the end-to-end store simulator (Experiment E8 substrate)."""

import pytest

from repro.analysis.spectrum import StalenessBucket, atomicity_spectrum
from repro.core.api import verify
from repro.core.preprocess import find_anomalies
from repro.simulation import (
    ExponentialLatency,
    FaultSchedule,
    FixedLatency,
    QuorumConfig,
    SloppyQuorumStore,
    StoreConfig,
    crash_window,
)
from repro.workloads import SingleKey, UniformKeys, WorkloadSpec, ZipfianKeys


def run_store(n, r, w, *, seed=7, clients=10, ops=30, drop=0.0, latency=None,
              read_repair=False, faults=None, keys=None, think=2.0):
    config = StoreConfig(
        quorum=QuorumConfig(num_replicas=n, read_quorum=r, write_quorum=w,
                            read_repair=read_repair),
        latency=latency if latency is not None else ExponentialLatency(mean_ms=3.0),
        drop_probability=drop,
    )
    store = SloppyQuorumStore(config, seed=seed)
    spec = WorkloadSpec(
        num_clients=clients,
        operations_per_client=ops,
        write_ratio=0.5,
        key_selector=keys if keys is not None else SingleKey(),
        mean_think_time_ms=think,
        seed=seed,
    )
    return store.run(spec, faults=faults)


class TestBasicRuns:
    def test_all_operations_complete_without_faults(self):
        result = run_store(3, 2, 2)
        assert result.failed_operations == 0
        expected = result.workload.total_operations + 1  # + seed write
        assert result.completed_operations == expected

    def test_histories_are_anomaly_free(self):
        result = run_store(5, 1, 2)
        for key in result.history.keys():
            assert not find_anomalies(result.history[key])

    def test_deterministic_given_seeds(self):
        a = run_store(3, 1, 1, seed=42)
        b = run_store(3, 1, 1, seed=42)
        ops_a = [(op.op_type, op.value, op.start, op.finish)
                 for op in a.history["key-00000"].operations]
        ops_b = [(op.op_type, op.value, op.start, op.finish)
                 for op in b.history["key-00000"].operations]
        assert ops_a == ops_b

    def test_different_seeds_differ(self):
        a = run_store(3, 1, 1, seed=1)
        b = run_store(3, 1, 1, seed=2)
        ops_a = [(op.value, op.start) for op in a.history["key-00000"].operations]
        ops_b = [(op.value, op.start) for op in b.history["key-00000"].operations]
        assert ops_a != ops_b

    def test_multi_key_workload_splits_histories(self):
        result = run_store(3, 2, 2, keys=UniformKeys(4), clients=8, ops=20)
        assert len(result.history) == 4
        assert result.history.total_operations() == result.completed_operations

    def test_summary_mentions_quorum(self):
        result = run_store(5, 1, 2, clients=4, ops=5)
        assert "N=5" in result.summary()


class TestConsistencyBehaviour:
    def test_strict_quorums_are_atomic(self):
        # R + W > N with last-writer-wins versions and symmetric latency:
        # every read sees the latest completed write.
        result = run_store(3, 2, 2, seed=5, clients=10, ops=40)
        h = result.history["key-00000"]
        assert verify(h, 1)

    def test_sloppy_quorums_eventually_violate_atomicity(self):
        # R=1, W=1 on 5 replicas: reads frequently miss the latest write.
        violations = 0
        for seed in range(4):
            result = run_store(5, 1, 1, seed=seed, clients=12, ops=40)
            h = result.history["key-00000"]
            if not verify(h, 1):
                violations += 1
        assert violations >= 1

    def test_read_repair_reduces_staleness(self):
        stale_without = 0
        stale_with = 0
        for seed in range(3):
            no_repair = run_store(5, 1, 1, seed=seed, clients=12, ops=40)
            with_repair = run_store(5, 1, 1, seed=seed, clients=12, ops=40, read_repair=True)
            from repro.analysis.metrics import staleness_stats

            stale_without += staleness_stats(no_repair.history["key-00000"]).stale_reads
            stale_with += staleness_stats(with_repair.history["key-00000"]).stale_reads
        assert stale_with <= stale_without

    def test_spectrum_on_sloppy_store(self):
        result = run_store(5, 1, 2, seed=11, clients=10, ops=40, keys=ZipfianKeys(3))
        spectrum = atomicity_spectrum(result.history)
        assert spectrum.num_keys == 3
        assert spectrum.worst_bucket() in (
            StalenessBucket.ATOMIC,
            StalenessBucket.TWO_ATOMIC,
            StalenessBucket.THREE_PLUS,
        )


class TestFaultInjection:
    def test_crashed_replica_can_cause_timeouts(self):
        faults = crash_window("replica-0", 0.0, 1e9)
        result = run_store(3, 1, 3, seed=3, clients=5, ops=10, faults=faults)
        assert result.coordinator.writes_timed_out > 0
        assert result.failed_operations > 0

    def test_crash_window_heals(self):
        faults = crash_window("replica-0", 0.0, 30.0)
        result = run_store(3, 2, 2, seed=3, clients=5, ops=20, faults=faults)
        # After recovery the cluster keeps serving; most operations complete.
        assert result.completed_operations > result.failed_operations

    def test_fault_schedule_composition(self):
        schedule = FaultSchedule()
        schedule.add_crash("replica-1", 10.0).add_recover("replica-1", 50.0)
        schedule.add_partition("client-0", "replica-2", 5.0)
        schedule.add_heal("client-0", "replica-2", 60.0)
        assert len(schedule) == 4
        result = run_store(3, 2, 2, seed=9, clients=4, ops=15, faults=schedule)
        assert result.completed_operations > 0

    def test_message_loss_still_makes_progress(self):
        result = run_store(3, 2, 2, seed=13, clients=5, ops=15, drop=0.05)
        assert result.completed_operations > 0
        assert result.network.dropped > 0
