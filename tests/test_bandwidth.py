"""Unit tests for the graph-bandwidth tools (Section VI related work, E10)."""

import networkx as nx
import pytest

from repro.core.api import minimal_k
from repro.core.history import History
from repro.core.operation import read, write
from repro.graphtools.bandwidth import (
    bandwidth_at_most,
    bandwidth_lower_bound,
    cluster_graph,
    exact_bandwidth,
    interval_graph,
)
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestGraphConstruction:
    def test_cluster_graph_edges_join_writes_to_their_reads(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0), read("a", 4.0, 5.0)])
        g = cluster_graph(h)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        w = h.writes[0]
        assert all(w.op_id in edge for edge in g.edges())

    def test_cluster_graph_has_node_attributes(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        g = cluster_graph(h)
        kinds = nx.get_node_attributes(g, "kind")
        assert set(kinds.values()) == {"write", "read"}

    def test_interval_graph_edges_are_overlaps(self):
        h = History(
            [
                write("a", 0.0, 5.0),
                read("a", 3.0, 8.0),   # overlaps the write
                read("a", 10.0, 12.0),  # disjoint from both
            ]
        )
        g = interval_graph(h)
        assert g.number_of_edges() == 1


class TestBandwidth:
    def test_path_graph_bandwidth_one(self):
        g = nx.path_graph(6)
        assert exact_bandwidth(g) == 1
        assert bandwidth_at_most(g, 1) is not None

    def test_star_graph_bandwidth(self):
        # K_{1,4}: the centre has 4 neighbours, bandwidth = ceil(4/2) = 2.
        g = nx.star_graph(4)
        assert exact_bandwidth(g) == 2
        assert bandwidth_at_most(g, 1) is None

    def test_complete_graph_bandwidth(self):
        g = nx.complete_graph(4)
        assert exact_bandwidth(g) == 3

    def test_empty_and_single_node_graphs(self):
        assert exact_bandwidth(nx.empty_graph(0)) == 0
        assert exact_bandwidth(nx.empty_graph(1)) == 0

    def test_disconnected_graph(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        assert exact_bandwidth(g) == 1

    def test_layout_witness_respects_bound(self):
        g = nx.cycle_graph(5)
        k = exact_bandwidth(g)
        layout = bandwidth_at_most(g, k)
        position = {v: i for i, v in enumerate(layout)}
        assert all(abs(position[u] - position[v]) <= k for u, v in g.edges())

    def test_lower_bound_never_exceeds_exact(self):
        for g in (nx.path_graph(5), nx.star_graph(5), nx.cycle_graph(6), nx.complete_graph(4)):
            assert bandwidth_lower_bound(g) <= exact_bandwidth(g)


class TestRelationToKAtomicity:
    """Section VI: the GBW insight does not transfer to k-AV.

    We exhibit both directions of the mismatch: histories whose cluster-graph
    bandwidth is small while the minimal k is large, and vice versa, so
    neither quantity determines the other.
    """

    def test_small_bandwidth_but_large_k(self):
        # Each write has exactly one read, so the cluster graph is a perfect
        # matching (bandwidth 1), yet reads are three writes stale.
        h = exactly_k_atomic_history(4, 6)
        g = cluster_graph(h)
        assert exact_bandwidth(g) <= 2
        assert minimal_k(h) == 4

    def test_large_degree_but_atomic(self):
        # One write with many fresh reads: the cluster graph is a star with
        # bandwidth > 1, yet the history is perfectly atomic.
        ops = [write("a", 0.0, 1.0)]
        t = 2.0
        for _ in range(6):
            ops.append(read("a", t, t + 0.5))
            t += 1.0
        h = History(ops)
        assert minimal_k(h) == 1
        assert exact_bandwidth(cluster_graph(h)) >= 2

    def test_serial_history_graphs_are_consistent(self):
        h = serial_history(4, 1)
        g = cluster_graph(h)
        assert g.number_of_edges() == 4
        assert exact_bandwidth(g) >= 1
