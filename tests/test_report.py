"""Unit tests for report rendering and trace auditing."""

import pytest

from repro.analysis.report import ConsistencyReport, audit_trace, format_table
from repro.analysis.spectrum import StalenessBucket
from repro.core.history import MultiHistory
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_headers_present(self):
        text = format_table(["col1", "col2"], [[1, 2]])
        assert "col1" in text and "col2" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


def build_trace():
    ops = []
    ops.extend(serial_history(4, 1, key="fresh").operations)
    ops.extend(exactly_k_atomic_history(2, 4, key="lagging").operations)
    return MultiHistory(ops)


class TestAuditTrace:
    def test_report_covers_all_keys(self):
        report = audit_trace(build_trace())
        assert report.num_keys == 2

    def test_render_contains_key_rows_and_buckets(self):
        report = audit_trace(build_trace(), title="unit-test audit")
        text = report.render()
        assert "unit-test audit" in text
        assert "fresh" in text and "lagging" in text
        assert StalenessBucket.ATOMIC.value in text
        assert StalenessBucket.TWO_ATOMIC.value in text

    def test_worst_observed_lag(self):
        report = audit_trace(build_trace())
        assert report.worst_observed_lag() == 1

    def test_per_key_staleness_entries(self):
        report = audit_trace(build_trace())
        keys = {key for key, _ in report.per_key_staleness}
        assert keys == {"fresh", "lagging"}

    def test_resolve_exact_passthrough(self):
        ops = list(exactly_k_atomic_history(3, 5, key="deep").operations)
        report = audit_trace(MultiHistory(ops), resolve_exact=True)
        verdict = report.spectrum.verdicts[0]
        assert verdict.minimal_k == 3
