"""Property-based tests (hypothesis) over the core data structures and algorithms.

These properties encode the paper's invariants directly:

* normalisation never changes the set of operations and always yields a
  history satisfying the Section II-C assumptions;
* GK / LBT / FZF always agree with the exact oracle (Theorems 3.1 and 4.5);
* k-atomicity is monotone in k;
* every YES verdict comes with a witness that the definition accepts;
* the bin-packing reduction preserves feasibility both ways (Theorem 5.1).
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.exact import verify_k_atomic_exact
from repro.algorithms.fzf import verify_2atomic_fzf
from repro.algorithms.gk import verify_1atomic
from repro.algorithms.lbt import verify_2atomic
from repro.binpacking import (
    BinPackingInstance,
    decode_witness,
    encode_packing,
    is_feasible,
    reduce_to_wkav,
    solve_exact,
)
from repro.algorithms.wkav import verify_weighted_k_atomic
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.preprocess import find_anomalies, has_anomalies, normalize

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def histories(draw, max_writes=5, max_reads=5):
    """Random single-register histories with bounded size (may be anomalous)."""
    num_writes = draw(st.integers(min_value=1, max_value=max_writes))
    num_reads = draw(st.integers(min_value=0, max_value=max_reads))
    ops = []
    for i in range(num_writes):
        start = draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
        duration = draw(st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
        ops.append(write(i, start, start + duration))
    for _ in range(num_reads):
        value = draw(st.integers(min_value=0, max_value=num_writes - 1))
        start = draw(st.floats(min_value=0.0, max_value=25.0, allow_nan=False))
        duration = draw(st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
        ops.append(read(value, start, start + duration))
    return History(ops)


@st.composite
def clean_histories(draw, max_writes=5, max_reads=5):
    """Random histories filtered to be anomaly-free and normalised."""
    h = draw(histories(max_writes=max_writes, max_reads=max_reads))
    if has_anomalies(h):
        h = normalize(h, drop_anomalous_reads=True)
    else:
        h = normalize(h)
    return h


@st.composite
def binpacking_instances(draw):
    capacity = draw(st.integers(min_value=2, max_value=6))
    num_bins = draw(st.integers(min_value=1, max_value=3))
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=capacity), min_size=0, max_size=5)
    )
    return BinPackingInstance(sizes=tuple(sizes), capacity=capacity, num_bins=num_bins)


COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# ----------------------------------------------------------------------
# Normalisation properties
# ----------------------------------------------------------------------
class TestNormalisationProperties:
    @COMMON_SETTINGS
    @given(histories())
    def test_normalize_preserves_operation_identities(self, h):
        fixed = normalize(h, drop_anomalous_reads=True)
        original_ids = {op.op_id for op in h.operations}
        assert {op.op_id for op in fixed.operations} <= original_ids

    @COMMON_SETTINGS
    @given(histories())
    def test_normalize_output_satisfies_assumptions(self, h):
        fixed = normalize(h, drop_anomalous_reads=True)
        assert not find_anomalies(fixed)
        stamps = [t for op in fixed.operations for t in op.interval]
        assert len(stamps) == len(set(stamps))
        for w in fixed.writes:
            reads = fixed.dictated_reads(w)
            if reads:
                assert w.finish < min(r.finish for r in reads)

    @COMMON_SETTINGS
    @given(clean_histories())
    def test_normalize_is_idempotent_on_clean_histories(self, h):
        again = normalize(h)
        assert [op.op_id for op in again.operations] == [op.op_id for op in h.operations]


# ----------------------------------------------------------------------
# Algorithm agreement properties
# ----------------------------------------------------------------------
class TestAlgorithmAgreementProperties:
    @COMMON_SETTINGS
    @given(clean_histories())
    def test_gk_matches_oracle(self, h):
        assert bool(verify_1atomic(h)) == bool(verify_k_atomic_exact(h, 1))

    @COMMON_SETTINGS
    @given(clean_histories())
    def test_lbt_and_fzf_match_oracle(self, h):
        expected = bool(verify_k_atomic_exact(h, 2))
        assert bool(verify_2atomic(h)) == expected
        assert bool(verify_2atomic_fzf(h)) == expected

    @COMMON_SETTINGS
    @given(clean_histories(max_writes=4, max_reads=4))
    def test_k_atomicity_monotone_in_k(self, h):
        verdicts = [bool(verify_k_atomic_exact(h, k)) for k in range(1, 5)]
        for earlier, later in zip(verdicts, verdicts[1:]):
            assert later or not earlier

    @COMMON_SETTINGS
    @given(clean_histories())
    def test_yes_verdicts_carry_valid_witnesses(self, h):
        for result in (verify_2atomic(h), verify_2atomic_fzf(h)):
            if result:
                assert h.is_k_atomic_total_order(result.require_witness(), 2)

    @COMMON_SETTINGS
    @given(clean_histories(max_writes=4, max_reads=3))
    def test_unit_weight_wkav_equals_kav(self, h):
        for k in (1, 2, 3):
            assert bool(verify_weighted_k_atomic(h, k)) == bool(
                verify_k_atomic_exact(h, k)
            )


# ----------------------------------------------------------------------
# Reduction properties (Theorem 5.1)
# ----------------------------------------------------------------------
class TestReductionProperties:
    @COMMON_SETTINGS
    @given(binpacking_instances())
    def test_reduction_preserves_feasibility(self, instance):
        reduced = reduce_to_wkav(instance)
        feasible = is_feasible(instance)
        verdict = verify_weighted_k_atomic(reduced.history, reduced.k)
        assert bool(verdict) == feasible

    @COMMON_SETTINGS
    @given(binpacking_instances())
    def test_witness_decodes_to_valid_packing(self, instance):
        reduced = reduce_to_wkav(instance)
        verdict = verify_weighted_k_atomic(reduced.history, reduced.k)
        if verdict:
            packing = decode_witness(reduced, verdict.require_witness())
            assert packing.is_valid()

    @COMMON_SETTINGS
    @given(binpacking_instances())
    def test_packing_encodes_to_weighted_witness(self, instance):
        packing = solve_exact(instance)
        if packing is None:
            return
        reduced = reduce_to_wkav(instance)
        order = encode_packing(reduced, packing)
        assert reduced.history.is_valid_total_order(order)
        assert reduced.history.is_weighted_k_atomic_total_order(order, reduced.k)
