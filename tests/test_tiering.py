"""Adaptive tiered verification: differential parity and escalation soundness.

The tier ladder (:mod:`repro.engine.tiering`) screens each register with the
cheapest sound verifier and escalates to the exact rung when trigger
features say a NO is possible.  The contract pinned here is *structural
identity with the exact-only run*:

* every boolean verdict matches, on every kernel tier and executor,
* every NO carries the identical reason and algorithm (NOs only ever come
  from the exact rung),
* every witness that is present validates against its history,
* streaming final verdicts equal the untiered stream, and every register
  the exact oracle fails has at least one escalated (``check``) window —
  a cheap screen is never silently trusted where a NO was possible.

On a batch-parity failure the harness shrinks the history to a local
minimum and writes it to ``tests/corpus/tier-*.jsonl``;
``test_corpus_replays_tier_parity`` replays every stored entry forever
after.  Seeds derive from ``REPRO_TEST_SEED`` (printed in the pytest
header) so failures are reproducible.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from pathlib import Path
from typing import List, Sequence

import pytest

from repro.core.api import verify
from repro.core.builder import TraceBuilder
from repro.core.errors import ServiceError, VerificationError
from repro.core.history import History
from repro.core.operation import Operation, read, write
from repro.core.windows import WindowPolicy
from repro.engine import Engine, StreamingEngine
from repro.engine.tiering import (
    TIER_NAMES,
    CostModel,
    TierPolicy,
    TierStats,
    TierStreamState,
    TraceFeatures,
    get_tier_policy,
)
from repro.io.formats import dump_jsonl, load_jsonl
from repro.workloads.synthetic import synthetic_trace

from tests.conftest import TEST_SEED, make_random_history
from tests.test_differential_fuzz import KERNELS, random_case, shrink

CORPUS_DIR = Path(__file__).parent / "corpus"

#: The screening tiers under test; "exact" resolves to the passthrough.
SCREEN_TIERS = ("screen", "auto")


# ----------------------------------------------------------------------
# Policy resolution
# ----------------------------------------------------------------------
def test_get_tier_policy_resolution():
    assert get_tier_policy(None) is None
    assert get_tier_policy("exact") is None  # passthrough: no ladder
    for name in SCREEN_TIERS:
        policy = get_tier_policy(name)
        assert isinstance(policy, TierPolicy) and policy.name == name
        assert get_tier_policy(policy) is policy
    assert get_tier_policy("auto").feature_gated
    assert not get_tier_policy("screen").feature_gated


def test_unknown_tier_name_is_a_typed_error_not_a_fallback():
    with pytest.raises(VerificationError, match="unknown tier 'bogus'"):
        get_tier_policy("bogus")
    with pytest.raises(VerificationError, match="unknown tier"):
        Engine(tier="fastest")
    with pytest.raises(VerificationError, match="unknown tier"):
        StreamingEngine(window=WindowPolicy.count(8), tier="none")


def test_tier_names_cover_the_presets():
    assert TIER_NAMES == ("exact", "screen", "auto")


# ----------------------------------------------------------------------
# Trace features and gates
# ----------------------------------------------------------------------
def test_trace_features_on_known_history(stale_by_two_history, atomic_history):
    stale = TraceFeatures.from_history(stale_by_two_history)
    assert stale.num_ops == 4 and stale.num_writes == 3 and stale.num_reads == 1
    assert stale.anomaly_score == 0.0  # the read's value was written
    assert stale.max_value_lag == 2  # two completed fresher writes skipped
    fresh = TraceFeatures.from_history(atomic_history)
    assert fresh.max_value_lag == 0 and fresh.anomaly_score == 0.0


def test_trace_features_anomaly_score():
    history = History(
        [write("a", 0.0, 1.0), read("ghost", 2.0, 3.0), read("a", 4.0, 5.0)]
    )
    features = TraceFeatures.from_history(history)
    assert features.anomaly_score == pytest.approx(0.5)


def test_gate_triggers_force_escalation_features():
    policy = get_tier_policy("auto")
    stale = TraceFeatures.from_history(
        History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0),
                write("c", 4.0, 5.0),
                read("a", 6.0, 7.0),
            ]
        )
    )
    assert "value-lag" in policy.gate_triggers(stale, 2)
    assert "value-lag" not in policy.gate_triggers(stale, 3)
    anomalous = TraceFeatures.from_history(
        History([write("a", 0.0, 1.0), read("ghost", 2.0, 3.0)])
    )
    assert "anomaly" in policy.gate_triggers(anomalous, 2)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_cost_model_predict_is_linear_and_monotone():
    model = CostModel()
    for stage in ("screen", "confirm", "exact"):
        for kernel in ("object", "columnar", "numpy"):
            small = model.predict(stage, kernel, 10)
            large = model.predict(stage, kernel, 10_000)
            assert 0 < small <= large


def test_cost_model_fit_recovers_a_linear_curve():
    model = CostModel()
    samples = [
        ("screen:object", n, 1e-4 + 2e-6 * n) for n in (10, 50, 100, 500, 1000)
    ]
    errors = model.fit(samples)
    a, b = model.coeffs["screen:object"]
    assert a == pytest.approx(1e-4, rel=0.01)
    assert b == pytest.approx(2e-6, rel=0.01)
    assert errors["screen:object"] < 0.01
    assert model.fit_errors == errors


def test_cost_model_roundtrip_and_knob_picks():
    model = CostModel()
    clone = CostModel.from_dict(model.to_dict())
    assert clone.coeffs == model.coeffs
    assert clone.confirm_interval == model.confirm_interval
    assert model.choose_kernel(100) in ("object", "columnar", "numpy")
    assert model.choose_executor(100, 1) == "serial"
    assert model.choose_window(1000.0) >= 1
    sweep = model.choose_k_sweep(
        TraceFeatures(
            num_ops=10, num_writes=5, num_reads=5, duration=1.0,
            op_rate=10.0, overlap_density=0.0, anomaly_score=0.0,
            max_value_lag=1,
        ),
        3,
    )
    assert sweep and all(1 <= k <= 3 for k in sweep)


def test_cost_model_calibrate_refits_from_real_probes(rng):
    histories = {
        f"r{i}": make_random_history(rng, 10, 15) for i in range(3)
    }
    model = CostModel.calibrate(histories)
    # Calibration must produce usable curves for the rungs it probed.
    assert model.predict("screen", "object", 100) > 0
    assert model.choose_kernel(100) in ("object", "columnar", "numpy")


def test_tier_stats_accounting():
    policy = get_tier_policy("screen")
    stats = TierStats()
    history = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
    _result, decision = policy.verify_with_decision(history, 2, key="x")
    stats.record(decision)
    assert stats.total == 1 and stats.screened == 1 and stats.exact == 0
    assert stats.screen_rate == 1.0 and stats.escalation_rate == 0.0
    payload = stats.to_dict()
    assert payload["screen_rate"] == 1.0 and payload["escalation_rate"] == 0.0
    other = TierStats()
    other.record(decision)
    stats.merge(other)
    assert stats.total == 2


# ----------------------------------------------------------------------
# Differential parity: tiered vs exact, batch
# ----------------------------------------------------------------------
def tier_disagreements(ops: Sequence[Operation]) -> List[str]:
    """Tiered verdict stream vs the exact-only run, on every kernel/tier."""
    history = History(ops)
    problems: List[str] = []
    for k in (1, 2):
        for kernel in KERNELS:
            exact = verify(history, k, kernel=kernel)
            for tier in SCREEN_TIERS:
                policy = get_tier_policy(tier)
                tiered, decision = policy.verify_with_decision(
                    history, k, key="x", kernel=kernel
                )
                where = f"tier={tier}/kernel={kernel}/k={k}"
                if bool(tiered) != bool(exact):
                    problems.append(
                        f"{where}: tiered says {bool(tiered)} but exact says "
                        f"{bool(exact)} (route {decision.describe()})"
                    )
                    continue
                if not exact and (tiered.reason, tiered.algorithm) != (
                    exact.reason, exact.algorithm,
                ):
                    problems.append(
                        f"{where}: NO diverges — tiered "
                        f"({tiered.algorithm}: {tiered.reason!r}) vs exact "
                        f"({exact.algorithm}: {exact.reason!r})"
                    )
                if tiered.witness is not None and not tiered.check_witness(history):
                    problems.append(f"{where}: tiered witness does not validate")
                if not exact and decision.tier != "exact":
                    problems.append(
                        f"{where}: a NO came from the {decision.tier!r} rung — "
                        "NOs must only ever come from the exact rung"
                    )
    return problems


def report_tier_divergence(
    ops: List[Operation], problems: List[str], origin: str
) -> None:
    """Shrink, persist to the corpus, and fail with a replayable message."""
    minimal = shrink(list(ops), lambda c: bool(tier_disagreements(c)))
    digest = hashlib.sha256(
        "".join(
            f"{op.op_type.value}:{op.value!r}:{op.start!r}:{op.finish!r};"
            for op in minimal
        ).encode()
    ).hexdigest()[:12]
    CORPUS_DIR.mkdir(exist_ok=True)
    path = CORPUS_DIR / f"tier-{digest}.jsonl"
    dump_jsonl(minimal, path)
    pytest.fail(
        f"tier parity divergence from {origin} (seed {TEST_SEED:#x}):\n  "
        + "\n  ".join(tier_disagreements(minimal))
        + f"\nminimised to {len(minimal)} ops, written to {path} "
        "(replay: pytest tests/test_tiering.py::test_corpus_replays_tier_parity)"
    )


@pytest.mark.parametrize("seed_offset", [0, 1, 2])
def test_tiered_parity_randomised(seed_offset):
    """>= 3 independent seeds x all kernels x both screening tiers."""
    rng = random.Random(TEST_SEED + 1000 * seed_offset)
    for iteration in range(12):
        history, origin = random_case(rng)
        problems = tier_disagreements(history.operations)
        if problems:
            report_tier_divergence(
                list(history.operations),
                problems,
                f"seed_offset {seed_offset} iteration {iteration}: {origin}",
            )


def test_corpus_replays_tier_parity():
    """Every minimised tier divergence ever recorded must stay fixed."""
    entries = sorted(CORPUS_DIR.glob("tier-*.jsonl"))
    if not entries:
        pytest.skip("tier corpus is empty (no divergence has ever been recorded)")
    for path in entries:
        trace = load_jsonl(path)
        for key in trace.keys():
            problems = tier_disagreements(trace[key].operations)
            assert not problems, (
                f"corpus entry {path.name} diverges again:\n  "
                + "\n  ".join(problems)
            )


@pytest.mark.parametrize("tier", SCREEN_TIERS)
@pytest.mark.parametrize(
    "executor,jobs", [("serial", None), ("threads", 2), ("processes", 2)]
)
def test_engine_tiered_parity_across_executors(tier, executor, jobs):
    """Engine(tier=...) equals Engine() register-for-register, every executor."""
    rng = random.Random(TEST_SEED + 31)
    trace = synthetic_trace(
        rng, 6, 40, staleness_probability=0.2, max_staleness=2
    )
    exact = Engine(executor=executor, jobs=jobs).verify_trace(trace, 2)
    tiered = Engine(executor=executor, jobs=jobs, tier=tier).verify_trace(trace, 2)
    assert set(exact.results) == set(tiered.results)
    for key, expected in exact.results.items():
        got = tiered.results[key]
        assert bool(got) == bool(expected), (key, tier, executor)
        if not expected:
            assert (got.reason, got.algorithm) == (
                expected.reason, expected.algorithm,
            ), (key, tier, executor)
    # The report must carry the tier accounting: nothing skipped silently.
    assert tiered.tier == tier
    stats = dict(tiered.tier_stats)
    assert stats["total"] == len(trace.keys())
    assert stats["screened"] + stats["exact"] == stats["total"]
    assert set(tiered.tier_decisions) == set(exact.results)


def test_tiered_report_summary_mentions_the_tier():
    rng = random.Random(TEST_SEED + 32)
    trace = synthetic_trace(rng, 3, 20, staleness_probability=0.0)
    report = Engine(tier="auto").verify_trace(trace, 2)
    assert "tier=auto" in report.summary()
    untiered = Engine().verify_trace(trace, 2)
    assert "tier=" not in untiered.summary()


def test_screened_yes_records_the_screen_rung():
    """A clean register at k=2 settles on the k'=1 GK screen."""
    history = History(
        [write(i, 2.0 * i, 2.0 * i + 0.5) for i in range(5)]
        + [read(i, 2.0 * i + 1.0, 2.0 * i + 1.5) for i in range(5)]
    )
    policy = get_tier_policy("screen")
    result, decision = policy.verify_with_decision(history, 2, key="x")
    assert bool(result)
    assert decision.tier == "screen" and decision.screen_k == 1
    assert not decision.escalated
    assert "1-atomic" in (result.reason or "")
    assert result.stats.get("tier") == "screen"


def test_exact_no_always_escalates_with_triggers(stale_by_two_history):
    """Where exact says NO, the decision must be an escalated exact route."""
    for tier in SCREEN_TIERS:
        policy = get_tier_policy(tier)
        result, decision = policy.verify_with_decision(
            stale_by_two_history, 2, key="x"
        )
        assert not result
        assert decision.tier == "exact" and decision.escalated
        assert decision.triggers, "an escalation must say why"


# ----------------------------------------------------------------------
# Streaming: parity, escalation soundness, bypass counters
# ----------------------------------------------------------------------
def _stream(ops):
    return sorted(ops, key=lambda o: (o.finish, o.op_id))


def _staircase_ops(n=40, lag=2):
    """Writes w(0)..w(n) with reads lagging ``lag`` writes behind."""
    ops, t = [], 0.0
    for i in range(n):
        ops.append(write(i, t, t + 0.5, key="x", client=f"c{i % 3}"))
        ops.append(
            read(max(0, i - lag), t + 0.6, t + 0.9, key="x", client=f"r{i % 3}")
        )
        t += 1.0
    return ops


@pytest.mark.parametrize("tier", SCREEN_TIERS)
def test_streaming_tiered_final_verdicts_equal_untiered(tier):
    rng = random.Random(TEST_SEED + 41)
    trace = synthetic_trace(rng, 4, 50, staleness_probability=0.2, max_staleness=2)
    ops = _stream(op for key in trace.keys() for op in trace[key].operations)

    def final(tier_arg):
        engine = StreamingEngine(window=WindowPolicy.count(16), tier=tier_arg)
        return engine.verify_stream(list(ops), 2)

    exact = final(None)
    tiered = final(tier)
    assert tiered.tier == tier and exact.tier == "exact"
    assert set(exact.results) == set(tiered.results)
    for key, expected in exact.results.items():
        got = tiered.results[key]
        assert bool(got) == bool(expected), (key, tier)
        if not expected:
            assert got.reason == expected.reason, (key, tier)


def test_streaming_escalation_soundness_value_lag_forces_check():
    """The adversarial case: the O(1) peek is stale-YES where exact says NO.

    Every window that makes a NO possible carries a value-lag trigger, so
    the tier state must route it to ``check_now`` — the screen is never
    trusted on a NO-capable window.
    """
    ops = _staircase_ops(n=24, lag=2)
    engine = StreamingEngine(window=WindowPolicy.count(12), tier="auto")
    report = engine.verify_stream(_stream(ops), 2)
    assert not report.results["x"].is_k_atomic
    # At least one window escalated, and the triggers say why.
    assert report.escalated_checks >= 1
    triggers = [
        trig
        for window in report.timeline
        for trigs in window.escalations.values()
        for trig in trigs
    ]
    assert "value-lag" in triggers
    # Soundness property: a register the oracle fails never rides only peeks.
    escalated_keys = {
        key
        for window in report.timeline
        for key, mode in window.tiers.items()
        if mode == "check"
    }
    for key, result in report.results.items():
        if not result:
            assert key in escalated_keys, (
                f"register {key!r} is NO but no window escalated to check"
            )


def test_streaming_clean_trace_bypasses_exact_but_counts_it():
    """No silent caps: skipped exact checks surface in the report counters."""
    ops = _staircase_ops(n=30, lag=0)
    engine = StreamingEngine(window=WindowPolicy.count(10), tier="auto")
    report = engine.verify_stream(_stream(ops), 2)
    assert report.results["x"].is_k_atomic  # finish() is authoritative
    assert report.windows_bypassed_exact > 0
    assert report.register_windows_bypassed > 0
    assert "bypassed exact" in report.summary()
    # The periodic confirm bounds how long a register can ride peeks.
    confirm = get_tier_policy("auto").cost_model.confirm_interval
    longest_run = run = 0
    for window in report.timeline:
        if window.tiers.get("x") == "peek":
            run += 1
            longest_run = max(longest_run, run)
        else:
            run = 0
    assert longest_run <= confirm


def test_streaming_untiered_reports_have_no_tier_noise():
    ops = _staircase_ops(n=10, lag=0)
    engine = StreamingEngine(window=WindowPolicy.count(10))
    report = engine.verify_stream(_stream(ops), 2)
    assert report.tier == "exact"
    assert all(not window.tiers for window in report.timeline)
    assert report.windows_bypassed_exact == 0
    assert "bypassed" not in report.summary()


def test_tier_stream_state_triggers():
    state = TierStreamState(get_tier_policy("screen"), k=2)
    w = [write(i, float(i), i + 0.5, key="x") for i in range(4)]
    # Fresh read: no trigger, peek suffices.
    mode, triggers = state.decide("x", [w[0], read(0, 0.6, 0.9, key="x")])
    assert mode == "peek" and triggers == ()
    # Anomalous read (never-written value): must check.
    mode, triggers = state.decide("x", [read("ghost", 1.0, 1.1, key="x")])
    assert mode == "check" and "anomaly" in triggers
    # Value lag >= k: must check.
    mode, triggers = state.decide(
        "x", [w[1], w[2], w[3], read(1, 4.0, 4.2, key="x")]
    )
    assert mode == "check" and "value-lag" in triggers
    # A latched alarm keeps forcing checks.
    state.note_verdict("x", False)
    mode, triggers = state.decide("x", [read(3, 5.0, 5.2, key="x")])
    assert mode == "check" and "checker-alarm" in triggers


def test_tier_stream_state_periodic_confirm_and_snapshot():
    policy = get_tier_policy("screen")
    interval = policy.cost_model.confirm_interval
    state = TierStreamState(policy, k=2)
    state.decide("x", [write(0, 0.0, 0.5, key="x")])
    modes = [
        state.decide("x", [read(0, i + 1.0, i + 1.2, key="x")])[0]
        for i in range(interval + 1)
    ]
    assert "check" in modes, "periodic confirm never fired"
    # Snapshot/restore preserves the cadence and the value table.
    restored = TierStreamState.restore(policy, state.snapshot())
    assert restored.snapshot() == state.snapshot()


# ----------------------------------------------------------------------
# Service sessions: config validation, counters, checkpoints
# ----------------------------------------------------------------------
def test_session_config_rejects_unknown_tier():
    from repro.service.session import SessionConfig

    with pytest.raises(ServiceError, match="unknown tier"):
        SessionConfig.from_dict({"k": 2, "tier": "bogus"})


def test_session_config_tier_is_conditional_in_to_dict():
    from repro.service.session import SessionConfig

    assert "tier" not in SessionConfig(k=2).to_dict()
    record = SessionConfig(k=2, tier="auto").to_dict()
    assert record["tier"] == "auto"
    assert SessionConfig.from_dict(record).tier == "auto"


def test_audit_session_tier_counters_and_checkpoint_payload():
    from repro.service.session import AuditSession, SessionConfig

    config = SessionConfig(k=2, window_size=16, tier="auto")
    session = AuditSession.start("s-tier", config)
    for op in _staircase_ops(n=30, lag=0):
        session.feed(op)
    assert session.windows_bypassed > 0
    payload = session.checkpoint_payload()
    assert payload["tiering"]["windows_bypassed"] == session.windows_bypassed
    resumed = AuditSession.resume(payload)
    assert resumed.windows_bypassed == session.windows_bypassed
    assert resumed.config.tier == "auto"
    stats = resumed.stats()
    assert stats.tier == "auto"
    # Default sessions keep the pre-tiering payload schema byte-for-byte.
    plain = AuditSession.start("s-plain", SessionConfig(k=2, window_size=16))
    plain_payload = plain.checkpoint_payload()
    assert "tiering" not in plain_payload
    assert "tier" not in plain_payload["config"]
    assert "tier" not in plain_payload["stream"]


def test_service_report_surfaces_escalations():
    from repro.analysis.report import ServiceReport

    from repro.service.session import AuditSession, SessionConfig

    session = AuditSession.start(
        "s-esc", SessionConfig(k=2, window_size=12, tier="auto")
    )
    for op in _staircase_ops(n=24, lag=2):
        session.feed(op)
    session.finish()
    rendered = ServiceReport(sessions=(session.stats(),), uptime_s=1.0).render()
    assert "escalations are never silent" in rendered
    assert "s-esc" in rendered


# ----------------------------------------------------------------------
# Pooled sessions: per-shard escalation parity
# ----------------------------------------------------------------------
def test_pooled_tiered_session_matches_in_process():
    from repro.service import PooledAuditSession, WorkerPool
    from repro.service.session import AuditSession, SessionConfig

    config = SessionConfig(k=2, window_size=16, tier="auto")
    ops = _staircase_ops(n=40, lag=2) + [
        op
        for i in range(40)
        for op in (
            write(i, 1.0 * i, 1.0 * i + 0.5, key="y", client="cy"),
            read(i, 1.0 * i + 0.6, 1.0 * i + 0.9, key="y", client="ry"),
        )
    ]
    stream = _stream(ops)
    ref = AuditSession.start("ref", config)
    for op in stream:
        ref.feed(op)
    ref_report = ref.finish()

    async def scenario():
        pool = WorkerPool(2)
        await pool.start()
        try:
            session = PooledAuditSession.start("p-tier", config, pool)
            windows = [
                r for op in stream if (r := await session.afeed(op)) is not None
            ]
            return session, windows, await session.afinish()
        finally:
            await pool.stop()

    session, windows, report = asyncio.run(scenario())
    # Final verdicts (the sound surface) are identical to in-process tiered —
    # which the streaming tests pin to exact.
    assert set(ref_report.results) == set(report.results)
    for key, expected in ref_report.results.items():
        got = report.results[key]
        assert bool(got) == bool(expected), key
        if not expected:
            assert got.reason == expected.reason, key
    # Per-shard escalation: the hot register pays checks, the cold one peeks.
    assert report.tier == "auto"
    modes_x = [w.tiers.get("x") for w in windows if "x" in w.tiers]
    modes_y = [w.tiers.get("y") for w in windows if "y" in w.tiers]
    assert "check" in modes_x, "stale shard never escalated"
    assert "peek" in modes_y, "clean shard never screened"
    assert session.escalations >= 1
    # The pooled checkpoint schema matches the in-process one.
    payload = asyncio.run(_pooled_checkpoint(config, stream))
    assert "tiering" in payload and "tier" in payload["stream"]


async def _pooled_checkpoint(config, stream):
    from repro.service import PooledAuditSession, WorkerPool

    pool = WorkerPool(2)
    await pool.start()
    try:
        session = PooledAuditSession.start("p-ckpt", config, pool)
        for op in stream[: len(stream) // 2]:
            await session.afeed(op)
        payload = await session.acheckpoint_payload()
        # The payload must rehydrate on a pool and keep counting.
        resumed = await PooledAuditSession.resume(payload, pool)
        assert resumed.config.tier == config.tier
        assert resumed.windows_bypassed == session.windows_bypassed
        await resumed.aclose()
        return payload
    finally:
        await pool.stop()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_rejects_unknown_tier_at_parse_time(capsys):
    from repro.cli import build_parser

    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["verify", "t.jsonl", "--tier", "fastest"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_verify_tier_auto_prints_tier_summary(tmp_path):
    import io

    from repro.cli import main

    path = tmp_path / "trace.jsonl"
    dump_jsonl(_staircase_ops(n=20, lag=0), path)
    out = io.StringIO()
    assert main(["verify", str(path), "--k", "2", "--tier", "auto"], out=out) == 0
    assert "tier=auto" in out.getvalue()


def test_cli_verify_tier_conflicts_with_remote(tmp_path):
    import io

    from repro.cli import main

    path = tmp_path / "trace.jsonl"
    dump_jsonl(_staircase_ops(n=4, lag=0), path)
    out = io.StringIO()
    code = main(
        ["verify", str(path), "--remote", "127.0.0.1:1", "--tier", "auto"],
        out=out,
    )
    assert code == 2 and "--tier" in out.getvalue()


def test_cli_serve_parser_accepts_tier():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--tier", "screen", "--port", "0"])
    assert args.tier == "screen"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--tier", "bogus"])


# ----------------------------------------------------------------------
# Experiments
# ----------------------------------------------------------------------
def test_tiering_experiment_kind_reports_parity():
    from repro.experiments import load_spec, run_experiment

    spec = load_spec("experiments/tiered_cost_model.toml")
    report = run_experiment(spec, smoke=True)
    assert report.kind == "tiering"
    for row in report.rows:
        assert row.metrics["parity_ok"] == 1.0, row.params
        assert 0.0 <= row.metrics["escalation_rate_k2"] <= 1.0
        assert "fit_error" in row.metrics


def test_tiering_experiment_rejects_exact_tier():
    from repro.experiments import ExperimentSpec, run_experiment
    from repro.experiments.spec import ExperimentError

    spec = ExperimentSpec.from_dict(
        {
            "experiment": {"name": "bad", "kind": "tiering"},
            "workload": {"kind": "synthetic", "registers": 2,
                         "ops_per_register": 10, "tier": "exact"},
        }
    )
    with pytest.raises(ExperimentError, match="screen"):
        run_experiment(spec, smoke=True)


# ----------------------------------------------------------------------
# Multi-register batch: decisions per register
# ----------------------------------------------------------------------
def test_engine_tier_decisions_are_per_register():
    builder = TraceBuilder()
    for op in _staircase_ops(n=20, lag=2):
        builder.append(op)
    for i in range(20):
        builder.append(write(i, 1.0 * i, 1.0 * i + 0.4, key="clean"))
        builder.append(read(i, 1.0 * i + 0.5, 1.0 * i + 0.9, key="clean"))
    trace = builder.build()
    report = Engine(tier="auto").verify_trace(trace, 2)
    decisions = report.tier_decisions
    assert decisions["x"].tier == "exact" and decisions["x"].escalated
    assert decisions["clean"].tier == "screen"
    assert not report.results["x"]
    assert report.results["clean"]
