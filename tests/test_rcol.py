"""The memory-mapped ``.rcol`` out-of-core trace backend.

``.rcol`` is the only format the engine can verify without materialising the
trace, so these tests pin the whole contract: lossless round-trips (weights,
clients, keyless registers, non-string keys), validation parity with the
object readers, re-sorting of foreign-written files, lazy value decoding,
the engine/CLI paths over ``.rcol`` files, and the pyarrow gating of the
optional Parquet sibling.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.errors import MalformedOperationError, TraceFormatError
from repro.core.history import History, MultiHistory
from repro.core.operation import read, write
from repro.core.preprocess import normalize
from repro.engine import Engine
from repro.io.registry import FORMATS, detect_format, dump_trace, load_trace
from repro.workloads.synthetic import practical_history, synthetic_trace

np = pytest.importorskip("numpy", reason="the .rcol backend needs numpy")

from repro.core.vector import verify_columnar  # noqa: E402
from repro.io.rcol import (  # noqa: E402
    LazyValueTable,
    RcolFile,
    RcolWriter,
    dump_rcol,
    iter_rcol,
)


def sample_trace():
    ops = []
    for seed in range(3):
        ops.extend(
            practical_history(
                random.Random(seed), 30, staleness_probability=0.2,
                max_staleness=2, key=f"reg-{seed}", num_clients=3,
            ).operations
        )
    ops.append(write(12345, 0.0, 1.0, key=7, weight=3))
    ops.append(read(12345, 2.0, 3.0, key=7, client="c9"))
    return MultiHistory(ops)


def op_payload(op):
    """Everything serialisable about an operation (op_ids are process-local)."""
    return (op.op_type, op.value, op.start, op.finish, op.key, op.client, op.weight)


class TestRoundTrip:
    def test_dump_iter_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.rcol"
        count = dump_rcol(trace, path)
        assert count == trace.total_operations()
        by_key = {}
        for op in iter_rcol(path):
            by_key.setdefault(op.key, []).append(op)
        assert set(by_key) == set(trace.keys())
        for key in trace.keys():
            assert [op_payload(op) for op in by_key[key]] == [
                op_payload(op) for op in trace[key].operations
            ]

    def test_registry_roundtrip_and_detection(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.rcol"
        assert detect_format(path).name == "rcol"
        dump_trace(trace, path)
        loaded = load_trace(path)
        assert set(loaded.keys()) == set(trace.keys())
        for key in trace.keys():
            assert [op_payload(op) for op in loaded[key].operations] == [
                op_payload(op) for op in trace[key].operations
            ]

    def test_keyless_history_roundtrip(self, tmp_path):
        history = History(
            [write("a", 0.0, 1.0, weight=2), read("a", 2.0, 3.0, client="c1")]
        )
        path = tmp_path / "keyless.rcol"
        dump_rcol(history, path)
        ops = list(iter_rcol(path))
        assert [op.key for op in ops] == [None, None]
        assert [op.weight for op in ops] == [2, 1]
        assert [op.client for op in ops] == [None, "c1"]

    def test_weights_survive_json_conversion(self, tmp_path):
        # numpy scalars must never leak into decoded operations: a
        # rcol -> jsonl conversion JSON-encodes every field.
        history = History([write("a", 0.0, 1.0, weight=5), read("a", 2.0, 3.0)],
                          key="w")
        rcol = tmp_path / "t.rcol"
        jsonl = tmp_path / "t.jsonl"
        dump_rcol(history, rcol)
        dump_trace(load_trace(rcol), jsonl)
        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert records[0]["weight"] == 5
        assert all(isinstance(r["start"], float) for r in records)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rcol"
        assert dump_rcol(MultiHistory([]), path) == 0
        with RcolFile(path) as rf:
            assert rf.keys() == []
            assert rf.num_ops == 0
        assert list(iter_rcol(path)) == []


class TestValidation:
    def test_nonpositive_duration_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.rcol"
        with RcolWriter(path) as w:
            w.begin_register("r")
            w.add_values(["a"])
            w.append_chunk(
                np.array([2.0]), np.array([1.0]),
                np.array([1], dtype=np.uint8), np.array([0], dtype=np.int32),
            )
            w.end_register()
        with RcolFile(path) as rf:
            with pytest.raises(MalformedOperationError) as err:
                rf.load_columnar("r")
        assert "positive amount of time" in str(err.value)

    def test_nonpositive_weight_rejected_on_load(self, tmp_path):
        path = tmp_path / "badw.rcol"
        with RcolWriter(path) as w:
            w.begin_register("r")
            w.add_values(["a"])
            w.append_chunk(
                np.array([0.0]), np.array([1.0]),
                np.array([1], dtype=np.uint8), np.array([0], dtype=np.int32),
                weights=np.array([0], dtype=np.int64),
            )
            w.end_register()
        with RcolFile(path) as rf:
            with pytest.raises(MalformedOperationError) as err:
                rf.load_columnar("r")
        assert "weights must be positive" in str(err.value)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.rcol"
        dump_rcol(sample_trace(), path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError):
            RcolFile(path)

    def test_non_json_key_rejected_at_write_time(self, tmp_path):
        with RcolWriter(tmp_path / "x.rcol") as w:
            with pytest.raises(TraceFormatError):
                w.begin_register(("tuple", "key"))

    def test_foreign_unsorted_rows_are_resorted(self, tmp_path):
        # A foreign producer may write rows out of canonical order; loading
        # must re-sort instead of mis-verifying.
        path = tmp_path / "unsorted.rcol"
        with RcolWriter(path) as w:
            w.begin_register("r")
            w.add_values(["a", "b"])
            w.append_chunk(
                np.array([4.0, 0.0, 2.0]),
                np.array([5.0, 1.0, 3.0]),
                np.array([0, 1, 1], dtype=np.uint8),
                np.array([1, 0, 1], dtype=np.int32),
            )
            w.end_register()
        with RcolFile(path) as rf:
            col = rf.load_columnar("r")
            assert list(col.start) == [0.0, 2.0, 4.0]
            res = verify_columnar(col, 1)
            assert bool(res)


class TestLazyLoading:
    def test_lazy_value_table_decodes_per_item(self, tmp_path):
        path = tmp_path / "lazy.rcol"
        history = normalize(
            practical_history(random.Random(1), 40, key="lz", num_clients=2)
        )
        dump_rcol(history, path)
        with RcolFile(path) as rf:
            col = rf.load_columnar("lz")
            assert isinstance(col.values, LazyValueTable)
            materialised = col.values.materialise()
            assert list(col.values) == materialised
            assert col.values[0] == materialised[0]

    def test_verify_columnar_parity_with_object_path(self, tmp_path):
        from repro.core.api import verify

        for seed in (0, 3, 6):
            history = practical_history(
                random.Random(seed), 80, staleness_probability=0.3,
                max_staleness=2, key=f"p{seed}",
            )
            path = tmp_path / f"p{seed}.rcol"
            dump_rcol(history, path)
            with RcolFile(path) as rf:
                col = rf.load_columnar(f"p{seed}")
                for k in (1, 2):
                    ref = verify(history, k, kernel="object")
                    got = verify_columnar(col, k)
                    assert bool(got) == bool(ref), (seed, k)
                    assert got.stats == ref.stats, (seed, k)

    def test_undecoded_witness_stays_undecoded(self, tmp_path):
        history = normalize(practical_history(random.Random(2), 60, key="u"))
        path = tmp_path / "u.rcol"
        dump_rcol(history, path)
        with RcolFile(path) as rf:
            col = rf.load_columnar("u")
            res = verify_columnar(col, 2, preprocess=False, decode_witness=False)
            dec = verify_columnar(col, 2, preprocess=False)
        assert bool(res) and res.witness is None
        assert bool(dec) and dec.witness is not None
        assert col.to_history().is_k_atomic_total_order(dec.witness, 2)

    def test_register_sizes_match_footer(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "sizes.rcol"
        dump_rcol(trace, path)
        with RcolFile(path) as rf:
            sizes = dict(rf.register_sizes())
        assert sizes == {key: len(trace[key]) for key in trace.keys()}


class TestEngineAndCLI:
    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_verify_file_matches_jsonl_path(self, tmp_path, executor):
        trace = synthetic_trace(
            random.Random(5), 5, 120, staleness_probability=0.2, max_staleness=2
        )
        rcol = tmp_path / "t.rcol"
        jsonl = tmp_path / "t.jsonl"
        dump_trace(trace, rcol)
        dump_trace(trace, jsonl)
        engine = Engine(executor=executor, jobs=2)
        rep_rcol = engine.verify_file(rcol, 2)
        rep_jsonl = engine.verify_file(jsonl, 2)
        assert {k: (bool(r), r.algorithm) for k, r in rep_rcol.results.items()} == {
            k: (bool(r), r.algorithm) for k, r in rep_jsonl.results.items()
        }

    def test_cli_verify_and_convert(self, tmp_path):
        import io as _io

        from repro.cli import main

        trace = synthetic_trace(random.Random(8), 3, 60)
        jsonl = tmp_path / "t.jsonl"
        rcol = tmp_path / "t.rcol"
        dump_trace(trace, jsonl)
        assert main(["convert", str(jsonl), str(rcol)], out=_io.StringIO()) == 0
        out_rcol, out_jsonl = _io.StringIO(), _io.StringIO()
        assert main(["verify", str(rcol), "--k", "2"], out=out_rcol) == 0
        assert main(["verify", str(jsonl), "--k", "2"], out=out_jsonl) == 0
        # Same registers, same verdicts; only the trace path differs.
        scrub = lambda text: text.replace(str(rcol), "T").replace(str(jsonl), "T")
        assert scrub(out_rcol.getvalue()) == scrub(out_jsonl.getvalue())


class TestParquetGating:
    def test_parquet_is_registered(self):
        assert "parquet" in FORMATS
        assert ".parquet" in FORMATS["parquet"].extensions

    def test_gating_or_roundtrip(self, tmp_path):
        from repro.io import parquet

        path = tmp_path / "t.parquet"
        trace = sample_trace()
        if parquet.PYARROW_AVAILABLE:
            dump_trace(trace, path)
            loaded = load_trace(path)
            for key in trace.keys():
                assert [op_payload(op) for op in loaded[key].operations] == [
                    op_payload(op) for op in trace[key].operations
                ]
        else:
            with pytest.raises(TraceFormatError) as err:
                dump_trace(trace, path)
            assert "repro-katomicity[arrow]" in str(err.value)
            with pytest.raises(TraceFormatError):
                list(parquet.iter_parquet(path))
