"""Fuzzing the wire surface: malformed frames must die typed, never hang.

Every byte sequence a hostile or broken peer can send must produce a typed
error (:class:`ServiceError` from the frame codec, :class:`TraceFormatError`
from the trace decoder) or a clean close — never an unhandled
``UnicodeDecodeError``/``KeyError``, never a poisoned sibling session, and
never a server that stops accepting.  Random cases derive from ``TEST_SEED``
so failures replay with ``REPRO_TEST_SEED=...``.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.core.errors import ReproError, ServiceError, TraceFormatError
from repro.io.formats import JsonlDecoder, operation_to_dict
from repro.service import AuditClient, AuditServer
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_frame,
    error_to_exception,
)
from repro.workloads.synthetic import practical_history

from tests.conftest import TEST_SEED

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


# ----------------------------------------------------------------------
# decode_frame
# ----------------------------------------------------------------------
GOOD_FRAME = encode_frame({"type": "hello", "session": "s", "k": 2})


def test_decode_frame_round_trips():
    assert decode_frame(GOOD_FRAME) == {"type": "hello", "session": "s", "k": 2}
    assert decode_frame(GOOD_FRAME.decode("utf-8")) == decode_frame(GOOD_FRAME)


@pytest.mark.parametrize(
    "line",
    [
        b"",
        b"\n",
        b"{",
        b'{"type": "hello"',
        b"not json at all",
        b"[1, 2, 3]",
        b'"just a string"',
        b"42",
        b"null",
        b'{"no_type": true}',
        b"\xff\xfe garbage bytes",
        b'{"type": \xff}',
        GOOD_FRAME[: len(GOOD_FRAME) // 2],
    ],
    ids=[
        "empty", "newline", "brace", "unterminated", "prose", "array",
        "string", "number", "null", "typeless", "invalid-utf8",
        "utf8-inside-json", "truncated-half",
    ],
)
def test_decode_frame_rejects_malformed_lines_typed(line):
    with pytest.raises(ServiceError):
        decode_frame(line)


def test_decode_frame_survives_random_truncation_and_corruption():
    rng = random.Random(TEST_SEED)
    for _ in range(300):
        raw = bytearray(GOOD_FRAME)
        for _ in range(rng.randint(1, 3)):
            raw[rng.randrange(len(raw))] = rng.randrange(256)
        cut = rng.randint(0, len(raw))
        for candidate in (bytes(raw), bytes(raw[:cut])):
            try:
                frame = decode_frame(candidate)
            except ServiceError:
                continue  # typed rejection is the expected common case
            assert isinstance(frame, dict) and "type" in frame


def test_error_frame_round_trips_code_and_retryable():
    frame = error_frame("boom", code="overloaded", retryable=True, session="s")
    exc = error_to_exception(decode_frame(encode_frame(frame)))
    assert exc.code == "overloaded" and exc.retryable
    vague = error_to_exception({"type": "error"})
    assert isinstance(vague, ServiceError) and not vague.retryable


# ----------------------------------------------------------------------
# JsonlDecoder
# ----------------------------------------------------------------------
def trace_bytes(num_ops: int, *, frames: bool = False) -> bytes:
    ops = practical_history(random.Random(TEST_SEED), num_ops).operations
    lines = [json.dumps(operation_to_dict(op)) for op in ops]
    if frames:
        lines.insert(0, json.dumps({"type": "hello", "session": "s"}))
        lines.append(json.dumps({"type": "end"}))
    return ("\n".join(lines) + "\n").encode("utf-8")


def feed_all(decoder: JsonlDecoder, data: bytes, rng: random.Random):
    """Feed ``data`` in random-sized chunks, collecting everything decoded."""
    out = []
    view = memoryview(data)
    while view:
        take = rng.randint(1, min(len(view), 37))
        out.extend(decoder.feed(bytes(view[:take])))
        view = view[take:]
    out.extend(decoder.flush())
    return out


def test_decoder_is_chunking_invariant():
    data = trace_bytes(120)
    whole = JsonlDecoder().feed(data)
    for trial in range(10):
        rng = random.Random(TEST_SEED + trial)
        chunked = feed_all(JsonlDecoder(), data, rng)
        assert [op.key for op in chunked] == [op.key for op in whole]
        assert [op.start for op in chunked] == [op.start for op in whole]


def test_decoder_handles_multibyte_utf8_split_across_chunks():
    record = json.dumps({"op_type": "write", "key": "r\u00e9\u00fc", "value": "\u221e",
                         "start": 0.0, "finish": 1.0}).encode("utf-8")
    data = record + b"\n"
    for cut in range(1, len(data)):
        decoder = JsonlDecoder()
        ops = decoder.feed(data[:cut]) + decoder.feed(data[cut:]) + decoder.flush()
        assert len(ops) == 1 and ops[0].key == "r\u00e9\u00fc"


def test_decoder_mixed_mode_interleaves_control_frames():
    data = trace_bytes(40, frames=True)
    items = feed_all(JsonlDecoder(mixed=True), data, random.Random(TEST_SEED))
    assert isinstance(items[0], dict) and items[0]["type"] == "hello"
    assert isinstance(items[-1], dict) and items[-1]["type"] == "end"
    assert len(items) == 42
    # Without mixed mode the same frames are malformed operation records.
    with pytest.raises(TraceFormatError):
        JsonlDecoder().feed(data)


def test_decoder_fuzz_raises_only_typed_errors():
    """Random corruption of a valid stream: TraceFormatError or success."""
    data = trace_bytes(60, frames=True)
    rng = random.Random(TEST_SEED)
    for _ in range(200):
        raw = bytearray(data)
        for _ in range(rng.randint(1, 8)):
            raw[rng.randrange(len(raw))] = rng.randrange(256)
        decoder = JsonlDecoder(mixed=True, source="fuzz")
        try:
            feed_all(decoder, bytes(raw), rng)
        except TraceFormatError as exc:
            assert "fuzz" in str(exc)  # tagged with the stream source
        # No other exception type may escape: UnicodeDecodeError, KeyError,
        # and ValueError from deep inside record parsing are all bugs.


def test_decoder_truncation_fuzz():
    data = trace_bytes(30)
    rng = random.Random(TEST_SEED)
    for _ in range(100):
        cut = rng.randint(0, len(data))
        decoder = JsonlDecoder()
        try:
            ops = feed_all(decoder, data[:cut], rng)
        except TraceFormatError:
            continue
        assert all(op.finish >= op.start for op in ops)


def test_decoder_invalid_utf8_is_typed():
    decoder = JsonlDecoder(source="wire")
    with pytest.raises(TraceFormatError, match="wire"):
        decoder.feed(b"\xff\xff\xff")
    # A truncated multi-byte sequence at EOF is typed too, not a crash.
    decoder = JsonlDecoder(source="wire")
    decoder.feed("\u00e9".encode("utf-8")[:1])
    with pytest.raises(TraceFormatError, match="wire"):
        decoder.flush()


def test_decoder_pending_bytes_counts_encoded_size():
    decoder = JsonlDecoder()
    decoder.feed("ßß")  # no newline: buffered; 2 chars, 4 bytes
    assert decoder.pending and decoder.pending_bytes == 4
    # The buffered text is not valid JSON, so draining it raises — but the
    # buffer must still reset either way.
    with pytest.raises(TraceFormatError):
        decoder.feed("\n")
    assert not decoder.pending


# ----------------------------------------------------------------------
# Server under hostile bytes
# ----------------------------------------------------------------------
async def send_raw(address: str, payload: bytes, *, read_reply: bool = True):
    """Open a raw connection, write bytes, return (reply_line, closed_clean)."""
    host, port = address.split(":")[1], int(address.rsplit(":", 1)[1])
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        writer.write_eof()
        reply = b""
        if read_reply:
            try:
                reply = await asyncio.wait_for(reader.readline(), 5.0)
            except (asyncio.TimeoutError, ConnectionError):
                reply = b""
        return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


HOSTILE_FIRST_FRAMES = [
    b"\xff\xfe\x00\x01 binary garbage\n",
    b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
    b"not json\n",
    b'{"type": "feed"}\n',  # valid JSON, wrong opening frame
    b'{"no_type": 1}\n',
    b"[]\n",
]


def test_server_answers_hostile_first_frames_typed_and_keeps_serving():
    ops = practical_history(random.Random(TEST_SEED), 40).operations

    async def scenario():
        server = AuditServer(port=0)
        await server.start()
        try:
            address = server.addresses[0]
            replies = []
            for payload in HOSTILE_FIRST_FRAMES:
                replies.append(await send_raw(address, payload))
            # The server survived every one of them: a real session works.
            client = await AuditClient.connect(address, session="after", k=2)
            await client.feed_ops(ops)
            report = await client.finish()
            return replies, report
        finally:
            await server.stop()

    replies, report = asyncio.run(scenario())
    assert report.ops == 40
    for payload, reply in zip(HOSTILE_FIRST_FRAMES, replies):
        if not reply:
            continue  # a clean close is acceptable for undecodable openings
        frame = json.loads(reply)
        assert frame["type"] == "error", payload


def test_server_rejects_oversized_first_line_without_dying():
    async def scenario():
        server = AuditServer(port=0)
        await server.start()
        try:
            address = server.addresses[0]
            blob = b'{"type": "hello", "pad": "' + b"x" * (MAX_FRAME_BYTES + 64)
            await send_raw(address, blob, read_reply=False)
            client = await AuditClient.connect(address, session="ok", k=2)
            await client.close()
            return True
        finally:
            await server.stop()

    assert asyncio.run(scenario())


def test_mid_stream_garbage_fails_one_session_not_its_siblings():
    ops = practical_history(random.Random(TEST_SEED), 80).operations

    async def scenario():
        server = AuditServer(port=0)
        await server.start()
        try:
            address = server.addresses[0]
            victim = await AuditClient.connect(address, session="victim", k=2)
            healthy = await AuditClient.connect(address, session="healthy", k=2)
            await victim.feed_ops(ops[:20])
            await healthy.feed_ops(ops[:40])
            # Inject raw garbage into the victim's open stream.
            victim._writer.write(b"\xff\xff not a frame \xff\n")
            await victim._writer.drain()
            with pytest.raises(ReproError):
                await victim.finish()
            await healthy.feed_ops(ops[40:])
            report = await healthy.finish()
            return report
        finally:
            await server.stop()

    report = asyncio.run(scenario())
    assert report.ops == 80
    assert report.session_id == "healthy"


def test_random_garbage_connections_never_wedge_the_server():
    rng = random.Random(TEST_SEED)

    async def scenario():
        server = AuditServer(port=0)
        await server.start()
        try:
            address = server.addresses[0]
            for _ in range(20):
                blob = bytes(rng.randrange(256) for _ in range(rng.randint(1, 512)))
                if rng.random() < 0.5:
                    blob += b"\n"
                await send_raw(address, blob)
            client = await AuditClient.connect(address, session="still-up", k=2)
            await client.close()
            return True
        finally:
            await server.stop()

    assert asyncio.run(scenario())
