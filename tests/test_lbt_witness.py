"""Experiment E1: LBT's write-slot / read-container witness structure (Figure 1).

Figure 1 illustrates how LBT places operations into write slots and read
containers, the concatenation of which (in time order) is the 2-atomic total
order LBT outputs.  These tests verify the structural properties of that
witness: each write is followed by the reads placed in its container, every
read appears after its dictating write, and every read is separated from its
dictating write by at most one other write.
"""

import random

import pytest

from repro.algorithms.lbt import verify_2atomic, verify_2atomic_reference
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.preprocess import has_anomalies, normalize
from repro.workloads.adversarial import concurrent_batch_history
from repro.workloads.synthetic import exactly_k_atomic_history, practical_history


def witness_for(history):
    result = verify_2atomic(history)
    assert result, "witness tests require a 2-atomic history"
    return result.require_witness()


def separation_of_read(history, witness, r):
    """Number of writes strictly between a read and its dictating write."""
    dictating = history.dictating_write(r)
    positions = {op: i for i, op in enumerate(witness)}
    between = [
        op
        for op in witness[positions[dictating] + 1 : positions[r]]
        if op.is_write
    ]
    return len(between)


class TestWitnessStructure:
    def test_every_read_follows_its_dictating_write(self):
        h = exactly_k_atomic_history(2, 8, reads_per_write=2)
        witness = witness_for(h)
        positions = {op: i for i, op in enumerate(witness)}
        for r in h.reads:
            assert positions[h.dictating_write(r)] < positions[r]

    def test_separation_at_most_one_write(self):
        h = exactly_k_atomic_history(2, 8, reads_per_write=2)
        witness = witness_for(h)
        for r in h.reads:
            assert separation_of_read(h, witness, r) <= 1

    def test_witness_respects_real_time_order(self):
        h = concurrent_batch_history(3, 4)
        witness = witness_for(h)
        assert h.is_valid_total_order(witness)

    def test_witness_is_permutation_of_history(self):
        h = concurrent_batch_history(2, 3)
        witness = witness_for(h)
        assert sorted(op.op_id for op in witness) == sorted(
            op.op_id for op in h.operations
        )

    def test_fresh_reads_have_zero_separation_when_serial(self):
        # In a serial fresh-read history there is only one valid order, so
        # every read must sit in its own dictating write's container.
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 2.0, 3.0),
                write("b", 4.0, 5.0),
                read("b", 6.0, 7.0),
            ]
        )
        witness = witness_for(h)
        for r in h.reads:
            assert separation_of_read(h, witness, r) == 0

    def test_stale_read_has_exactly_one_separating_write(self, stale_by_one_history):
        witness = witness_for(stale_by_one_history)
        (r,) = stale_by_one_history.reads
        assert separation_of_read(stale_by_one_history, witness, r) == 1


class TestWitnessOnGeneratedHistories:
    @pytest.mark.parametrize("seed", range(6))
    def test_practical_histories_yield_checkable_witnesses(self, seed):
        rng = random.Random(seed)
        h = practical_history(rng, 120, staleness_probability=0.05, max_staleness=1)
        if has_anomalies(h):
            pytest.skip("generator produced an anomalous history")
        h = normalize(h)
        result = verify_2atomic(h)
        if result:
            assert result.check_witness(h)
            for r in h.reads:
                assert separation_of_read(h, result.require_witness(), r) <= 1

    @pytest.mark.parametrize("batches,batch_size", [(2, 2), (3, 5), (5, 3)])
    def test_batch_histories_yield_checkable_witnesses(self, batches, batch_size):
        h = concurrent_batch_history(batches, batch_size)
        result = verify_2atomic(h)
        assert result
        assert result.check_witness(h)

    def test_reference_and_optimized_witnesses_both_check(self):
        h = exactly_k_atomic_history(2, 6, reads_per_write=1)
        for verifier in (verify_2atomic, verify_2atomic_reference):
            result = verifier(h)
            assert result
            assert result.check_witness(h)
