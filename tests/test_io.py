"""Unit tests for trace serialisation (JSON Lines and CSV)."""

import json

import pytest

from repro.core.errors import TraceFormatError
from repro.core.history import History, MultiHistory
from repro.core.operation import OpType, read, write
from repro.core.builder import TraceBuilder
from repro.io.formats import (
    dump_csv,
    dump_jsonl,
    iter_jsonl,
    load_csv,
    load_jsonl,
    load_trace,
    operation_from_dict,
    operation_to_dict,
    stream_trace,
)
from repro.workloads.synthetic import exactly_k_atomic_history


def sample_trace():
    ops = []
    ops.extend(exactly_k_atomic_history(2, 4, key="k1").operations)
    ops.append(write("w-extra", 0.0, 1.0, key="k2", client="c9", weight=3))
    ops.append(read("w-extra", 2.0, 3.0, key="k2", client="c4"))
    return MultiHistory(ops)


class TestOperationDicts:
    def test_round_trip_write(self):
        op = write("v", 1.0, 2.0, key="k", client="c", weight=4)
        back = operation_from_dict(operation_to_dict(op))
        assert back.op_type is OpType.WRITE
        assert back.value == "v"
        assert back.interval == (1.0, 2.0)
        assert back.key == "k" and back.client == "c"
        assert back.weight == 4

    def test_round_trip_read(self):
        op = read("v", 1.0, 2.0, key="k")
        back = operation_from_dict(operation_to_dict(op))
        assert back.is_read and back.weight == 1

    def test_reads_do_not_serialise_weight(self):
        assert "weight" not in operation_to_dict(read("v", 1.0, 2.0))

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceFormatError):
            operation_from_dict({"op_type": "write", "value": "v", "start": "x", "finish": 2})
        with pytest.raises(TraceFormatError):
            operation_from_dict({"value": "v", "start": 0.0, "finish": 1.0})


class TestJsonl:
    def test_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        count = dump_jsonl(trace, path)
        assert count == trace.total_operations()
        back = load_jsonl(path)
        assert set(back.keys()) == set(trace.keys())
        assert back.total_operations() == trace.total_operations()

    def test_round_trip_preserves_values_and_times(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        back = load_jsonl(path)
        original = sorted(
            (op.op_type.value, str(op.value), op.start, op.finish)
            for key in trace.keys()
            for op in trace[key]
        )
        loaded = sorted(
            (op.op_type.value, str(op.value), op.start, op.finish)
            for key in back.keys()
            for op in back[key]
        )
        assert original == loaded

    def test_single_history_accepted(self, tmp_path):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        path = tmp_path / "single.jsonl"
        assert dump_jsonl(h, path) == 2
        assert load_jsonl(path).total_operations() == 2

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record = json.dumps(operation_to_dict(write("a", 0.0, 1.0, key="k")))
        path.write_text(record + "\n\n" + "\n")
        assert load_jsonl(path).total_operations() == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op_type": "write"\n')
        with pytest.raises(TraceFormatError):
            load_jsonl(path)

    def test_weights_survive_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        back = load_jsonl(path)
        weights = {w.value: w.weight for w in back["k2"].writes}
        assert weights["w-extra"] == 3


class TestCsv:
    def test_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        count = dump_csv(trace, path)
        assert count == trace.total_operations()
        back = load_csv(path)
        assert back.total_operations() == trace.total_operations()
        assert set(back.keys()) == set(trace.keys())

    def test_missing_optional_fields_default(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "op_type,key,value,start,finish,client,weight\n"
            "write,k,v,0.0,1.0,,\n"
            "read,k,v,2.0,3.0,,\n"
        )
        back = load_csv(path)
        h = back["k"]
        assert h.writes[0].weight == 1
        assert h.writes[0].client is None

    def test_malformed_row_reports_location(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "op_type,key,value,start,finish,client,weight\n"
            "write,k,v,not-a-number,1.0,,\n"
        )
        with pytest.raises(TraceFormatError):
            load_csv(path)


class TestStreaming:
    def test_iter_jsonl_streams_operations_lazily(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        stream = iter_jsonl(path)
        first = next(stream)
        assert first.key in set(trace.keys())
        rest = list(stream)
        assert 1 + len(rest) == trace.total_operations()

    def test_builder_fed_from_stream_matches_batch_load(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        streamed = TraceBuilder(iter_jsonl(path)).build()
        batch = load_jsonl(path)
        assert set(streamed.keys()) == set(batch.keys())
        for key in batch.keys():
            assert len(streamed[key]) == len(batch[key])

    def test_stream_trace_dispatches_on_extension(self, tmp_path):
        trace = sample_trace()
        jsonl, csvp = tmp_path / "t.jsonl", tmp_path / "t.csv"
        dump_jsonl(trace, jsonl)
        dump_csv(trace, csvp)
        assert len(list(stream_trace(jsonl))) == trace.total_operations()
        assert len(list(stream_trace(csvp))) == trace.total_operations()

    def test_load_trace_round_trips_both_formats(self, tmp_path):
        trace = sample_trace()
        for name in ("t.jsonl", "t.csv"):
            path = tmp_path / name
            (dump_csv if name.endswith(".csv") else dump_jsonl)(trace, path)
            back = load_trace(path)
            assert back.total_operations() == trace.total_operations()
            assert set(back.keys()) == set(trace.keys())

    def test_iter_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op_type": "write"\n')
        with pytest.raises(TraceFormatError):
            list(iter_jsonl(path))


class TestLiveStreaming:
    def test_iter_jsonl_handle_reads_any_text_stream(self, tmp_path):
        import io as iomod

        from repro.io.formats import iter_jsonl_handle

        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        handle = iomod.StringIO(path.read_text())
        ops = list(iter_jsonl_handle(handle, source="<test>"))
        assert len(ops) == trace.total_operations()

    def test_iter_jsonl_handle_error_names_source(self):
        import io as iomod

        from repro.io.formats import iter_jsonl_handle

        with pytest.raises(TraceFormatError, match="<bad-pipe>:1"):
            list(iter_jsonl_handle(iomod.StringIO("{broken\n"), source="<bad-pipe>"))

    def test_follow_jsonl_reads_appended_operations(self, tmp_path):
        import threading
        import time

        from repro.io.formats import follow_jsonl

        trace = sample_trace()
        records = [json.dumps(operation_to_dict(op)) for key in trace.keys()
                   for op in trace[key].operations]
        path = tmp_path / "grow.jsonl"
        path.write_text(records[0] + "\n")

        def appender():
            with open(path, "a", encoding="utf-8") as fh:
                for record in records[1:]:
                    time.sleep(0.01)
                    fh.write(record + "\n")
                    fh.flush()

        thread = threading.Thread(target=appender)
        thread.start()
        ops = list(
            follow_jsonl(path, poll_interval_s=0.01, idle_timeout_s=0.5)
        )
        thread.join()
        assert len(ops) == len(records)

    def test_follow_jsonl_from_end_skips_existing(self, tmp_path):
        from repro.io.formats import follow_jsonl

        trace = sample_trace()
        path = tmp_path / "static.jsonl"
        dump_jsonl(trace, path)
        ops = list(
            follow_jsonl(
                path, poll_interval_s=0.01, idle_timeout_s=0.05, from_start=False
            )
        )
        assert ops == []

    def test_follow_jsonl_yields_final_line_without_newline(self, tmp_path):
        from repro.io.formats import follow_jsonl

        trace = sample_trace()
        records = [json.dumps(operation_to_dict(op)) for key in trace.keys()
                   for op in trace[key].operations]
        path = tmp_path / "truncated.jsonl"
        # Writer died mid-append: the last record has no trailing newline.
        path.write_text("\n".join(records))
        ops = list(
            follow_jsonl(path, poll_interval_s=0.01, idle_timeout_s=0.05)
        )
        assert len(ops) == len(records)

    def test_follow_jsonl_rejects_bad_poll_interval(self, tmp_path):
        from repro.io.formats import follow_jsonl

        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            next(follow_jsonl(path, poll_interval_s=0.0))
