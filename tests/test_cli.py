"""Unit tests for the command-line interface."""

import io

import pytest

import repro
from repro.cli import build_parser, main
from repro.core.history import MultiHistory
from repro.io.formats import dump_csv, dump_jsonl
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


@pytest.fixture
def trace_path(tmp_path):
    ops = []
    ops.extend(serial_history(4, 1, key="fresh").operations)
    ops.extend(exactly_k_atomic_history(2, 4, key="lagging").operations)
    path = tmp_path / "trace.jsonl"
    dump_jsonl(MultiHistory(ops), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify", "t.jsonl"])
        assert args.k == 2 and args.algorithm == "auto"

    def test_simulate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])


class TestVerifyCommand:
    def test_verify_k2_passes_both_registers(self, trace_path):
        out = io.StringIO()
        status = main(["verify", str(trace_path), "--k", "2"], out=out)
        assert status == 0
        text = out.getvalue()
        assert "2/2 registers are 2-atomic" in text

    def test_verify_k1_reports_failure(self, trace_path):
        out = io.StringIO()
        status = main(["verify", str(trace_path), "--k", "1"], out=out)
        assert status == 0  # non-strict mode always exits 0
        assert "1/2 registers are 1-atomic" in out.getvalue()

    def test_strict_mode_exit_status(self, trace_path):
        assert main(["verify", str(trace_path), "--k", "1", "--strict"], out=io.StringIO()) == 1
        assert main(["verify", str(trace_path), "--k", "2", "--strict"], out=io.StringIO()) == 0

    def test_explicit_algorithm(self, trace_path):
        out = io.StringIO()
        main(["verify", str(trace_path), "--k", "2", "--algorithm", "lbt"], out=out)
        assert "LBT" in out.getvalue()

    def test_csv_traces_supported(self, tmp_path):
        ops = serial_history(3, 1, key="only").operations
        path = tmp_path / "trace.csv"
        dump_csv(MultiHistory(ops), path)
        out = io.StringIO()
        assert main(["verify", str(path), "--k", "1"], out=out) == 0
        assert "1/1 registers" in out.getvalue()


class TestAuditCommand:
    def test_audit_renders_report(self, trace_path):
        out = io.StringIO()
        status = main(["audit", str(trace_path)], out=out)
        assert status == 0
        text = out.getvalue()
        assert "staleness spectrum" in text
        assert "fresh" in text and "lagging" in text


class TestSimulateCommand:
    def test_simulate_writes_trace_and_verifies(self, tmp_path):
        out_path = tmp_path / "sim.jsonl"
        out = io.StringIO()
        status = main(
            [
                "simulate",
                "--out",
                str(out_path),
                "--replicas",
                "3",
                "--read-quorum",
                "2",
                "--write-quorum",
                "2",
                "--clients",
                "4",
                "--ops-per-client",
                "10",
                "--keys",
                "2",
                "--seed",
                "5",
            ],
            out=out,
        )
        assert status == 0
        assert out_path.exists()
        assert "wrote" in out.getvalue()
        # The recorded trace is immediately verifiable by the verify command.
        verify_out = io.StringIO()
        assert main(["verify", str(out_path), "--k", "2"], out=verify_out) == 0


class TestEngineFlags:
    def test_engine_defaults(self):
        args = build_parser().parse_args(["verify", "t.jsonl"])
        assert args.engine == "serial" and args.jobs is None
        assert args.partitioner == "size-balanced"

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "t.jsonl", "--engine", "gpu"])

    @pytest.mark.parametrize("engine", ["serial", "threads", "processes"])
    def test_engines_agree_on_verdicts(self, trace_path, engine):
        out = io.StringIO()
        status = main(
            ["verify", str(trace_path), "--k", "2", "--engine", engine, "--jobs", "2"],
            out=out,
        )
        assert status == 0
        assert "2/2 registers are 2-atomic" in out.getvalue()

    def test_parallel_run_prints_engine_summary(self, trace_path):
        out = io.StringIO()
        main(
            ["verify", str(trace_path), "--k", "2", "--engine", "threads", "--jobs", "2"],
            out=out,
        )
        assert "shards via threads" in out.getvalue()

    def test_partitioner_flag_accepted(self, trace_path):
        out = io.StringIO()
        status = main(
            ["verify", str(trace_path), "--k", "2", "--partitioner", "hash"], out=out
        )
        assert status == 0

    def test_non_positive_jobs_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "t.jsonl", "--jobs", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "t.jsonl", "--jobs", "-2"])


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestOnlineVerify:
    def test_online_flag_defaults(self):
        args = build_parser().parse_args(["verify", "t.jsonl", "--online"])
        assert args.online and args.window == 256
        assert args.window_mode == "count" and args.stream_mode == "rolling"

    def test_online_verdicts_match_offline(self, trace_path):
        offline, online = io.StringIO(), io.StringIO()
        assert main(["verify", str(trace_path), "--k", "2"], out=offline) == 0
        assert (
            main(
                ["verify", str(trace_path), "--k", "2", "--online", "--window", "5"],
                out=online,
            )
            == 0
        )
        assert "2/2 registers are 2-atomic" in online.getvalue()
        assert "window timeline:" in online.getvalue()

    def test_online_strict_exit_status(self, trace_path):
        status = main(
            ["verify", str(trace_path), "--k", "1", "--online", "--strict"],
            out=io.StringIO(),
        )
        assert status == 1

    def test_online_windowed_mode(self, trace_path):
        out = io.StringIO()
        status = main(
            [
                "verify",
                str(trace_path),
                "--k",
                "2",
                "--online",
                "--window",
                "6",
                "--overlap",
                "2",
                "--stream-mode",
                "windowed",
            ],
            out=out,
        )
        assert status == 0
        assert "windowed" in out.getvalue()

    def test_online_rolling_rejects_process_engine(self, trace_path):
        out = io.StringIO()
        status = main(
            ["verify", str(trace_path), "--online", "--engine", "processes"],
            out=out,
        )
        assert status == 2
        assert "shared-memory" in out.getvalue()


class TestServeAndRemote:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port is None and args.queue_size == 1024

    def test_serve_checkpoint_every_without_dir_is_a_clean_error(self):
        out = io.StringIO()
        status = main(["serve", "--checkpoint-every", "5"], out=out)
        assert status == 2
        assert "checkpoint_dir" in out.getvalue()

    def test_remote_flag_parses(self):
        args = build_parser().parse_args(
            ["verify", "t.jsonl", "--remote", "unix:/tmp/a.sock", "--session", "s1"]
        )
        assert args.remote == "unix:/tmp/a.sock" and args.session == "s1"

    def test_remote_rejects_local_execution_flags(self, trace_path):
        out = io.StringIO()
        status = main(
            [
                "verify",
                str(trace_path),
                "--remote",
                "127.0.0.1:1",
                "--online",
                "--engine",
                "threads",
            ],
            out=out,
        )
        assert status == 2
        assert "--online" in out.getvalue() and "--engine" in out.getvalue()

    def test_remote_unreachable_reports_error(self, trace_path):
        out = io.StringIO()
        status = main(
            ["verify", str(trace_path), "--remote", "127.0.0.1:1"], out=out
        )
        assert status == 2
        assert "cannot audit via" in out.getvalue()

    def test_serve_then_remote_verify_round_trip(self, trace_path):
        import re
        import threading
        import time

        serve_out = io.StringIO()
        rc = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main(["serve", "--port", "0", "--max-sessions", "1"], out=serve_out)
            )
        )
        thread.start()
        port = None
        for _ in range(200):
            found = re.search(r"listening on 127\.0\.0\.1:(\d+)", serve_out.getvalue())
            if found:
                port = int(found.group(1))
                break
            time.sleep(0.02)
        assert port is not None, serve_out.getvalue()

        out = io.StringIO()
        status = main(
            [
                "verify",
                str(trace_path),
                "--k",
                "2",
                "--remote",
                f"127.0.0.1:{port}",
                "--window",
                "8",
            ],
            out=out,
        )
        thread.join(timeout=15)
        assert not thread.is_alive() and rc == [0]
        assert status == 0
        text = out.getvalue()
        assert "2/2 registers are 2-atomic" in text
        assert "audit service" in serve_out.getvalue()  # final service report


class TestWatchCommand:
    def test_watch_defaults_to_stdin(self):
        args = build_parser().parse_args(["watch"])
        assert args.trace == "-" and args.k == 2 and args.window == 64

    def test_watch_file_emits_intermediate_verdicts(self, trace_path):
        out = io.StringIO()
        status = main(["watch", str(trace_path), "--k", "2", "--window", "5"], out=out)
        assert status == 0
        text = out.getvalue()
        # At least two window blocks closed before the end-of-stream summary,
        # i.e. verdicts existed mid-stream.
        assert text.count("[window ") >= 2
        assert "provisional" in text
        assert "2-atomic: YES" in text

    def test_watch_stdin_stream(self, trace_path, monkeypatch):
        monkeypatch.setattr("sys.stdin", open(trace_path, "r", encoding="utf-8"))
        out = io.StringIO()
        status = main(["watch", "-", "--k", "1", "--window", "4", "--strict"], out=out)
        assert status == 1  # the 'lagging' register is not 1-atomic
        assert "[window " in out.getvalue()

    def test_watch_follow_consumes_growing_file(self, tmp_path, trace_path):
        # Non-growing file with an idle timeout: the tail path terminates and
        # still verifies everything that was appended.
        out = io.StringIO()
        status = main(
            [
                "watch",
                str(trace_path),
                "--follow",
                "--idle-timeout",
                "0.2",
                "--poll-interval",
                "0.05",
                "--window",
                "5",
            ],
            out=out,
        )
        assert status == 0
        assert "[window " in out.getvalue()
