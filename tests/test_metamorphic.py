"""Metamorphic properties: verdicts are invariant under trace symmetries.

k-atomicity depends only on the *relative order* of operation intervals and
the read→dictating-write pairing (Section II), so a verdict must survive:

* a uniform time shift of every timestamp,
* a uniform positive time scale,
* renaming every client,
* injectively renaming every written/read value,
* permuting register names in a multi-register trace.

Each invariance is checked through *four* redundant verification paths —
object-model vs columnar kernels, and batch vs incremental (online)
checkers — so these tests simultaneously pin the symmetry property and
cross-validate the independent implementations against each other.

The adaptive tier ladder rides the same symmetries: its escalation
*decisions* are computed from transform-invariant trigger features
(anomaly score, value lag, overlap density), so the tiered route — not
just the verdict — must be identical before and after every transform.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.algorithms.online import checker_for
from repro.core.api import verify, verify_trace
from repro.core.builder import TraceBuilder
from repro.core.history import History
from repro.core.operation import read, write
from repro.simulation.clock import SkewedClocks
from repro.workloads.adversarial import (
    concurrent_batch_history,
    non_2atomic_batch_history,
)
from repro.workloads.chaos import (
    apply_clock_skew,
    hot_key_trace,
    indeterminate_storm_trace,
)
from repro.workloads.synthetic import synthetic_trace

from tests.conftest import TEST_SEED, make_random_history


# ----------------------------------------------------------------------
# Transformations
# ----------------------------------------------------------------------
def time_shift(history: History, delta: float) -> History:
    return History(
        [op.with_times(op.start + delta, op.finish + delta) for op in history.operations],
        key=history.key,
    )


def time_scale(history: History, factor: float) -> History:
    assert factor > 0
    return History(
        [op.with_times(op.start * factor, op.finish * factor) for op in history.operations],
        key=history.key,
    )


def rename_clients(history: History) -> History:
    return History(
        [replace(op, client=f"client/{op.client!r}") for op in history.operations],
        key=history.key,
    )


def rename_values(history: History) -> History:
    # Injective by construction: distinct values map to distinct tuples.
    return History(
        [replace(op, value=("renamed", op.value)) for op in history.operations],
        key=history.key,
    )


TRANSFORMS = [
    pytest.param(lambda h: time_shift(h, 1234.5), id="time-shift"),
    pytest.param(lambda h: time_shift(h, -7.25), id="time-shift-negative"),
    pytest.param(lambda h: time_scale(h, 3.0), id="time-scale-up"),
    pytest.param(lambda h: time_scale(h, 0.125), id="time-scale-down"),
    pytest.param(rename_clients, id="client-rename"),
    pytest.param(rename_values, id="value-rename"),
]


def sample_histories(rng: random.Random):
    """A spread of small histories: random, adversarial, and known-verdict."""
    histories = [
        make_random_history(rng, 5, 8),
        make_random_history(rng, 8, 14, span=6.0),
        make_random_history(rng, 3, 3, max_duration=5.0),
        concurrent_batch_history(3, 4),
        non_2atomic_batch_history(2, 3),
        History(
            [  # serial, fresh write/read pairs: 1-atomic
                op
                for i in range(4)
                for op in (
                    write(i, 4.0 * i, 4.0 * i + 1.0),
                    read(i, 4.0 * i + 2.0, 4.0 * i + 3.0),
                )
            ]
        ),
        # The chaos layer's hostile single-register generators obey the
        # same symmetries as every other history.
        History(hot_key_trace(rng, num_keys=1, num_operations=12)),
        History(
            indeterminate_storm_trace(rng, num_keys=1, ops_per_key=8, fraction=0.3)
        ),
    ]
    return histories


def verdicts_all_paths(history: History, k: int):
    """The verdict of every redundant verification path; asserts they agree.

    Returns the (agreed) boolean verdict after checking object vs columnar
    kernels and batch vs online checkers against each other.
    """
    batch_obj = bool(verify(history, k, columnar=False))
    batch_col = bool(verify(history, k, columnar=True))
    assert batch_obj == batch_col, f"object/columnar kernels disagree at k={k}"

    checker = checker_for(k)
    for op in sorted(history.operations, key=lambda o: (o.finish, o.op_id)):
        checker.feed(op)
    online = bool(checker.finish())
    assert online == batch_obj, f"online checker disagrees with batch at k={k}"
    return batch_obj


# ----------------------------------------------------------------------
# Invariance under the single-register symmetries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transform", TRANSFORMS)
@pytest.mark.parametrize("k", [1, 2])
def test_verdict_invariant_under_transform(transform, k):
    rng = random.Random(TEST_SEED)
    for case, history in enumerate(sample_histories(rng)):
        before = verdicts_all_paths(history, k)
        after = verdicts_all_paths(transform(history), k)
        assert before == after, (
            f"case {case}: verdict changed under {transform} at k={k} "
            f"(seed {TEST_SEED:#x})"
        )


@pytest.mark.parametrize("k", [1, 2])
def test_composed_transforms_preserve_verdict(k):
    """Symmetries compose: shift∘scale∘rename leaves every verdict alone."""
    rng = random.Random(TEST_SEED + 1)
    for case, history in enumerate(sample_histories(rng)):
        transformed = rename_values(
            rename_clients(time_scale(time_shift(history, 50.0), 2.5))
        )
        assert verdicts_all_paths(history, k) == verdicts_all_paths(transformed, k), (
            f"case {case}: composed transform changed the k={k} verdict "
            f"(seed {TEST_SEED:#x})"
        )


def test_sub_resolution_clock_skew_preserves_verdicts():
    """Per-client skew below half the minimal boundary gap changes nothing.

    With constant offsets of half-width ``eps`` and ``4 * eps`` smaller than
    the smallest gap between any two distinct interval boundaries, no pair
    of boundaries can reorder — so the precedence relation, and with it
    every verdict, is untouched.  This is the quantitative floor under the
    ``clock_skew_sensitivity`` experiment: flips only start once clock
    error reaches inter-operation spacing.
    """
    rng = random.Random(TEST_SEED + 7)
    for case, history in enumerate(sample_histories(rng)):
        times = sorted(
            t for op in history.operations for t in (op.start, op.finish)
        )
        if len(set(times)) != len(times):
            # Tied boundaries across clients can legitimately reorder under
            # any nonzero skew; the property only claims sub-gap safety.
            continue
        eps = min(b - a for a, b in zip(times, times[1:])) / 4.0
        model = SkewedClocks(max_skew_ms=eps, drift_ppm=0.0, seed=case)
        skewed = History(apply_clock_skew(list(history.operations), model))
        for k in (1, 2):
            assert verdicts_all_paths(history, k) == verdicts_all_paths(skewed, k), (
                f"case {case}: sub-resolution skew flipped the k={k} verdict "
                f"(seed {TEST_SEED:#x})"
            )


def test_minimal_k_invariant_under_time_symmetries():
    """The *entire* staleness spectrum is order-determined, not just k<=2."""
    from repro.core.api import minimal_k_bound

    rng = random.Random(TEST_SEED + 2)
    for _ in range(10):
        history = make_random_history(rng, rng.randint(2, 6), rng.randint(1, 6))
        bound = minimal_k_bound(history)
        shifted = minimal_k_bound(time_shift(history, 99.0))
        scaled = minimal_k_bound(time_scale(history, 0.5))
        assert (bound.k, bound.exact) == (shifted.k, shifted.exact)
        assert (bound.k, bound.exact) == (scaled.k, scaled.exact)


# ----------------------------------------------------------------------
# Tier-ladder invariance: decisions and verdicts survive the symmetries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transform", TRANSFORMS)
def test_tier_features_invariant_under_transform(transform):
    """The trigger features that gate escalation are symmetry-invariant.

    ``op_rate`` and ``duration`` legitimately change under time scaling —
    they only feed verdict-neutral knob picks (kernel, window size) — so
    the invariance claim covers exactly the fields ``gate_triggers`` reads.
    """
    from repro.engine.tiering import TraceFeatures, get_tier_policy

    policy = get_tier_policy("auto")
    rng = random.Random(TEST_SEED + 5)
    for case, history in enumerate(sample_histories(rng)):
        before = TraceFeatures.from_history(history)
        after = TraceFeatures.from_history(transform(history))
        context = f"case {case} under {transform} (seed {TEST_SEED:#x})"
        assert before.anomaly_score == after.anomaly_score, context
        assert before.max_value_lag == after.max_value_lag, context
        assert before.overlap_density == pytest.approx(
            after.overlap_density
        ), context
        for k in (1, 2, 3):
            assert policy.gate_triggers(before, k) == policy.gate_triggers(
                after, k
            ), f"{context}: escalation decision changed at k={k}"


@pytest.mark.parametrize("transform", TRANSFORMS)
@pytest.mark.parametrize("tier", ["screen", "auto"])
@pytest.mark.parametrize("k", [1, 2])
def test_tiered_verdict_invariant_under_transform(transform, tier, k):
    """The tiered route agrees with the untiered paths on both sides of
    every symmetry — verdicts never depend on which rung answered."""
    from repro.engine.tiering import get_tier_policy

    policy = get_tier_policy(tier)
    rng = random.Random(TEST_SEED + 6)
    for case, history in enumerate(sample_histories(rng)):
        for h in (history, transform(history)):
            expected = verdicts_all_paths(h, k)
            tiered, decision = policy.verify_with_decision(h, k, key="m")
            assert bool(tiered) == expected, (
                f"case {case}: tier={tier} via {decision.tier!r} diverges "
                f"at k={k} under {transform} (seed {TEST_SEED:#x})"
            )


# ----------------------------------------------------------------------
# Register permutation on multi-register traces
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 2])
def test_register_permutation_permutes_verdicts(k):
    rng = random.Random(TEST_SEED + 3)
    trace = synthetic_trace(
        rng, 6, 25, staleness_probability=0.15, max_staleness=1
    )
    keys = sorted(trace.keys(), key=repr)
    permuted_names = list(keys)
    rng.shuffle(permuted_names)
    mapping = dict(zip(keys, permuted_names))

    builder = TraceBuilder(
        replace(op, key=mapping[key])
        for key in keys
        for op in trace[key].operations
    )
    original = verify_trace(trace, k)
    permuted = verify_trace(builder.build(), k)
    assert set(permuted) == set(mapping.values())
    for key in keys:
        assert bool(original[key]) == bool(permuted[mapping[key]]), (
            f"register {key!r} -> {mapping[key]!r} changed its k={k} verdict "
            f"(seed {TEST_SEED:#x})"
        )


@pytest.mark.parametrize("columnar", [False, True], ids=["object", "columnar"])
def test_register_permutation_across_kernels(columnar):
    """Permutation invariance holds on both kernel paths independently."""
    rng = random.Random(TEST_SEED + 4)
    trace = synthetic_trace(rng, 4, 20, staleness_probability=0.1, max_staleness=2)
    keys = sorted(trace.keys(), key=repr)
    rotated = {key: keys[(i + 1) % len(keys)] for i, key in enumerate(keys)}
    builder = TraceBuilder(
        replace(op, key=rotated[key]) for key in keys for op in trace[key].operations
    )
    original = verify_trace(trace, 2, columnar=columnar)
    permuted = verify_trace(builder.build(), 2, columnar=columnar)
    for key in keys:
        assert bool(original[key]) == bool(permuted[rotated[key]])
