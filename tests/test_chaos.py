"""The chaos layer: fault plans, hostile generators, and self-healing parity.

The headline contract: a :class:`ResilientAuditClient` streaming through a
:class:`ChaosProxy` that drops/corrupts/delays/duplicates frames — against a
server whose pool workers are being SIGKILLed and stalled — must deliver the
exact verdict stream (window frames and witnesses included) of a fault-free
run, recovering from every fault without help.  Fault schedules derive from
``TEST_SEED``, so a CI failure replays locally with ``REPRO_TEST_SEED=...``.
"""

from __future__ import annotations

import asyncio
import json
import random
from pathlib import Path

import pytest

from repro.chaos import FAULT_KINDS, FaultClause, FaultPlan, load_plan
from repro.core.errors import (
    RetryableServiceError,
    ServerDraining,
    ServerOverloaded,
    ServiceError,
    SessionIdleTimeout,
    SimulationError,
    WorkerCrashLoopError,
)
from repro.service import (
    AuditClient,
    AuditServer,
    ChaosProxy,
    ResilientAuditClient,
    RetryPolicy,
    WorkerChaos,
)
from repro.simulation.clock import SkewedClocks
from repro.simulation.faults import FaultSchedule
from repro.workloads.chaos import (
    apply_clock_skew,
    dump_chaos_fixtures,
    history_from_plan,
    hot_key_trace,
    indeterminate_storm_trace,
)
from repro.workloads.synthetic import practical_history

from tests.conftest import TEST_SEED
from tests.test_service import result_signature

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def op_signature(op):
    return (op.op_type.value, op.key, op.value, op.start, op.finish, op.client)


def window_signature(frame):
    """A window frame minus the session id (differs between runs by design)."""
    return {k: v for k, v in frame.items() if k != "session"}


# ----------------------------------------------------------------------
# FaultPlan schema
# ----------------------------------------------------------------------
def test_plan_round_trips_through_json(tmp_path):
    plan = (
        FaultPlan(name="mixed", seed=7)
        .add("split_brain", at_ms=100.0, duration_ms=200.0)
        .add("hot_key", num_keys=4, num_operations=64)
        .add("frame_drop", probability=0.25, direction="c2s")
    )
    assert FaultPlan.loads(plan.dumps()) == plan
    path = plan.save(tmp_path / "plan.json")
    assert load_plan(path) == plan
    assert plan.domains() == ("simulation", "workload", "service")
    # Params are stored order-independently: dict input and sorted tuples
    # compare equal, so plans hash/compare structurally.
    a = FaultClause("frame_drop", {"probability": 0.5, "direction": "s2c"})
    b = FaultClause("frame_drop", (("direction", "s2c"), ("probability", 0.5)))
    assert a == b


def test_plan_rejects_unknown_kinds_and_bad_params():
    with pytest.raises(SimulationError):
        FaultClause("frame_scramble")
    with pytest.raises(SimulationError):
        FaultClause("frame_drop", {"probability": object()})
    with pytest.raises(SimulationError):
        FaultPlan.loads("not json {")
    with pytest.raises(SimulationError):
        FaultPlan.from_dict({"clauses": [{"params": {}}]})


def test_clause_streams_are_independent():
    """Appending a clause must not reshuffle earlier clauses' decisions."""
    base = FaultPlan(seed=3).add("frame_drop", probability=0.5)
    extended = base.add("frame_corrupt")
    draws = [base.rng_for(0).random() for _ in range(8)]
    assert [extended.rng_for(0).random() for _ in range(8)] == draws
    assert extended.rng_for(1).random() != pytest.approx(draws[0])
    # Same (seed, index, kind) → same stream on a rebuilt plan.
    rebuilt = FaultPlan.loads(extended.dumps())
    assert [rebuilt.rng_for(0).random() for _ in range(8)] == draws


def test_every_registered_kind_names_a_domain():
    assert set(FAULT_KINDS.values()) == {"simulation", "workload", "service"}


# ----------------------------------------------------------------------
# Workload arm: hostile trace generators
# ----------------------------------------------------------------------
def test_hot_key_trace_is_deterministic_and_skewed():
    ops_a = hot_key_trace(random.Random(TEST_SEED), num_keys=8, num_operations=400)
    ops_b = hot_key_trace(random.Random(TEST_SEED), num_keys=8, num_operations=400)
    assert [op_signature(op) for op in ops_a] == [op_signature(op) for op in ops_b]
    counts = {}
    for op in ops_a:
        counts[op.key] = counts.get(op.key, 0) + 1
    hottest = max(counts.values())
    # Zipf theta=0.99: the hottest register must dominate a uniform share.
    assert hottest > 2 * (len(ops_a) / 8)


def test_indeterminate_storm_extends_writes_past_the_horizon():
    rng = random.Random(TEST_SEED)
    ops = indeterminate_storm_trace(rng, num_keys=2, ops_per_key=80, fraction=0.3)
    horizon = max(op.finish for op in ops)
    stormed = [op for op in ops if op.is_write and op.finish == horizon]
    writes = [op for op in ops if op.is_write]
    assert stormed, "a 0.3 fraction over ~30 writes must hit at least once"
    assert len(stormed) < len(writes)
    for op in stormed:
        assert op.finish > op.start


def test_zero_clock_skew_is_identity():
    history = practical_history(random.Random(TEST_SEED), 60)
    ops = list(history.operations)
    restamped = apply_clock_skew(ops, SkewedClocks(0.0, 0.0, seed=1))
    assert [op_signature(op) for op in restamped] == [op_signature(op) for op in ops]


def test_clock_skew_shifts_clients_coherently():
    history = practical_history(random.Random(TEST_SEED), 60, num_clients=4)
    ops = list(history.operations)
    model = SkewedClocks(max_skew_ms=50.0, drift_ppm=0.0, seed=2)
    restamped = apply_clock_skew(ops, model)
    # Output is re-sorted into skewed start order with fresh op ids, so
    # compare as multisets: every op lands exactly where its own client's
    # clock says, and with 50 ms half-width the order actually changes.
    expected = sorted(
        (model.stamp(op.client, op.start), model.stamp(op.client, op.finish),
         op.key, op.value, op.op_type.value, op.client)
        for op in ops
    )
    actual = sorted(
        (op.start, op.finish, op.key, op.value, op.op_type.value, op.client)
        for op in restamped
    )
    assert actual == expected
    assert [op.start for op in restamped] == sorted(op.start for op in restamped)
    assert {op.client for op in restamped} == {op.client for op in ops}
    assert any(model.params_for(c)[0] != 0.0 for c in {op.client for op in ops})


def test_history_from_plan_is_deterministic_and_composes():
    plan = (
        FaultPlan(name="load", seed=TEST_SEED)
        .add("hot_key", num_keys=4, num_operations=120)
        .add("indeterminate_storm", num_keys=2, ops_per_key=40, fraction=0.2)
        .add("clock_skew", max_skew_ms=20.0)
    )
    ops_a = history_from_plan(plan)
    ops_b = history_from_plan(FaultPlan.loads(plan.dumps()))
    assert [op_signature(op) for op in ops_a] == [op_signature(op) for op in ops_b]
    prefixes = {str(op.key).split("-")[0] for op in ops_a}
    assert prefixes == {"c0", "c1"}  # clause index prefixes never collide
    assert history_from_plan(FaultPlan(seed=1)) == []


def test_fault_schedule_from_plan_pins_and_draws_deterministically():
    plan = (
        FaultPlan(name="sim", seed=TEST_SEED)
        .add("crash", replica="r1", at_ms=50.0, duration_ms=100.0)
        .add("partition")
        .add("split_brain")
    )
    replicas = ["r0", "r1", "r2", "r3"]
    a = FaultSchedule.from_plan(plan, replica_ids=replicas, client_ids=["client-0"])
    b = FaultSchedule.from_plan(plan, replica_ids=replicas, client_ids=["client-0"])
    assert [(e.kind, e.time_ms, e.target) for e in a.events] == [
        (e.kind, e.time_ms, e.target) for e in b.events
    ]
    crash = a.events[0]
    assert (crash.target, crash.time_ms) == (("r1",), 50.0)
    split = [e for e in a.events if "split" in e.kind][0]
    members = {m for group in split.target for m in group}
    assert "client-0" in members  # clients get stranded on one side


def test_chaos_fixture_export_round_trips(tmp_path):
    plan = FaultPlan(seed=TEST_SEED).add("hot_key", num_keys=2, num_operations=60)
    ops = history_from_plan(plan)
    paths = dump_chaos_fixtures(ops, tmp_path, "hostile")
    jepsen = json.loads(paths["jepsen"].read_text())
    assert len(jepsen) >= len(ops)  # invoke/ok event pairs
    lines = paths["porcupine"].read_text().strip().splitlines()
    assert len(lines) == len(ops)
    assert all(json.loads(line) for line in lines)


# ----------------------------------------------------------------------
# Service arm: the headline self-healing parity invariant
# ----------------------------------------------------------------------
def frame_fault_plan(seed: int) -> FaultPlan:
    return (
        FaultPlan(name="wire", seed=seed)
        .add("frame_drop", probability=0.02)
        .add("frame_corrupt", probability=0.01)
        .add("frame_delay", probability=0.05, delay_ms=2)
        .add("frame_duplicate", probability=0.1)
    )


def pool_fault_plan(seed: int) -> FaultPlan:
    return (
        FaultPlan(name="wire+workers", seed=seed)
        .add("frame_drop", probability=0.02)
        .add("frame_delay", probability=0.05, delay_ms=2)
        .add("worker_kill", at_s=0.2)
        .add("worker_slow", at_s=0.1, duration_s=0.3)
    )


async def fault_free_run(ops, *, workers=None):
    server = AuditServer(port=0, workers=workers)
    await server.start()
    try:
        windows = []
        client = await AuditClient.connect(
            server.addresses[0], session="baseline", k=2, window=50,
            witness=True, on_window=windows.append,
        )
        await client.feed_ops(ops)
        report = await client.finish()
        return report, windows
    finally:
        await server.stop()


async def chaotic_run(ops, plan, tmp_path, *, workers=None, worker_chaos=False):
    server = AuditServer(
        port=0, workers=workers, checkpoint_dir=tmp_path / f"ckpt-{plan.seed}"
    )
    await server.start()
    try:
        async with ChaosProxy(server.addresses[0], plan) as proxy:
            chaos_task = None
            if worker_chaos:
                chaos = WorkerChaos(server._pool, plan, horizon_s=1.0)
                chaos_task = asyncio.create_task(chaos.run())
            client = ResilientAuditClient(
                proxy.address, session="chaotic", k=2, window=50,
                witness=True, seed=plan.seed, checkpoint_every=25,
                policy=RetryPolicy(max_attempts=10, io_timeout_s=10.0),
            )
            await client.feed_ops(ops)
            report = await client.finish()
            if chaos_task is not None:
                await chaos_task
            return report, client.windows, proxy.counts, client.retries
    finally:
        await server.stop()


#: Minimised failing plans land here; the CI chaos-smoke job uploads them
#: as artifacts so a red run ships its own reproducer.
PLANS_DIR = Path(__file__).parent / "chaos_plans"


def parity_failure(baseline, ops, plan, tmp_path, *, workers, worker_chaos):
    """Run the chaotic side of the invariant; ``None`` iff parity holds.

    Returns ``(reason, counts)`` — a human-readable divergence description
    (or ``None``) plus the proxy's injected-fault counters.
    """
    base_report, base_windows = baseline
    try:
        report, windows, counts, _retries = asyncio.run(
            chaotic_run(
                ops, plan, tmp_path, workers=workers, worker_chaos=worker_chaos
            )
        )
    except Exception as exc:  # a crash is a failure too — and minimizable
        return f"chaotic run died: {exc!r}", {}
    base_sigs = {k: result_signature(v) for k, v in base_report.results.items()}
    sigs = {k: result_signature(v) for k, v in report.results.items()}
    if sigs != base_sigs:
        diverged = sorted(
            str(k) for k in set(base_sigs) | set(sigs)
            if base_sigs.get(k) != sigs.get(k)
        )
        return f"verdicts diverged for registers {diverged}", counts
    if [window_signature(w) for w in windows] != [
        window_signature(w) for w in base_windows
    ]:
        return (
            f"window streams diverged ({len(windows)} vs "
            f"{len(base_windows)} frames)",
            counts,
        )
    if report.ops != base_report.ops:
        return f"op counts diverged ({report.ops} vs {base_report.ops})", counts
    return None, counts


def minimize_plan(plan, still_fails):
    """Greedy single-clause removal while ``still_fails`` keeps holding."""
    changed = True
    while changed and len(plan.clauses) > 1:
        changed = False
        for index in range(len(plan.clauses)):
            candidate = FaultPlan(
                name=plan.name,
                seed=plan.seed,
                clauses=plan.clauses[:index] + plan.clauses[index + 1:],
            )
            if still_fails(candidate):
                plan = candidate
                changed = True
                break
    return plan


@pytest.mark.parametrize("schedule", [0, 1, 2])
@pytest.mark.parametrize("workers", [0, 2], ids=["in-process", "pool-2"])
def test_chaos_parity_with_self_healing_client(tmp_path, schedule, workers):
    """Randomized fault schedules leave the verdict stream byte-identical.

    Frame faults ride a :class:`ChaosProxy`; the pooled variant additionally
    SIGKILLs one worker and duty-cycle stalls another mid-stream.  The
    self-healing client must reconnect/resume/replay unaided and deliver
    per-register results (witnesses included) plus a window-frame stream
    structurally identical to the fault-free baseline.  On divergence the
    plan is shrunk to a minimal failing clause set and saved under
    ``tests/chaos_plans/`` (uploaded by the CI chaos-smoke job).
    """
    seed = TEST_SEED + schedule
    ops = practical_history(random.Random(seed), 300, num_clients=6).operations
    plan = pool_fault_plan(seed) if workers else frame_fault_plan(seed)
    baseline = asyncio.run(fault_free_run(ops, workers=workers or None))

    failure, counts = parity_failure(
        baseline, ops, plan, tmp_path,
        workers=workers or None, worker_chaos=bool(workers),
    )
    if failure is not None:
        minimized = minimize_plan(
            plan,
            lambda candidate: parity_failure(
                baseline, ops, candidate, tmp_path,
                workers=workers or None, worker_chaos=bool(workers),
            )[0] is not None,
        )
        PLANS_DIR.mkdir(exist_ok=True)
        path = minimized.save(
            PLANS_DIR / f"failing-{minimized.name}-{seed:#x}.json"
        )
        pytest.fail(
            f"chaos parity broken under seed {seed:#x}: {failure}; "
            f"minimized fault plan saved to {path}"
        )
    assert counts, "the schedule must actually inject faults"


def test_resilient_client_survives_resume_refusal():
    """With no checkpoint store, a severed stream falls back to fresh replay."""
    ops = practical_history(random.Random(TEST_SEED), 120).operations
    plan = FaultPlan(seed=TEST_SEED).add(
        "frame_drop", probability=1.0, max_injections=1, direction="c2s"
    )

    async def scenario():
        server = AuditServer(port=0)  # deliberately no checkpoint_dir
        await server.start()
        try:
            async with ChaosProxy(server.addresses[0], plan) as proxy:
                client = ResilientAuditClient(
                    proxy.address, session="norestore", k=2, window=50, witness=True
                )
                await client.feed_ops(ops)
                report = await client.finish()
                return report, client.retries
        finally:
            await server.stop()

    report, retries = asyncio.run(scenario())
    assert retries >= 1
    assert report.ops == len(ops)
    assert all(bool(r) for r in report.results.values())


def test_window_frames_survive_loss_after_covering_checkpoint(tmp_path):
    """A window frame lost in flight is re-delivered from the window log.

    The hole this guards: a window closes, its frame is dropped by the
    network, and a checkpoint then covers the window's operations — replay
    resumes *after* the checkpoint, so without the persisted window log the
    verdict would be gone for good.
    """
    ops = practical_history(random.Random(TEST_SEED), 120).operations

    async def scenario():
        server = AuditServer(port=0, checkpoint_dir=tmp_path)
        await server.start()
        try:
            address = server.addresses[0]
            first_windows = []
            client = await AuditClient.connect(
                address, session="wlog", k=2, window=30,
                on_window=first_windows.append,
            )
            await client.feed_ops(ops[:70])  # closes windows 0 and 1
            await client.checkpoint()  # covers them
            await client.close()  # vanish without finishing

            redelivered = []
            client = await AuditClient.connect(
                address, session="wlog", k=2, window=30, resume=True,
                on_window=redelivered.append,
            )
            assert client.resumed and client.ops_restored == 70
            await client.feed_ops(ops[70:])
            report = await client.finish()
            return first_windows, redelivered, report
        finally:
            await server.stop()

    first_windows, redelivered, report = asyncio.run(scenario())
    assert len(first_windows) == 2
    # The resumed connection re-delivers both logged frames byte-identically,
    # then streams the remaining windows.
    assert redelivered[: len(first_windows)] == first_windows
    assert report.ops == len(ops)


# ----------------------------------------------------------------------
# Typed failure taxonomy
# ----------------------------------------------------------------------
def test_drain_raises_typed_exception_with_resume_token(tmp_path):
    ops = practical_history(random.Random(TEST_SEED), 60).operations

    async def scenario():
        server = AuditServer(port=0, checkpoint_dir=tmp_path)
        await server.start()
        try:
            client = await AuditClient.connect(
                server.addresses[0], session="draining", k=2, window=30
            )
            await client.feed_ops(ops[:40])
            await client.checkpoint()  # sync: feed frames are pipelined
            await server.drain()
            with pytest.raises(ServerDraining) as excinfo:
                await client.finish()
            return excinfo.value
        finally:
            await server.stop()

    exc = asyncio.run(scenario())
    assert exc.retryable and exc.code == "draining"
    assert exc.session == "draining"
    assert exc.ops == 40
    assert exc.resumable and exc.checkpoints >= 1


def test_overload_raises_typed_retryable_error():
    async def scenario():
        server = AuditServer(port=0, max_active_sessions=1)
        await server.start()
        try:
            first = await AuditClient.connect(server.addresses[0], session="one")
            with pytest.raises(ServerOverloaded) as excinfo:
                await AuditClient.connect(server.addresses[0], session="two")
            await first.close()
            await asyncio.sleep(0.05)  # let the server reap the session
            second = await AuditClient.connect(server.addresses[0], session="two")
            await second.close()
            return excinfo.value
        finally:
            await server.stop()

    exc = asyncio.run(scenario())
    assert exc.retryable and exc.code == "overloaded"


def test_idle_watchdog_checkpoints_and_raises_typed_error(tmp_path):
    ops = practical_history(random.Random(TEST_SEED), 50).operations

    async def scenario():
        server = AuditServer(
            port=0, checkpoint_dir=tmp_path, session_idle_timeout=0.2
        )
        await server.start()
        try:
            client = await AuditClient.connect(
                server.addresses[0], session="idler", k=2
            )
            await client.feed_ops(ops[:30])
            await asyncio.sleep(0.6)  # trip the watchdog
            with pytest.raises(SessionIdleTimeout) as excinfo:
                await client.finish()
            resumed = await AuditClient.connect(
                server.addresses[0], session="idler", k=2, resume=True
            )
            restored = resumed.ops_restored
            await resumed.feed_ops(ops[30:])
            report = await resumed.finish()
            return excinfo.value, restored, report
        finally:
            await server.stop()

    exc, restored, report = asyncio.run(scenario())
    assert exc.retryable and exc.code == "idle_timeout"
    assert restored == 30  # the watchdog checkpointed before closing
    assert report.ops == len(ops)


def test_crash_loop_detection_raises_typed_error_and_resize_resets():
    from repro.service.session import SessionConfig
    from repro.service import PooledAuditSession, WorkerPool

    ops = practical_history(random.Random(TEST_SEED), 80).operations
    config = SessionConfig(k=2, algorithm="lbt", window_mode="count", window_size=16)

    async def scenario():
        import os, signal as sig

        pool = WorkerPool(1, crash_loop_threshold=2, crash_loop_window_s=60.0)
        await pool.start()
        try:
            session = PooledAuditSession.start("loopy", config, pool)
            for op in ops[:20]:
                await session.afeed(op)
            for _ in range(3):  # past the threshold of 2
                pids = pool.worker_pids()
                if not pids:
                    break
                os.kill(pids[0], sig.SIGKILL)
                await asyncio.sleep(0.3)
            with pytest.raises(WorkerCrashLoopError):
                for op in ops[20:]:
                    await session.afeed(op)
            # resize() is the operator reset: it discards breaker state,
            # respawns, and restores shards from the parent's replay copies.
            await pool.resize(1)
            for op in ops[20:]:
                await session.afeed(op)
            report = await session.afinish()
            return report
        finally:
            await pool.stop()

    report = asyncio.run(scenario())
    assert report.num_registers == len({op.key for op in ops})
    assert all(r.algorithm for r in report.results.values())


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ServiceError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ServiceError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ServiceError):
        RetryPolicy(base_delay_s=-1.0)
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0)
    rng = random.Random(0)
    assert policy.delay_s(0, rng) == pytest.approx(0.1)
    assert policy.delay_s(1, rng) == pytest.approx(0.2)
    assert policy.delay_s(10, rng) == pytest.approx(0.5)  # capped
    with pytest.raises(ServiceError):
        ResilientAuditClient("tcp:127.0.0.1:1", session="")
    with pytest.raises(ServiceError):
        ResilientAuditClient("tcp:127.0.0.1:1", session="x", checkpoint_every=0)


def test_chaos_proxy_rejects_unix_upstream():
    plan = FaultPlan(seed=1).add("frame_drop")
    with pytest.raises(ServiceError):
        ChaosProxy("unix:/tmp/sock", plan)
    proxy = ChaosProxy("tcp:127.0.0.1:1", plan)
    with pytest.raises(ServiceError):
        proxy.address  # not started


def test_retryable_taxonomy_is_typed_not_parsed():
    assert ServerOverloaded("x").retryable
    assert SessionIdleTimeout("x").retryable
    assert ServerDraining().retryable
    assert not WorkerCrashLoopError("x").retryable
    assert not ServiceError("x").retryable
    assert issubclass(ServerDraining, RetryableServiceError)
    token = ServerDraining(session="s", ops=9, checkpoints=2, resumable=True)
    assert (token.session, token.ops, token.checkpoints, token.resumable) == (
        "s", 9, 2, True
    )
