"""Tests for the declarative experiment harness.

Spec parsing (TOML and JSON), grid expansion, trial determinism, both
measurement kinds, the report schema (what CI's smoke job asserts), the
three emitters, and the ``repro experiment`` CLI.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import (
    REPORT_SCHEMA_VERSION,
    ExperimentError,
    ExperimentReport,
    ExperimentSpec,
    load_report,
    load_spec,
    run_experiment,
    run_trial,
    validate_report,
)
from repro.experiments.runner import build_workload

REPO_ROOT = Path(__file__).parent.parent
CANNED_SPECS = REPO_ROOT / "experiments"


def tiny_spectrum_spec(**overrides) -> ExperimentSpec:
    doc = {
        "experiment": {"name": "tiny", "kind": "spectrum", "seed": 11, "repeats": 2},
        "workload": {
            "kind": "synthetic",
            "registers": 3,
            "ops_per_register": 40,
            "staleness_probability": 0.2,
        },
        "grid": {"write_ratio": [0.1, 0.4]},
    }
    doc["experiment"].update(overrides)
    return ExperimentSpec.from_dict(doc)


def tiny_runtime_spec() -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "experiment": {"name": "tiny-rt", "kind": "runtime", "seed": 5},
            "workload": {"kind": "synthetic", "registers": 3, "ops_per_register": 60},
            "grid": {"ops_per_register": [40, 80]},
            "engines": [
                {"name": "fzf", "algorithm": "fzf", "k": 2},
                {"name": "stream", "mode": "stream", "k": 2, "window": 16},
            ],
        }
    )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestSpec:
    def test_grid_expansion_row_major(self):
        spec = ExperimentSpec.from_dict(
            {
                "experiment": {"name": "g", "kind": "spectrum"},
                "grid": {"a": [1, 2], "b": ["x", "y"]},
            }
        )
        assert [t.params for t in spec.trials()] == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_trials_cover_repeats_and_engines(self):
        spec = tiny_runtime_spec()
        trials = spec.trials()
        # 2 grid points x 2 engines x 1 repeat.
        assert len(trials) == 4
        assert {t.params["engine"] for t in trials} == {"fzf", "stream"}
        # The engine axis must not perturb the workload seed.
        by_point = {}
        for t in trials:
            by_point.setdefault(t.params["ops_per_register"], set()).add(t.seed)
        assert all(len(seeds) == 1 for seeds in by_point.values())

    def test_trials_sharing_a_workload_are_consecutive(self):
        # The runner holds one generated workload at a time, so every run of
        # seeds in the trial order must be contiguous — engines innermost.
        spec = ExperimentSpec.from_dict(
            {
                "experiment": {"name": "c", "kind": "runtime", "repeats": 3},
                "workload": {"kind": "synthetic"},
                "grid": {"ops_per_register": [40, 80]},
                "engines": [{"name": "a"}, {"name": "b"}],
            }
        )
        seeds = [t.seed for t in spec.trials()]
        regenerations = 1 + sum(
            1 for prev, cur in zip(seeds, seeds[1:]) if prev != cur
        )
        assert regenerations == len(set(seeds)) == 6  # 2 points x 3 repeats

    def test_grid_overrides_workload_knob(self):
        spec = tiny_spectrum_spec()
        trials = spec.trials()
        assert trials[0].workload["write_ratio"] == 0.1
        assert trials[-1].workload["write_ratio"] == 0.4

    def test_smoke_shrinks_grid_and_sizes(self):
        spec = tiny_spectrum_spec()
        smoke = spec.smoke()
        assert [t.params for t in smoke.trials()] == [{"write_ratio": 0.1}]
        assert smoke.workload["registers"] <= 4
        assert smoke.repeats == 1

    @pytest.mark.parametrize(
        "doc, message",
        [
            ({"experiment": {"kind": "spectrum"}}, "name"),
            ({"experiment": {"name": "x", "kind": "quantum"}}, "kind"),
            ({"experiment": {"name": "x"}, "bogus": {}}, "unknown top-level"),
            ({"experiment": {"name": "x", "turbo": 1}}, "unknown \\[experiment\\]"),
            ({"experiment": {"name": "x", "repeats": 0}}, "repeats"),
            ({"experiment": {"name": "x"}, "grid": {"a": []}}, "non-empty list"),
            ({"experiment": {"name": "x"}, "workload": {"kind": "cloud"}}, "workload kind"),
            (
                {"experiment": {"name": "x", "kind": "runtime"}, "engines": [{"k": 2}]},
                "with a name",
            ),
        ],
    )
    def test_invalid_specs_rejected(self, doc, message):
        with pytest.raises(ExperimentError, match=message):
            ExperimentSpec.from_dict(doc)

    def test_load_spec_toml_and_json_agree(self, tmp_path):
        toml_spec = load_spec(CANNED_SPECS / "staleness_spectrum.toml")
        json_spec = load_spec(CANNED_SPECS / "staleness_spectrum.json")
        assert toml_spec.name == json_spec.name == "staleness-spectrum"
        assert toml_spec.grid == json_spec.grid
        assert toml_spec.workload == json_spec.workload
        assert toml_spec.seed == json_spec.seed
        assert len(toml_spec.trials()) == len(json_spec.trials())

    def test_load_spec_rejects_bad_files(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ExperimentError, match="invalid JSON"):
            load_spec(path)
        yaml_path = tmp_path / "spec.yaml"
        yaml_path.write_text("experiment: {}\n")
        with pytest.raises(ExperimentError, match="unsupported spec extension"):
            load_spec(yaml_path)
        with pytest.raises(ExperimentError, match="cannot read"):
            load_spec(tmp_path / "missing.toml")

    def test_canned_runtime_spec_parses(self):
        spec = load_spec(CANNED_SPECS / "runtime_scaling.toml")
        assert spec.kind == "runtime"
        assert len(spec.engines) == 6


# ----------------------------------------------------------------------
# Workloads and trials
# ----------------------------------------------------------------------
class TestRunner:
    def test_workloads_are_deterministic_from_the_seed(self):
        spec = tiny_spectrum_spec()
        trial = spec.trials()[0]
        a = build_workload(trial.workload, trial.seed)
        b = build_workload(trial.workload, trial.seed)
        assert {k: len(a[k]) for k in a.keys()} == {k: len(b[k]) for k in b.keys()}
        ops_a = [(o.op_type, o.value, o.start) for k in a.keys() for o in a[k].operations]
        ops_b = [(o.op_type, o.value, o.start) for k in b.keys() for o in b[k].operations]
        assert ops_a == ops_b

    def test_unknown_workload_knob_rejected(self):
        with pytest.raises(ExperimentError, match="unknown synthetic workload knob"):
            build_workload({"kind": "synthetic", "temperature": 451}, "s")
        with pytest.raises(ExperimentError, match="unknown simulation workload knob"):
            build_workload({"kind": "simulation", "sharding": 2}, "s")

    def test_spectrum_trial_metrics(self):
        spec = tiny_spectrum_spec()
        result = run_trial(spec, spec.trials()[0])
        for metric in ("frac_k1", "frac_k2", "frac_k3_plus", "stale_read_fraction"):
            assert metric in result.metrics
        fractions = [
            result.metrics["frac_k1"],
            result.metrics["frac_k2"],
            result.metrics["frac_k3_plus"],
            result.metrics["frac_anomalous"],
        ]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert result.registers == 3
        assert result.ops > 0

    def test_runtime_trial_metrics(self):
        spec = tiny_runtime_spec()
        by_engine = {t.params["engine"]: t for t in spec.trials() if t.repeat == 0}
        for trial in by_engine.values():
            result = run_trial(spec, trial)
            assert result.metrics["verify_s"] > 0
            assert (
                result.metrics["registers_yes"] + result.metrics["registers_no"]
                == result.registers
            )

    def test_unknown_engine_knob_rejected(self):
        spec = ExperimentSpec.from_dict(
            {
                "experiment": {"name": "x", "kind": "runtime"},
                "workload": {"kind": "synthetic", "registers": 2, "ops_per_register": 20},
                "engines": [{"name": "bad", "warp": 9}],
            }
        )
        with pytest.raises(ExperimentError, match="unknown engine knob"):
            run_trial(spec, spec.trials()[0])


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReport:
    def test_run_experiment_produces_schema_valid_report(self):
        report = run_experiment(tiny_spectrum_spec())
        doc = report.to_dict()
        validate_report(doc)  # must not raise
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert len(doc["rows"]) == 2 * 2  # 2 grid points x 2 repeats
        assert report.num_trials == 2

    def test_aggregation_averages_repeats(self):
        report = run_experiment(tiny_spectrum_spec())
        merged = report.aggregated()
        assert len(merged) == 2
        for row in merged:
            group = [r for r in report.rows if r.trial == row.trial]
            expected = sum(r.metrics["frac_k1"] for r in group) / len(group)
            assert row.metrics["frac_k1"] == pytest.approx(expected)

    def test_emitters_and_json_round_trip(self, tmp_path):
        report = run_experiment(tiny_spectrum_spec())
        paths = report.write(tmp_path)
        assert sorted(paths) == ["csv", "json", "md"]
        loaded = load_report(paths["json"])
        assert loaded.name == report.name
        assert [r.to_dict() for r in loaded.rows] == [r.to_dict() for r in report.rows]
        csv_text = paths["csv"].read_text()
        assert csv_text.splitlines()[0].startswith("trial,repeat,param:write_ratio")
        md_text = paths["md"].read_text()
        assert "## per-k staleness spectrum" in md_text
        assert "| k=1 | k=2 | k>=3 |" in md_text.replace("  ", " ")

    def test_runtime_report_has_engine_axis(self):
        report = run_experiment(tiny_runtime_spec())
        assert report.axes["engine"] == ("fzf", "stream")
        assert {row.params["engine"] for row in report.rows} == {"fzf", "stream"}

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("rows"), "missing key"),
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d["rows"].append({"trial": 0}), "missing key"),
            (lambda d: d["rows"][0].update(params=3), "must be objects"),
            (lambda d: d.update(axes=[1, 2]), "axes"),
        ],
    )
    def test_validate_report_rejects_malformed_documents(self, mutate, message):
        doc = run_experiment(tiny_spectrum_spec().smoke()).to_dict()
        mutate(doc)
        with pytest.raises(ExperimentError, match=message):
            validate_report(doc)

    def test_load_report_validates(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ExperimentError, match="missing key"):
            load_report(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestExperimentCli:
    def test_run_smoke_on_canned_spec(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "experiment", "run",
                str(CANNED_SPECS / "staleness_spectrum.toml"),
                "--smoke", "--quiet", "--out", str(tmp_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "[smoke]" in text
        for suffix in (".json", ".csv", ".md"):
            assert (tmp_path / f"staleness-spectrum{suffix}").exists()
        # The written JSON is schema-valid and marked as a smoke run.
        loaded = load_report(tmp_path / "staleness-spectrum.json")
        assert loaded.smoke
        assert len(loaded.rows) == 1

    def test_run_json_spec_and_report_reemit(self, tmp_path):
        out = io.StringIO()
        assert main(
            [
                "experiment", "run",
                str(CANNED_SPECS / "staleness_spectrum.json"),
                "--smoke", "--quiet", "--out", str(tmp_path),
            ],
            out=out,
        ) == 0
        for emit, needle in [
            ("markdown", "# experiment: staleness-spectrum"),
            ("csv", "trial,repeat"),
            ("json", '"schema_version"'),
            ("table", "write_ratio"),
        ]:
            buf = io.StringIO()
            assert main(
                [
                    "experiment", "report",
                    str(tmp_path / "staleness-spectrum.json"),
                    "--emit", emit,
                ],
                out=buf,
            ) == 0
            assert needle in buf.getvalue()

    def test_run_reports_spec_errors(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"experiment": {"name": "x", "kind": "quantum"}}))
        out = io.StringIO()
        assert main(["experiment", "run", str(bad)], out=out) == 2
        assert "error:" in out.getvalue()

    def test_report_reports_schema_errors(self, tmp_path):
        bad = tmp_path / "bad-report.json"
        bad.write_text(json.dumps({"name": "x"}))
        out = io.StringIO()
        assert main(["experiment", "report", str(bad)], out=out) == 2
        assert "error:" in out.getvalue()
