"""Unit tests for the synthetic history generators."""

import random

import pytest

from repro.core.api import minimal_k, verify
from repro.core.preprocess import find_anomalies
from repro.workloads.synthetic import (
    exactly_k_atomic_history,
    practical_history,
    random_history,
    serial_history,
    synthetic_trace,
)


class TestSerialHistory:
    def test_counts(self):
        h = serial_history(num_writes=5, reads_per_write=2)
        assert len(h.writes) == 5
        assert len(h.reads) == 10

    def test_is_1atomic(self):
        assert verify(serial_history(10, 1), 1)

    def test_fully_serial(self):
        h = serial_history(6, 1)
        ops = list(h.operations)
        for earlier, later in zip(ops, ops[1:]):
            assert earlier.precedes(later)

    def test_no_anomalies(self):
        assert not find_anomalies(serial_history(8, 3))

    def test_key_propagated(self):
        h = serial_history(3, 1, key="register-9")
        assert h.key == "register-9"
        assert all(op.key == "register-9" for op in h)


class TestExactlyKAtomicHistory:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6])
    def test_minimal_k_is_exactly_k(self, k):
        h = exactly_k_atomic_history(k, num_writes=k + 3)
        assert minimal_k(h) == k

    def test_needs_at_least_k_writes(self):
        with pytest.raises(ValueError):
            exactly_k_atomic_history(5, num_writes=4)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            exactly_k_atomic_history(0, num_writes=3)

    def test_reads_per_write_multiplies_reads(self):
        h = exactly_k_atomic_history(2, num_writes=5, reads_per_write=3)
        assert len(h.reads) == 3 * 4  # writes with index >= k-1 get reads

    def test_no_anomalies(self):
        assert not find_anomalies(exactly_k_atomic_history(3, 8))


class TestPracticalHistory:
    def test_requested_size(self, rng):
        h = practical_history(rng, 150)
        assert len(h) == 150

    def test_no_anomalies(self, rng):
        h = practical_history(rng, 200, staleness_probability=0.2, max_staleness=2)
        assert not find_anomalies(h)

    def test_write_concurrency_bounded_by_clients(self, rng):
        num_clients = 6
        h = practical_history(rng, 300, num_clients=num_clients, write_ratio=0.5)
        assert h.max_concurrent_writes() <= num_clients

    def test_zero_staleness_is_mostly_fresh(self, rng):
        from repro.analysis.metrics import staleness_stats

        h = practical_history(rng, 200, staleness_probability=0.0, num_clients=2)
        stats = staleness_stats(h)
        # With no injected staleness and little write concurrency, the vast
        # majority of reads observe the freshest preceding value.
        assert stats.stale_fraction < 0.2

    def test_write_ratio_validation(self, rng):
        with pytest.raises(ValueError):
            practical_history(rng, 10, write_ratio=1.5)

    def test_deterministic_given_seed(self):
        a = practical_history(random.Random(5), 100)
        b = practical_history(random.Random(5), 100)
        assert [(op.op_type, op.value, op.start) for op in a.operations] == [
            (op.op_type, op.value, op.start) for op in b.operations
        ]

    def test_client_ids_assigned(self, rng):
        h = practical_history(rng, 50, num_clients=4)
        clients = {op.client for op in h.operations if op.client is not None}
        assert len(clients) >= 2


class TestRandomHistory:
    def test_counts(self, rng):
        h = random_history(rng, num_writes=7, num_reads=9)
        assert len(h.writes) == 7
        assert len(h.reads) == 9

    def test_read_values_reference_written_values(self, rng):
        h = random_history(rng, 5, 20)
        written = {w.value for w in h.writes}
        assert all(r.value in written for r in h.reads)

    def test_deterministic_given_seed(self):
        a = random_history(random.Random(9), 5, 5)
        b = random_history(random.Random(9), 5, 5)
        assert [(op.value, op.start) for op in a.operations] == [
            (op.value, op.start) for op in b.operations
        ]


class TestSyntheticTrace:
    def test_register_count_and_keys(self):
        trace = synthetic_trace(random.Random(3), num_registers=6, ops_per_register=10)
        assert len(trace) == 6
        assert sorted(trace.keys()) == [f"reg-{i:04d}" for i in range(6)]

    def test_deterministic_from_threaded_rng(self):
        a = synthetic_trace(random.Random(11), 5, 12, size_skew=1.0)
        b = synthetic_trace(random.Random(11), 5, 12, size_skew=1.0)
        for key in a.keys():
            assert [(op.op_type, op.value, op.start, op.finish) for op in a[key].operations] == [
                (op.op_type, op.value, op.start, op.finish) for op in b[key].operations
            ]

    def test_different_seeds_differ(self):
        a = synthetic_trace(random.Random(1), 4, 20)
        b = synthetic_trace(random.Random(2), 4, 20)
        key = next(iter(a.keys()))
        assert [op.start for op in a[key].operations] != [op.start for op in b[key].operations]

    def test_anomaly_free_by_construction(self):
        trace = synthetic_trace(random.Random(5), 4, 25, staleness_probability=0.3)
        for key in trace.keys():
            assert not find_anomalies(trace[key])

    def test_size_skew_produces_uneven_registers(self):
        trace = synthetic_trace(random.Random(7), 8, 60, size_skew=4.0)
        sizes = [len(trace[key]) for key in sorted(trace.keys())]
        assert sizes[0] > sizes[-1]

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            synthetic_trace(random.Random(0), 0, 10)
        with pytest.raises(ValueError):
            synthetic_trace(random.Random(0), 2, 0)
        with pytest.raises(ValueError):
            synthetic_trace(random.Random(0), 2, 10, size_skew=-1.0)
