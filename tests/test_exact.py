"""Unit tests for the exact (exponential) k-AV / k-WAV oracle."""

import pytest

from repro.algorithms.exact import (
    is_k_atomic_exact,
    minimal_k_exact,
    verify_k_atomic_exact,
    verify_weighted_k_atomic_exact,
)
from repro.core.errors import VerificationError
from repro.core.history import History
from repro.core.operation import read, write
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestPlainKAtomicity:
    def test_atomic_history(self, atomic_history):
        assert is_k_atomic_exact(atomic_history, 1)

    def test_stale_by_one_needs_k2(self, stale_by_one_history):
        assert not is_k_atomic_exact(stale_by_one_history, 1)
        assert is_k_atomic_exact(stale_by_one_history, 2)

    def test_stale_by_two_needs_k3(self, stale_by_two_history):
        assert not is_k_atomic_exact(stale_by_two_history, 2)
        assert is_k_atomic_exact(stale_by_two_history, 3)

    def test_empty_history_trivially_atomic(self):
        assert is_k_atomic_exact(History([]), 1)

    def test_witness_returned_and_valid(self, stale_by_one_history):
        result = verify_k_atomic_exact(stale_by_one_history, 2)
        assert result
        assert result.check_witness(stale_by_one_history)

    def test_no_witness_on_rejection(self, stale_by_one_history):
        result = verify_k_atomic_exact(stale_by_one_history, 1)
        assert not result
        assert result.witness is None

    def test_k_must_be_positive(self, atomic_history):
        with pytest.raises(VerificationError):
            verify_k_atomic_exact(atomic_history, 0)

    def test_anomalous_history_rejected_for_every_k(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        assert not is_k_atomic_exact(h, 1)
        assert not is_k_atomic_exact(h, 10)

    def test_monotone_in_k(self, rng):
        from tests.conftest import make_random_history
        from repro.core.preprocess import has_anomalies, normalize

        checked = 0
        while checked < 15:
            h = make_random_history(rng, rng.randint(2, 5), rng.randint(1, 4))
            if has_anomalies(h):
                continue
            h = normalize(h)
            checked += 1
            previous = False
            for k in range(1, 5):
                current = is_k_atomic_exact(h, k)
                assert current or not previous, "k-atomicity must be monotone in k"
                previous = current

    def test_concurrent_writes_allow_reordering(self):
        # Two concurrent writes; the read of the first-issued one is fine
        # because the writes can be linearised in either order.
        h = History(
            [
                write("a", 0.0, 10.0),
                write("b", 1.0, 11.0),
                read("a", 12.0, 13.0),
            ]
        )
        assert is_k_atomic_exact(h, 1)

    def test_interleaved_stale_reads(self):
        # r(a) after w(b) and r(b) after w(c): both stale by exactly one.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0),
                read("a", 4.0, 5.0),
                write("c", 6.0, 7.0),
                read("b", 8.0, 9.0),
            ]
        )
        assert not is_k_atomic_exact(h, 1)
        assert is_k_atomic_exact(h, 2)


class TestMinimalK:
    def test_minimal_k_of_atomic_history(self, atomic_history):
        assert minimal_k_exact(atomic_history) == 1

    def test_minimal_k_of_stale_histories(self, stale_by_one_history, stale_by_two_history):
        assert minimal_k_exact(stale_by_one_history) == 2
        assert minimal_k_exact(stale_by_two_history) == 3

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_minimal_k_matches_generator(self, k):
        h = exactly_k_atomic_history(k, num_writes=k + 2)
        assert minimal_k_exact(h) == k

    def test_minimal_k_rejects_anomalous_history(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        with pytest.raises(VerificationError):
            minimal_k_exact(h)

    def test_empty_history_minimal_k(self):
        assert minimal_k_exact(History([])) == 1


class TestWeightedOracle:
    def test_unit_weights_match_plain(self, stale_by_one_history, stale_by_two_history):
        for h in (stale_by_one_history, stale_by_two_history):
            for k in (1, 2, 3):
                assert bool(verify_weighted_k_atomic_exact(h, k)) == bool(
                    verify_k_atomic_exact(h, k)
                )

    def test_heavy_dictating_write_requires_its_own_weight(self):
        h = History([write("a", 0.0, 1.0, weight=4), read("a", 2.0, 3.0)])
        assert not verify_weighted_k_atomic_exact(h, 3)
        assert verify_weighted_k_atomic_exact(h, 4)

    def test_heavy_intervening_write_can_be_avoided_if_concurrent(self):
        # The heavy write overlaps the read, so it can be ordered after it.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("heavy", 2.0, 10.0, weight=5),
                read("a", 3.0, 4.0),
            ]
        )
        assert verify_weighted_k_atomic_exact(h, 1)

    def test_heavy_intervening_write_counts_when_forced(self):
        # The heavy write strictly precedes the read, so it must intervene.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("heavy", 2.0, 3.0, weight=5),
                read("a", 4.0, 5.0),
            ]
        )
        assert not verify_weighted_k_atomic_exact(h, 5)
        assert verify_weighted_k_atomic_exact(h, 6)

    def test_weighted_witness_is_checkable(self):
        h = History(
            [
                write("a", 0.0, 1.0, weight=2),
                write("b", 2.0, 3.0, weight=3),
                read("a", 4.0, 5.0),
            ]
        )
        result = verify_weighted_k_atomic_exact(h, 5)
        assert result
        assert h.is_weighted_k_atomic_total_order(result.require_witness(), 5)


class TestSearchBehaviour:
    def test_stats_reported(self, stale_by_one_history):
        result = verify_k_atomic_exact(stale_by_one_history, 2)
        assert result.stats["nodes_explored"] >= 1

    def test_serial_history_scales_without_blowup(self):
        # Serial histories have a forced order, so the search is linear-ish.
        h = serial_history(num_writes=12, reads_per_write=1)
        result = verify_k_atomic_exact(h, 1)
        assert result
        assert result.stats["nodes_explored"] <= 10 * len(h)
