"""Crash-durability suite: torn writes, SIGKILL mid-checkpoint, fsync audit.

The durability contract of the state tier (see :mod:`repro.state.base`) is
*never partial state*: whatever byte a crash tears a write at, loading
afterwards must either surface the complete prior state or raise a typed
error — and a checkpoint written before the crash must resume to verdict
parity with an uninterrupted run.  These tests enforce both, across every
registered backend:

* **Torn-write sweep** — write checkpoint A, then B, fold everything to
  disk, and truncate each backing file at *every byte boundary*; every
  truncation must load as payload B, payload A, "no checkpoint", or a typed
  error — never a half-deserialized payload.
* **SIGKILL mid-checkpoint** — a subprocess feeds a deterministic stream,
  checkpointing after every operation, and is killed with ``SIGKILL``
  mid-run; the parent resumes from whatever checkpoint survived and must
  reach the exact verdicts of an uninterrupted run.
* **fsync audit** — the checkpoint save path must fsync the blob *and* the
  directory entry (the bug this PR fixes: ``os.replace`` alone is atomic
  against process crashes but not against power loss).
"""

from __future__ import annotations

import os
import pickle
import random
import re
import shutil
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.core.errors import ReproError, ServiceError, StateError
from repro.service.checkpoint import CheckpointStore
from repro.service.session import AuditSession, SessionConfig
from repro.state import available_backends, open_state_store

from tests.conftest import TEST_SEED, make_random_history
from tests.test_checkpoint import completion_order, result_signature

BACKENDS = available_backends()

REPO_ROOT = Path(__file__).resolve().parent.parent


def _store_options(backend):
    """Small file geometries so every-byte truncation sweeps stay quick."""
    if backend == "sqlite":
        return {"page_size": 512}
    if backend == "segments":
        return {"max_segment_bytes": 4096}
    return {}


def _open_checkpoints(backend, directory):
    store = open_state_store(backend, directory, **_store_options(backend))
    return CheckpointStore(store=store)


def _backing_files(directory: Path):
    """Every file the store persisted (ignoring sqlite's empty sidecars)."""
    return sorted(
        p
        for p in directory.rglob("*")
        if p.is_file() and not p.name.endswith(("-wal", "-shm"))
    )


PAYLOAD_A = {"session_id": "torn", "stream": {"ops_fed": 3}, "blob": b"A" * 64}
PAYLOAD_B = {"session_id": "torn", "stream": {"ops_fed": 9}, "blob": b"B" * 64}


@pytest.mark.parametrize("backend", BACKENDS)
def test_torn_write_at_every_byte_boundary(tmp_path, backend):
    base = tmp_path / "base"
    ckpt = _open_checkpoints(backend, base)
    ckpt.save("torn", PAYLOAD_A)
    ckpt.save("torn", PAYLOAD_B)
    ckpt.store.flush()
    ckpt.close()

    originals = {p: p.read_bytes() for p in _backing_files(base)}
    assert originals, "store persisted nothing"
    scratch = tmp_path / "scratch"

    outcomes = {"B": 0, "A": 0, "gone": 0, "typed": 0}
    for victim, pristine in originals.items():
        for cut in range(len(pristine) + 1):
            if scratch.exists():
                # Full teardown: a stale sqlite -wal (or segment) left by the
                # previous iteration would contaminate this one's recovery.
                shutil.rmtree(scratch)
            for path, data in originals.items():
                target = scratch / path.relative_to(base)
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(data if path != victim else data[:cut])
            try:
                store = _open_checkpoints(backend, scratch)
            except StateError:
                outcomes["typed"] += 1
                continue
            try:
                if "torn" not in store:
                    outcomes["gone"] += 1
                    continue
                loaded = store.load("torn")
            except (ServiceError, StateError):
                outcomes["typed"] += 1
                continue
            finally:
                store.close()
            # Never partial state: only the complete payloads may surface.
            if loaded == PAYLOAD_B:
                outcomes["B"] += 1
            elif loaded == PAYLOAD_A:
                outcomes["A"] += 1
            else:  # pragma: no cover - the failure this suite exists for
                pytest.fail(
                    f"{backend}: truncating {victim.name} at byte {cut} "
                    f"surfaced partial state: {loaded!r}"
                )
    # The untruncated tail must load as B, and some truncation must be
    # detected (either typed error or falling back to absent/prior state).
    assert outcomes["B"] > 0
    assert outcomes["typed"] + outcomes["gone"] + outcomes["A"] > 0


# ----------------------------------------------------------------------
# SIGKILL mid-checkpoint: resume parity
# ----------------------------------------------------------------------
_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    sys.path.insert(0, {src!r})
    sys.path.insert(0, {root!r})
    from repro.service.checkpoint import CheckpointStore
    from repro.service.session import AuditSession, SessionConfig
    from repro.state import open_state_store
    from tests.conftest import TEST_SEED, make_random_history
    from tests.test_checkpoint import completion_order
    import random

    backend, directory = sys.argv[1], sys.argv[2]
    options = {{"sqlite": {{"page_size": 512}},
                "segments": {{"max_segment_bytes": 4096}}}}.get(backend, {{}})
    store = CheckpointStore(store=open_state_store(backend, directory, **options))
    history = make_random_history(random.Random(TEST_SEED + 77), 5, 8)
    ops = completion_order(history)
    session = AuditSession.start("kill/me", SessionConfig(k=2, window_size=3))
    for op in ops:
        session.feed(op)
        store.save(session.session_id, session.checkpoint_payload())
        print("fed", session.ops_fed, flush=True)
        time.sleep(0.02)
    print("done", flush=True)
    """
)


def _portable_signature(result):
    """``result_signature`` with process-local operation ids scrubbed.

    Anomaly reasons cite operations as ``read #41``; the ``#41`` comes from a
    per-process id counter, so a checkpoint written by a child process cites
    different ids for the *same* operations.  Everything else must match.
    """
    sig = result_signature(result)
    reason = re.sub(r"#\d+", "#?", sig[3]) if sig[3] else sig[3]
    return sig[:3] + (reason,) + sig[4:]


@pytest.mark.parametrize("backend", BACKENDS)
def test_sigkill_mid_checkpoint_resumes_to_parity(tmp_path, backend):
    history = make_random_history(random.Random(TEST_SEED + 77), 5, 8)
    ops = completion_order(history)

    reference = AuditSession.start("kill/me", SessionConfig(k=2, window_size=3))
    for op in ops:
        reference.feed(op)
    expected = {
        key: _portable_signature(r) for key, r in reference.finish().results.items()
    }

    script = tmp_path / "child.py"
    script.write_text(
        _CHILD_SCRIPT.format(src=str(REPO_ROOT / "src"), root=str(REPO_ROOT))
    )
    store_dir = tmp_path / "store"
    child = subprocess.Popen(
        [sys.executable, str(script), backend, str(store_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        fed = 0
        deadline = time.monotonic() + 30.0
        while fed < max(3, len(ops) // 3):
            line = child.stdout.readline()
            if not line:
                pytest.fail(
                    f"child exited early: {child.stderr.read()}"
                )
            if line.startswith("fed"):
                fed = int(line.split()[1])
            assert time.monotonic() < deadline
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=10)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on test bugs
            child.kill()
            child.wait()

    store = _open_checkpoints(backend, store_dir)
    try:
        assert "kill/me" in store, "no checkpoint survived the kill"
        payload = store.load("kill/me")
    finally:
        store.close()
    resumed = AuditSession.resume(payload)
    done = resumed.ops_fed
    assert 0 < done <= len(ops)
    for op in ops[done:]:
        resumed.feed(op)
    got = {key: _portable_signature(r) for key, r in resumed.finish().results.items()}
    assert got == expected, (
        f"{backend}: resume after SIGKILL at op {done} diverged "
        f"(seed {TEST_SEED:#x})"
    )


# ----------------------------------------------------------------------
# fsync audit
# ----------------------------------------------------------------------
def test_checkpoint_save_fsyncs_blob_and_directory(tmp_path, monkeypatch):
    import repro.state.base as state_base

    synced_fds = []
    real_fsync = os.fsync

    def spy(fd):
        synced_fds.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(state_base.os, "fsync", spy)
    store = CheckpointStore(tmp_path)
    store.save("sid", {"session_id": "sid"})
    # One fsync for the temp file's contents, one for the directory entry
    # that os.replace created — both are required to survive power loss.
    assert len(synced_fds) >= 2
    assert store.load("sid") == {"session_id": "sid"}


def test_checkpoint_save_durable_false_skips_fsync(tmp_path, monkeypatch):
    import repro.state.base as state_base
    from repro.state import JsonFileStateStore

    calls = []
    monkeypatch.setattr(state_base.os, "fsync", lambda fd: calls.append(fd))
    store = JsonFileStateStore(tmp_path, durable=False)
    store.put("sessions", "sid", b"blob")
    assert calls == []
    assert store.get("sessions", "sid") == b"blob"


def test_rcol_writer_fsyncs_footer(tmp_path, monkeypatch):
    np = pytest.importorskip("numpy")
    import repro.io.rcol as rcol_mod
    from repro.core.history import History
    from repro.core.operation import read, write
    from repro.io.rcol import dump_rcol, iter_rcol

    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        rcol_mod.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
    )
    history = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
    path = tmp_path / "trace.rcol"
    dump_rcol(history, path)
    assert synced, "RcolWriter.close() must fsync before the file is 'done'"
    assert len(list(iter_rcol(path))) == 2


def test_orphan_tmp_never_surfaces_as_session(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("real", {"session_id": "real"})
    store.close()
    # A crash mid-save leaves the temp file behind; the next open must sweep
    # it and must not list it as a session.
    orphan = tmp_path / "half%2Fwritten.ckpt.tmp"
    orphan.write_bytes(b"\x80\x05 torn pickle")
    reopened = CheckpointStore(tmp_path)
    assert not orphan.exists()
    assert reopened.session_ids() == ["real"]
    assert "half/written" not in reopened
    assert reopened.store.swept_tmp == 1
