"""Unit tests for the LBT 2-AV algorithm (Section III, Figure 2)."""

import pytest

from repro.algorithms.lbt import (
    LBTChecker,
    is_2atomic,
    verify_2atomic,
    verify_2atomic_reference,
)
from repro.core.history import History
from repro.core.operation import read, write
from repro.workloads.adversarial import (
    concurrent_batch_history,
    non_2atomic_batch_history,
)
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestAcceptance:
    def test_atomic_history_accepted(self, atomic_history):
        assert is_2atomic(atomic_history)

    def test_stale_by_one_accepted(self, stale_by_one_history):
        result = verify_2atomic(stale_by_one_history)
        assert result
        assert result.algorithm == "LBT"
        assert result.k == 2

    def test_stale_by_two_rejected(self, stale_by_two_history):
        result = verify_2atomic(stale_by_two_history)
        assert not result
        assert result.reason

    def test_empty_history_accepted(self):
        assert verify_2atomic(History([]))

    def test_anomalous_history_rejected(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        assert not verify_2atomic(h)

    def test_writes_only_history_accepted(self):
        h = History([write(i, float(i), float(i) + 5.0) for i in range(6)])
        assert is_2atomic(h)

    def test_exactly_2_atomic_generator_accepted(self):
        assert is_2atomic(exactly_k_atomic_history(2, num_writes=6))

    def test_exactly_3_atomic_generator_rejected(self):
        assert not is_2atomic(exactly_k_atomic_history(3, num_writes=6))

    def test_concurrent_batches_accepted(self):
        assert is_2atomic(concurrent_batch_history(num_batches=4, batch_size=5))

    def test_non_2atomic_batches_rejected(self):
        assert not is_2atomic(non_2atomic_batch_history(num_batches=3, batch_size=4))

    def test_long_serial_history_accepted(self):
        assert is_2atomic(serial_history(num_writes=50, reads_per_write=2))

    def test_preprocess_flag_normalises_input(self):
        # A write longer than its read: requires the Section II-C shortening.
        h = History([write("a", 0.0, 10.0), read("a", 1.0, 3.0), write("b", 11.0, 12.0)])
        assert verify_2atomic(h, preprocess=True)


class TestWitness:
    def test_witness_is_valid_2atomic_order(self, stale_by_one_history):
        result = verify_2atomic(stale_by_one_history)
        assert result.check_witness(stale_by_one_history)

    def test_witness_covers_all_operations(self, stale_by_one_history):
        result = verify_2atomic(stale_by_one_history)
        assert set(result.require_witness()) == set(stale_by_one_history.operations)

    def test_witness_on_concurrent_batches(self):
        h = concurrent_batch_history(num_batches=3, batch_size=4)
        result = verify_2atomic(h)
        assert result.check_witness(h)

    def test_no_witness_on_rejection(self, stale_by_two_history):
        assert verify_2atomic(stale_by_two_history).witness is None

    def test_reference_witness_also_valid(self, stale_by_one_history):
        result = verify_2atomic_reference(stale_by_one_history)
        assert result.check_witness(stale_by_one_history)


class TestReferenceAgreement:
    HISTORIES = [
        History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)]),
        History([write("a", 0.0, 1.0), write("b", 2.0, 3.0), read("a", 4.0, 5.0)]),
        History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0),
                write("c", 4.0, 5.0),
                read("a", 6.0, 7.0),
            ]
        ),
        History(
            [
                write("a", 0.0, 10.0),
                write("b", 1.0, 11.0),
                read("a", 12.0, 13.0),
                read("b", 14.0, 15.0),
            ]
        ),
    ]

    @pytest.mark.parametrize("history", HISTORIES)
    def test_optimized_matches_reference(self, history):
        assert bool(verify_2atomic(history)) == bool(verify_2atomic_reference(history))

    def test_generators_agree(self):
        for h in (
            serial_history(8, 1),
            exactly_k_atomic_history(2, 5),
            exactly_k_atomic_history(3, 5),
            concurrent_batch_history(2, 3),
            non_2atomic_batch_history(2, 3),
        ):
            assert bool(verify_2atomic(h)) == bool(verify_2atomic_reference(h))


class TestEpochMechanics:
    def test_stats_counted(self, stale_by_one_history):
        result = verify_2atomic(stale_by_one_history)
        assert result.stats["epochs"] >= 1
        assert result.stats["candidates_tried"] >= 1

    def test_checker_candidates_are_suffix_maximal_writes(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 10.0),
                write("c", 3.0, 11.0),
                read("c", 12.0, 13.0),
            ]
        )
        checker = LBTChecker(h)
        candidates = checker._candidates()
        # "a" precedes both other writes, so it cannot be a candidate.
        assert {w.value for w in candidates} == {"b", "c"}

    def test_single_write_candidate(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        checker = LBTChecker(h)
        assert [w.value for w in checker._candidates()] == ["a"]

    def test_rejection_reason_mentions_candidates(self, stale_by_two_history):
        result = verify_2atomic(stale_by_two_history)
        assert "candidate" in result.reason


class TestTrickyShapes:
    def test_read_of_earlier_value_with_concurrent_write(self):
        # w(b) overlaps the read of a, so it can be pushed after the read.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 10.0),
                write("c", 3.0, 11.0),
                read("a", 4.0, 5.0),
            ]
        )
        assert is_2atomic(h)

    def test_two_reads_of_two_stale_values_after_three_writes(self):
        # After w(a), w(b), w(c) all finish, reads of a and b cannot both be
        # within staleness 2 ... unless ordered cleverly; here r(a) comes
        # first so a must be within the last 2 writes and then r(b) as well —
        # impossible because c must also be placed before both reads.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0),
                write("c", 4.0, 5.0),
                read("a", 6.0, 7.0),
                read("b", 8.0, 9.0),
            ]
        )
        assert not is_2atomic(h)

    def test_interleaved_lag_one_chain_is_2atomic(self):
        ops = []
        t = 0.0
        for i in range(6):
            ops.append(write(i, t, t + 1.0))
            t += 2.0
            if i >= 1:
                ops.append(read(i - 1, t, t + 1.0))
                t += 2.0
        assert is_2atomic(History(ops))

    def test_lag_two_chain_is_not_2atomic(self):
        ops = []
        t = 0.0
        for i in range(6):
            ops.append(write(i, t, t + 1.0))
            t += 2.0
            if i >= 2:
                ops.append(read(i - 2, t, t + 1.0))
                t += 2.0
        assert not is_2atomic(History(ops))
