"""Shared fixtures and helpers for the test-suite.

Randomised tests (the ``rng`` fixture, :func:`make_random_history`, and the
fuzz/metamorphic harnesses) all derive from one seed so failures are
reproducible: set ``REPRO_TEST_SEED`` to replay a CI failure locally.  The
active seed is printed in the pytest header and echoed by the fuzz harness
on every failing case.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.history import History
from repro.core.operation import read, write

#: Seed of every randomised test, overridable via the environment
#: (``REPRO_TEST_SEED=12345 pytest ...``; hex like 0xBEEF works too).
TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", str(0xC0FFEE)), 0)


def pytest_report_header(config):
    """Show the active seed so any failure is reproducible by exporting it."""
    return f"REPRO_TEST_SEED={TEST_SEED:#x} (export to reproduce randomised failures)"


@pytest.fixture
def rng():
    """A deterministic random stream for tests that need randomness."""
    return random.Random(TEST_SEED)


@pytest.fixture
def stale_by_one_history():
    """w(a), w(b), then a read of 'a': 2-atomic but not 1-atomic."""
    return History(
        [
            write("a", 0.0, 1.0),
            write("b", 2.0, 3.0),
            read("a", 4.0, 5.0),
        ]
    )


@pytest.fixture
def stale_by_two_history():
    """w(a), w(b), w(c), then a read of 'a': needs k = 3."""
    return History(
        [
            write("a", 0.0, 1.0),
            write("b", 2.0, 3.0),
            write("c", 4.0, 5.0),
            read("a", 6.0, 7.0),
        ]
    )


@pytest.fixture
def atomic_history():
    """A serial, perfectly fresh history: 1-atomic."""
    return History(
        [
            write("a", 0.0, 1.0),
            read("a", 2.0, 3.0),
            write("b", 4.0, 5.0),
            read("b", 6.0, 7.0),
        ]
    )


@pytest.fixture
def concurrent_overlap_history():
    """A write concurrent with its read: trivially 1-atomic."""
    return History(
        [
            write("a", 0.0, 4.0),
            read("a", 1.0, 5.0),
        ]
    )


def make_random_history(rng, num_writes, num_reads, span=10.0, max_duration=2.0):
    """Build a random single-register history (may contain anomalies)."""
    ops = []
    for i in range(num_writes):
        start = rng.uniform(0.0, span)
        ops.append(write(i, start, start + rng.uniform(0.01, max_duration)))
    for _ in range(num_reads):
        value = rng.randrange(max(1, num_writes))
        start = rng.uniform(0.0, span + max_duration)
        ops.append(read(value, start, start + rng.uniform(0.01, max_duration)))
    return History(ops)
