"""Columnar fast path: randomized parity with the object kernels.

The columnar kernels are only allowed to exist because they are observably
identical to the object path: same verdicts, same NO reasons, same stats,
witnesses that validate.  These tests fuzz that equivalence across GK, FZF,
LBT and all three executors, and cover the encoding itself (construction from
rows vs from histories, lazy decoding, the shard codec round-trip) plus the
derived-structure cache the fast path leans on.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core import columnar, vector
from repro.core.api import verify, verify_trace
from repro.core.columnar import ColumnarHistory, columnar_of
from repro.core.errors import DuplicateValueError, MalformedOperationError
from repro.core.history import History
from repro.core.operation import read, trusted_operation, write
from repro.core.preprocess import find_anomalies, has_anomalies, normalize
from repro.core.zones import build_clusters
from repro.engine import EncodedShardTask, Engine, ShardTask, run_shard
from repro.workloads.synthetic import practical_history, random_history, synthetic_trace


def fuzz_histories():
    """A mix of practical, random (possibly anomalous) and edge histories."""
    cases = []
    for seed in range(25):
        rng = random.Random(seed)
        cases.append(
            practical_history(
                rng, 80, staleness_probability=0.3, max_staleness=3, key=f"p{seed}"
            )
        )
        cases.append(random_history(rng, 8, 20, key=f"r{seed}"))
    cases.append(History([], key="empty"))
    cases.append(History([write("a", 0.0, 1.0)], key="one-write"))
    cases.append(History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)], key="pair"))
    return cases


class TestVerdictParity:
    @pytest.mark.parametrize("k", [1, 2])
    def test_randomized_parity_all_algorithms(self, k):
        for history in fuzz_histories():
            col_res = verify(history, k, columnar=True)
            obj_res = verify(history, k, columnar=False)
            assert bool(col_res) == bool(obj_res), history.key
            assert col_res.reason == obj_res.reason, history.key
            assert col_res.stats == obj_res.stats, history.key
            assert col_res.algorithm == obj_res.algorithm, history.key

    def test_witnesses_validate_on_yes(self):
        for history in fuzz_histories():
            if history.is_empty or find_anomalies(history):
                continue
            normalized = normalize(history)
            for k in (1, 2):
                res = verify(normalized, k, preprocess=False, columnar=True)
                assert bool(res) == bool(
                    verify(normalized, k, preprocess=False, columnar=False)
                )
                if res and res.witness is not None and len(res.witness):
                    assert normalized.is_k_atomic_total_order(res.witness, k)

    def test_fzf_matches_lbt_through_columnar(self):
        # LBT has no columnar twin, so it is an independent referee for FZF.
        for history in fuzz_histories():
            if history.is_empty or find_anomalies(history):
                continue
            normalized = normalize(history)
            fzf = verify(normalized, 2, algorithm="fzf", preprocess=False, columnar=True)
            lbt = verify(normalized, 2, algorithm="lbt", preprocess=False)
            assert bool(fzf) == bool(lbt), history.key

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_executor_parity(self, executor):
        trace = synthetic_trace(
            random.Random(7), 6, 150, staleness_probability=0.2, max_staleness=2
        )
        col = verify_trace(trace, 2, executor=executor, jobs=2, columnar=True)
        obj = verify_trace(trace, 2, executor=executor, jobs=2, columnar=False)
        assert {k: bool(r) for k, r in col.items()} == {
            k: bool(r) for k, r in obj.items()
        }
        assert {k: r.reason for k, r in col.items()} == {
            k: r.reason for k, r in obj.items()
        }

    @pytest.mark.skipif(not vector.NUMPY_AVAILABLE, reason="numpy not installed")
    @pytest.mark.parametrize("k", [1, 2])
    def test_three_way_kernel_parity(self, k):
        """object, columnar and numpy tiers agree on every observable."""
        for history in fuzz_histories():
            results = {
                kernel: verify(history, k, kernel=kernel)
                for kernel in vector.KERNELS
            }
            ref = results["object"]
            for kernel, res in results.items():
                assert bool(res) == bool(ref), (history.key, kernel)
                assert res.reason == ref.reason, (history.key, kernel)
                assert res.stats == ref.stats, (history.key, kernel)
                assert res.algorithm == ref.algorithm, (history.key, kernel)
                if res and res.witness is not None and not history.is_empty:
                    if not find_anomalies(history):
                        assert normalize(history).is_k_atomic_total_order(
                            res.witness, k
                        ), (history.key, kernel)

    @pytest.mark.skipif(not vector.NUMPY_AVAILABLE, reason="numpy not installed")
    def test_numpy_tier_orders_tested_matches(self):
        """The vectorized FZF screens the same candidate orders (stats parity)."""
        for seed in range(20):
            history = practical_history(
                random.Random(seed), 120, staleness_probability=0.35,
                max_staleness=3, key=f"ot{seed}",
            )
            np_res = verify(history, 2, algorithm="fzf", kernel="numpy")
            col_res = verify(history, 2, algorithm="fzf", kernel="columnar")
            assert np_res.stats == col_res.stats, seed

    @pytest.mark.skipif(not vector.NUMPY_AVAILABLE, reason="numpy not installed")
    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_numpy_kernel_through_engine(self, executor):
        trace = synthetic_trace(
            random.Random(9), 6, 150, staleness_probability=0.2, max_staleness=2
        )
        np_rep = verify_trace(trace, 2, executor=executor, jobs=2, kernel="numpy")
        obj_rep = verify_trace(trace, 2, executor=executor, jobs=2, kernel="object")
        assert {k: (bool(r), r.reason) for k, r in np_rep.items()} == {
            k: (bool(r), r.reason) for k, r in obj_rep.items()
        }

    def test_default_toggle_controls_path(self):
        history = practical_history(random.Random(0), 40, key="t")
        previous = columnar.set_default_enabled(False)
        try:
            assert columnar.default_enabled() is False
            res = verify(history, 2)
            # Object path does not touch the columnar cache.
            assert "columnar" not in normalize(history)._derived
        finally:
            columnar.set_default_enabled(previous)
        assert bool(res) == bool(verify(history, 2, columnar=True))


class TestEncoding:
    def test_from_history_roundtrip_operations(self):
        history = normalize(
            practical_history(random.Random(3), 60, key="reg", num_clients=3)
        )
        col = ColumnarHistory.from_history(history)
        assert len(col) == len(history)
        assert col.operations() == list(history.operations)
        assert col.to_history() is history

    def test_from_rows_equivalent_to_from_history(self):
        history = normalize(
            practical_history(random.Random(5), 50, key="reg", num_clients=4)
        )
        rows = [
            (op.is_write, op.value, op.start, op.finish, op.client, op.weight)
            for op in history.operations
        ]
        col = ColumnarHistory.from_rows(rows, key="reg")
        ref = ColumnarHistory.from_history(history)
        assert list(col.start) == list(ref.start)
        assert list(col.finish) == list(ref.finish)
        assert bytes(col.is_write) == bytes(ref.is_write)
        assert [col.value_of(i) for i in range(col.n)] == [
            ref.value_of(i) for i in range(ref.n)
        ]
        assert list(col.dictating) == list(ref.dictating)
        # Lazily decoded operations carry the full payload.
        for i in range(col.n):
            a, b = col.operation(i), history.operations[i]
            assert (a.op_type, a.value, a.start, a.finish, a.key, a.client, a.weight) \
                == (b.op_type, b.value, b.start, b.finish, b.key, b.client, b.weight)

    def test_from_rows_validates(self):
        with pytest.raises(MalformedOperationError):
            ColumnarHistory.from_rows([(True, "a", 2.0, 1.0, None, 1)])
        with pytest.raises(MalformedOperationError):
            ColumnarHistory.from_rows([(True, "a", 0.0, 1.0, None, 0)])
        with pytest.raises(DuplicateValueError):
            ColumnarHistory.from_rows(
                [(True, "a", 0.0, 1.0, None, 1), (True, "a", 2.0, 3.0, None, 1)]
            )

    def test_from_rows_verdict_parity(self):
        for seed in range(10):
            history = practical_history(
                random.Random(seed), 60, staleness_probability=0.4, max_staleness=2
            )
            if has_anomalies(history):
                continue
            normalized = normalize(history)
            rows = [
                (op.is_write, op.value, op.start, op.finish, op.client, op.weight)
                for op in normalized.operations
            ]
            rebuilt = ColumnarHistory.from_rows(rows).to_history()
            for k in (1, 2):
                assert bool(verify(rebuilt, k, preprocess=False)) == bool(
                    verify(normalized, k, preprocess=False)
                ), seed

    def test_anomaly_scan_matches_object_path(self):
        for history in fuzz_histories():
            if history.is_empty:
                continue
            assert columnar_of(history).has_anomalies() == has_anomalies(history)

    def test_columns_roundtrip(self):
        history = normalize(
            practical_history(random.Random(11), 40, key="reg", num_clients=2)
        )
        rebuilt = ColumnarHistory.from_columns(
            columnar_of(history).to_columns()
        ).to_history()
        assert rebuilt == history  # History equality is op_id-based
        for a, b in zip(rebuilt.operations, history.operations):
            assert (a.op_type, a.value, a.start, a.finish, a.key, a.client,
                    a.op_id, a.weight) == (b.op_type, b.value, b.start, b.finish,
                                           b.key, b.client, b.op_id, b.weight)

    def test_columns_roundtrip_preserves_weights_and_missing_key(self):
        ops = [
            write("a", 0.0, 1.0, weight=3),
            read("a", 2.0, 3.0, client="c1"),
            write("b", 4.0, 5.0),
        ]
        history = History(ops)  # no register key at all
        rebuilt = ColumnarHistory.from_columns(
            columnar_of(history).to_columns()
        ).to_history()
        assert [op.weight for op in rebuilt.operations] == [3, 1, 1]
        assert [op.client for op in rebuilt.operations] == [None, "c1", None]
        assert all(op.key is None for op in rebuilt.operations)


class TestShardCodec:
    def make_task(self, **overrides):
        trace = synthetic_trace(
            random.Random(2), 4, 120, staleness_probability=0.2, max_staleness=2
        )
        items = tuple((key, trace[key]) for key in trace.keys())
        fields = dict(
            shard_id=0, items=items, k=2, algorithm="auto",
            preprocess=True, max_exact_ops=40,
        )
        fields.update(overrides)
        return ShardTask(**fields)

    def test_encoded_task_pickles_smaller_and_runs_identically(self):
        task = self.make_task()
        encoded = task.encode()
        assert isinstance(encoded, EncodedShardTask)
        assert len(pickle.dumps(encoded, pickle.HIGHEST_PROTOCOL)) < len(
            pickle.dumps(task, pickle.HIGHEST_PROTOCOL)
        )
        clone = pickle.loads(pickle.dumps(encoded, pickle.HIGHEST_PROTOCOL))
        out_obj = run_shard(task)
        out_col = run_shard(clone)
        assert out_col.num_ops == out_obj.num_ops
        assert {k: bool(r) for k, r in out_col.results} == {
            k: bool(r) for k, r in out_obj.results
        }
        assert {k: r.reason for k, r in out_col.results} == {
            k: r.reason for k, r in out_obj.results
        }

    def test_decode_preserves_op_identity(self):
        task = self.make_task()
        decoded = dict(task.encode().decode_items())
        for key, original in task.items:
            assert decoded[key] == original

    def test_engine_compact_ipc_toggle(self):
        trace = synthetic_trace(random.Random(4), 5, 100)
        compact = Engine(executor="processes", jobs=2).verify_trace(trace, 2)
        plain = Engine(
            executor="processes", jobs=2, compact_ipc=False
        ).verify_trace(trace, 2)
        serial = Engine().verify_trace(trace, 2)
        expected = {k: bool(r) for k, r in serial.results.items()}
        assert {k: bool(r) for k, r in compact.results.items()} == expected
        assert {k: bool(r) for k, r in plain.results.items()} == expected


class TestDerivedCache:
    def test_cluster_list_memoized(self):
        history = normalize(practical_history(random.Random(0), 40))
        assert build_clusters(history) is build_clusters(history)

    def test_cluster_map_memoized(self):
        history = normalize(practical_history(random.Random(0), 40))
        assert history.clusters() is history.clusters()

    def test_normalize_memoized_and_idempotent(self):
        history = practical_history(random.Random(1), 40)
        normalized = normalize(history)
        assert normalize(history) is normalized
        assert normalize(normalized) is normalized

    def test_anomaly_scan_memoized(self):
        history = practical_history(random.Random(2), 40)
        assert find_anomalies(history) is find_anomalies(history)
        assert has_anomalies(history) == bool(find_anomalies(history))

    def test_columnar_encoding_memoized(self):
        history = normalize(practical_history(random.Random(3), 40))
        assert columnar_of(history) is columnar_of(history)

    def test_cache_not_pickled(self):
        history = normalize(practical_history(random.Random(4), 40))
        build_clusters(history)
        columnar_of(history)
        clone = pickle.loads(pickle.dumps(history))
        assert clone == history
        assert clone._derived == {}

    def test_non_default_normalize_options_not_cached(self):
        history = practical_history(random.Random(5), 40)
        normalize(history, epsilon=1e-6)
        assert "normalized" not in history._derived
        cached = normalize(history)
        assert history._derived["normalized"] is cached


class TestCLI:
    def test_no_columnar_flag_matches_default(self, tmp_path):
        import io as _io

        from repro.cli import main
        from repro.core.history import MultiHistory
        from repro.io.formats import dump_jsonl

        ops = []
        for seed in range(3):
            ops.extend(
                practical_history(
                    random.Random(seed), 40, staleness_probability=0.3,
                    max_staleness=2, key=f"reg-{seed}",
                ).operations
            )
        path = tmp_path / "trace.jsonl"
        dump_jsonl(MultiHistory(ops), path)
        out_default, out_object = _io.StringIO(), _io.StringIO()
        status_default = main(["verify", str(path), "--k", "2"], out=out_default)
        status_object = main(
            ["verify", str(path), "--k", "2", "--no-columnar"], out=out_object
        )
        assert status_default == status_object == 0
        assert out_default.getvalue() == out_object.getvalue()

    def test_kernel_flag_matches_across_tiers(self, tmp_path):
        import io as _io

        from repro.cli import main
        from repro.core.history import MultiHistory
        from repro.io.formats import dump_jsonl

        ops = []
        for seed in range(3):
            ops.extend(
                practical_history(
                    random.Random(seed + 50), 40, staleness_probability=0.3,
                    max_staleness=2, key=f"reg-{seed}",
                ).operations
            )
        path = tmp_path / "trace.jsonl"
        dump_jsonl(MultiHistory(ops), path)
        kernels = ["object", "columnar"]
        if vector.NUMPY_AVAILABLE:
            kernels.append("numpy")
        outputs = {}
        for kernel in kernels:
            out = _io.StringIO()
            assert main(
                ["verify", str(path), "--k", "2", "--kernel", kernel], out=out
            ) == 0
            outputs[kernel] = out.getvalue()
        assert len(set(outputs.values())) == 1, outputs.keys()


class TestTrustedConstructor:
    def test_trusted_operation_equivalent(self):
        op = trusted_operation(
            write("x", 0.0, 1.0).op_type, "x", 0.0, 1.0,
            key="k", client="c", op_id=12345, weight=2,
        )
        ref = write("x", 0.0, 1.0, key="k", client="c", op_id=12345, weight=2)
        assert op == ref  # op_id equality
        assert (op.op_type, op.value, op.start, op.finish, op.key, op.client,
                op.weight) == (ref.op_type, ref.value, ref.start, ref.finish,
                               ref.key, ref.client, ref.weight)
        assert hash(op) == hash(ref)

    def test_trusted_operation_assigns_fresh_ids(self):
        a = trusted_operation(write("a", 0, 1).op_type, "a", 0.0, 1.0)
        b = trusted_operation(write("b", 0, 1).op_type, "b", 0.0, 1.0)
        assert a.op_id != b.op_id
