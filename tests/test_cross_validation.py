"""Experiments E2 / E5: cross-validate GK, LBT and FZF against the exact oracle.

These are the headline correctness experiments: Theorem 3.1 (LBT) and
Theorem 4.5 (FZF) claim exact agreement with the definition of 2-atomicity,
and the Gibbons–Korach conditions with 1-atomicity.  We validate the claims
empirically on

* an exhaustive family of tiny histories (every read-value assignment over a
  fixed interval skeleton), and
* a randomised family of larger histories,

always comparing against the exponential oracle, which implements the
definition directly.
"""

import itertools
import random

import pytest

from repro.algorithms.exact import verify_k_atomic_exact
from repro.algorithms.fzf import verify_2atomic_fzf
from repro.algorithms.gk import verify_1atomic
from repro.algorithms.lbt import verify_2atomic, verify_2atomic_reference
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.preprocess import has_anomalies, normalize
from tests.conftest import make_random_history


def all_verifiers_agree(history):
    """Assert GK/LBT/FZF verdicts equal the oracle's on a normalised history."""
    expected_1 = bool(verify_k_atomic_exact(history, 1))
    expected_2 = bool(verify_k_atomic_exact(history, 2))
    assert bool(verify_1atomic(history)) == expected_1
    lbt = verify_2atomic(history)
    lbt_ref = verify_2atomic_reference(history)
    fzf = verify_2atomic_fzf(history)
    assert bool(lbt) == expected_2
    assert bool(lbt_ref) == expected_2
    assert bool(fzf) == expected_2
    for result in (lbt, lbt_ref, fzf):
        if result:
            assert result.check_witness(history)
    return expected_1, expected_2


class TestExhaustiveTinyHistories:
    def test_all_read_assignments_over_serial_skeleton(self):
        """Three serial writes + two reads taking every possible value pair."""
        combos = 0
        for v1, v2 in itertools.product(range(3), repeat=2):
            ops = [
                write(0, 0.0, 1.0),
                write(1, 2.0, 3.0),
                write(2, 4.0, 5.0),
                read(v1, 6.0, 7.0),
                read(v2, 8.0, 9.0),
            ]
            h = normalize(History(ops))
            all_verifiers_agree(h)
            combos += 1
        assert combos == 9

    def test_all_read_assignments_over_concurrent_skeleton(self):
        """Two overlapping writes + an overlapping and a trailing read."""
        for v1, v2 in itertools.product(range(2), repeat=2):
            ops = [
                write(0, 0.0, 6.0),
                write(1, 1.0, 7.0),
                read(v1, 5.0, 9.0),
                read(v2, 10.0, 11.0),
            ]
            h = History(ops)
            if has_anomalies(h):
                continue
            all_verifiers_agree(normalize(h))

    def test_all_interval_orderings_of_three_operations(self):
        """Permute the intervals of one write and two reads of it."""
        slots = [(0.0, 2.0), (3.0, 5.0), (6.0, 8.0)]
        for assignment in itertools.permutations(range(3)):
            w_slot, r1_slot, r2_slot = (slots[i] for i in assignment)
            ops = [
                write("v", *w_slot),
                read("v", *r1_slot),
                read("v", *r2_slot),
            ]
            h = History(ops)
            if has_anomalies(h):
                continue
            all_verifiers_agree(normalize(h))


class TestRandomisedCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    def test_small_random_histories(self, seed):
        rng = random.Random(seed)
        validated = 0
        attempts = 0
        while validated < 40 and attempts < 400:
            attempts += 1
            h = make_random_history(
                rng,
                num_writes=rng.randint(1, 5),
                num_reads=rng.randint(0, 5),
                span=rng.choice([3.0, 8.0, 15.0]),
                max_duration=rng.choice([0.5, 2.0, 5.0]),
            )
            if has_anomalies(h):
                continue
            all_verifiers_agree(normalize(h))
            validated += 1
        assert validated >= 30

    @pytest.mark.parametrize("seed", range(3))
    def test_medium_random_histories(self, seed):
        rng = random.Random(1000 + seed)
        validated = 0
        attempts = 0
        while validated < 10 and attempts < 200:
            attempts += 1
            h = make_random_history(
                rng,
                num_writes=rng.randint(4, 7),
                num_reads=rng.randint(3, 8),
                span=rng.choice([5.0, 10.0]),
                max_duration=rng.choice([1.0, 4.0]),
            )
            if has_anomalies(h):
                continue
            all_verifiers_agree(normalize(h))
            validated += 1
        assert validated >= 5

    def test_one_atomic_implies_two_atomic_on_random_inputs(self):
        rng = random.Random(77)
        checked = 0
        while checked < 30:
            h = make_random_history(rng, rng.randint(2, 5), rng.randint(1, 5))
            if has_anomalies(h):
                continue
            h = normalize(h)
            if verify_1atomic(h):
                assert verify_2atomic(h)
                assert verify_2atomic_fzf(h)
            checked += 1
