"""Unit tests for the zone-only partial 2-AV checker (baseline)."""

import random

import pytest

from repro.algorithms.exact import verify_k_atomic_exact
from repro.algorithms.gls import PartialVerdict, verify_2atomic_zones_only
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.preprocess import has_anomalies, normalize
from tests.conftest import make_random_history


class TestDefiniteVerdicts:
    def test_atomic_history_yes(self, atomic_history):
        result = verify_2atomic_zones_only(atomic_history)
        assert result.verdict is PartialVerdict.YES
        assert result.decided
        assert bool(result)

    def test_empty_history_yes(self):
        assert verify_2atomic_zones_only(History([])).verdict is PartialVerdict.YES

    def test_anomalous_history_no(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        assert verify_2atomic_zones_only(h).verdict is PartialVerdict.NO

    def test_three_backward_clusters_in_chunk_no(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 10.0, 11.0),
                write("b1", 2.0, 3.5),
                write("b2", 4.0, 5.5),
                write("b3", 6.0, 7.5),
            ]
        )
        result = verify_2atomic_zones_only(h)
        assert result.verdict is PartialVerdict.NO
        assert "backward" in result.reason

    def test_triple_forward_overlap_no(self):
        # Three forward zones all overlapping around t in [10, 11].
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 10.5, 20.0),
                write("b", 2.0, 3.0),
                read("b", 10.6, 21.0),
                write("c", 4.0, 5.0),
                read("c", 10.7, 22.0),
            ]
        )
        result = verify_2atomic_zones_only(h)
        assert result.verdict is PartialVerdict.NO
        assert "property P" in result.reason

    def test_stale_by_one_is_undecided(self, stale_by_one_history):
        result = verify_2atomic_zones_only(stale_by_one_history)
        assert result.verdict is PartialVerdict.UNKNOWN
        assert not result.decided


class TestSoundness:
    """The partial checker must never contradict the exact oracle."""

    @pytest.mark.parametrize("seed", range(5))
    def test_definite_verdicts_are_correct(self, seed):
        rng = random.Random(seed)
        checked = 0
        attempts = 0
        while checked < 30 and attempts < 300:
            attempts += 1
            h = make_random_history(
                rng, rng.randint(1, 5), rng.randint(0, 5), span=rng.choice([4.0, 10.0])
            )
            if has_anomalies(h):
                continue
            h = normalize(h)
            partial = verify_2atomic_zones_only(h)
            if partial.verdict is PartialVerdict.UNKNOWN:
                continue
            truth = bool(verify_k_atomic_exact(h, 2))
            assert bool(partial) == truth
            checked += 1
        assert checked >= 10
