"""Tests for the foreign-trace interop layer and the format registry.

Covers the acceptance contract of the interop adapters: a Jepsen-style
fixture verifies to the *identical* verdict as its hand-converted JSONL twin
(library and CLI), round trips (import → verify → export → re-import)
preserve verdicts, and malformed records fail with the same
:class:`TraceFormatError` semantics as the native JSONL reader.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.api import verify_trace
from repro.core.errors import TraceFormatError
from repro.core.history import MultiHistory
from repro.core.operation import read, write
from repro.engine import Engine
from repro.io import (
    FORMATS,
    available_formats,
    detect_format,
    dump_jepsen,
    dump_jsonl,
    dump_porcupine,
    dump_trace,
    get_format,
    iter_jepsen,
    iter_porcupine,
    load_jepsen,
    load_porcupine,
    load_trace,
    register_format,
    stream_trace,
)
from repro.io.registry import TraceFormat

DATA = Path(__file__).parent / "data"
JEPSEN_FIXTURE = DATA / "jepsen_history.json"
JSONL_TWIN = DATA / "jepsen_history.jsonl"
PORCUPINE_FIXTURE = DATA / "operations.porcupine.json"


def op_tuples(trace: MultiHistory):
    """Verification-relevant content, ignoring op ids and client identity."""
    result = {}
    for key in trace.keys():
        result[key] = sorted(
            (op.op_type.value, op.value, op.start, op.finish)
            for op in trace[key].operations
        )
    return result


def verdicts(trace: MultiHistory, k: int):
    return {key: bool(result) for key, result in verify_trace(trace, k).items()}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_formats_registered(self):
        assert {"jsonl", "csv", "jepsen", "porcupine"} <= set(FORMATS)
        assert set(available_formats()) == set(FORMATS)

    def test_detect_by_extension(self):
        assert detect_format("t.jsonl").name == "jsonl"
        assert detect_format("t.ndjson").name == "jsonl"
        assert detect_format("T.CSV").name == "csv"
        assert detect_format("h.jepsen").name == "jepsen"
        assert detect_format("h.jepsen.json").name == "jepsen"
        assert detect_format("ops.porcupine.json").name == "porcupine"

    def test_unknown_extension_defaults_to_jsonl(self):
        assert detect_format("trace.log").name == "jsonl"
        assert detect_format("trace").name == "jsonl"

    def test_get_format_case_insensitive_and_unknown(self):
        assert get_format(" Jepsen ").name == "jepsen"
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            get_format("edn")

    def test_register_rejects_collisions(self):
        with pytest.raises(TraceFormatError, match="already registered"):
            register_format(
                TraceFormat(name="jsonl", description="", extensions=(), reader=iter_jepsen)
            )
        with pytest.raises(TraceFormatError, match="extension"):
            register_format(
                TraceFormat(
                    name="fresh", description="", extensions=(".csv",), reader=iter_jepsen
                )
            )
        assert "fresh" not in FORMATS

    def test_explicit_format_overrides_extension(self, tmp_path):
        # A Jepsen history in a .json file is not sniffable; --format wins.
        path = tmp_path / "history.json"
        path.write_text(JEPSEN_FIXTURE.read_text())
        trace = load_trace(path, fmt="jepsen")
        assert set(trace.keys()) == {"x", "y"}

    def test_dump_trace_routes_by_format(self, tmp_path, atomic_history):
        path = tmp_path / "out.jepsen.json"
        count = dump_trace(atomic_history, path)
        assert count == len(atomic_history)
        assert op_tuples(load_trace(path)) == op_tuples(
            MultiHistory(list(atomic_history.operations))
        )


# ----------------------------------------------------------------------
# Golden Jepsen fixture: parity with the hand-converted JSONL twin
# ----------------------------------------------------------------------
class TestJepsenFixtureParity:
    def test_fixture_decodes_to_the_hand_converted_operations(self):
        assert op_tuples(load_jepsen(JEPSEN_FIXTURE)) == op_tuples(
            load_trace(JSONL_TWIN)
        )

    @pytest.mark.parametrize("k", [1, 2])
    def test_library_verdicts_identical(self, k):
        jepsen = load_trace(JEPSEN_FIXTURE, fmt="jepsen")
        jsonl = load_trace(JSONL_TWIN)
        assert verdicts(jepsen, k) == verdicts(jsonl, k)
        # The fixture is stale by one on register x: 2-atomic, not 1-atomic.
        assert verdicts(jepsen, 1) == {"x": False, "y": True}
        assert verdicts(jepsen, 2) == {"x": True, "y": True}

    def test_engine_verify_file_accepts_foreign_formats(self):
        report = Engine().verify_file(JEPSEN_FIXTURE, 2, fmt="jepsen")
        assert report.is_k_atomic
        report = Engine().verify_file(JEPSEN_FIXTURE, 1, fmt="jepsen")
        assert not report.is_k_atomic
        # Without fmt the plain .json name sniffs to the JSONL default, which
        # chokes on the array form — explicit --format exists for exactly this.
        with pytest.raises(TraceFormatError):
            Engine().verify_file(JEPSEN_FIXTURE, 1).is_k_atomic

    def test_cli_verdict_identical_to_jsonl(self):
        buf_jepsen, buf_jsonl = io.StringIO(), io.StringIO()
        code_jepsen = main(
            ["verify", str(JEPSEN_FIXTURE), "--k", "2", "--format", "jepsen", "--strict"],
            out=buf_jepsen,
        )
        code_jsonl = main(["verify", str(JSONL_TWIN), "--k", "2", "--strict"], out=buf_jsonl)
        assert code_jepsen == code_jsonl == 0
        assert "2/2 registers are 2-atomic" in buf_jepsen.getvalue()
        assert "2/2 registers are 2-atomic" in buf_jsonl.getvalue()

        assert main(
            ["verify", str(JEPSEN_FIXTURE), "--k", "1", "--format", "jepsen", "--strict"],
            out=io.StringIO(),
        ) == 1
        assert main(
            ["verify", str(JSONL_TWIN), "--k", "1", "--strict"], out=io.StringIO()
        ) == 1


# ----------------------------------------------------------------------
# Jepsen event semantics
# ----------------------------------------------------------------------
class TestJepsenSemantics:
    def write_events(self, tmp_path, events):
        path = tmp_path / "h.jepsen.json"
        path.write_text(json.dumps(events))
        return path

    def test_fail_drops_the_operation(self, tmp_path):
        path = self.write_events(
            tmp_path,
            [
                {"type": "invoke", "f": "write", "process": 0, "value": 1, "time": 0},
                {"type": "ok", "f": "write", "process": 0, "value": 1, "time": 5},
                {"type": "invoke", "f": "write", "process": 0, "value": 2, "time": 10},
                {"type": "fail", "f": "write", "process": 0, "value": 2, "time": 15},
            ],
        )
        ops = list(iter_jepsen(path))
        assert [op.value for op in ops] == [1]

    def test_info_write_extends_past_end_of_history(self, tmp_path):
        path = self.write_events(
            tmp_path,
            [
                {"type": "invoke", "f": "write", "process": 0, "value": 1, "time": 0},
                {"type": "ok", "f": "write", "process": 0, "value": 1, "time": 5},
                {"type": "invoke", "f": "write", "process": 1, "value": 2, "time": 10},
                {"type": "info", "f": "write", "process": 1, "value": 2, "time": 12},
                {"type": "invoke", "f": "read", "process": 0, "value": None, "time": 20},
                {"type": "ok", "f": "read", "process": 0, "value": 2, "time": 30},
            ],
        )
        ops = list(iter_jepsen(path))
        by_value = {op.value: op for op in ops}
        assert set(by_value) == {1, 2}
        # The indeterminate write stays open past the last event, so the read
        # of its value is concurrent with it — no anomaly, history verifies.
        assert by_value[2].finish > 30
        assert by_value[2].start == 10

    def test_info_read_is_dropped_and_unclosed_invocations_crash_like_info(self, tmp_path):
        path = self.write_events(
            tmp_path,
            [
                {"type": "invoke", "f": "read", "process": 0, "value": None, "time": 0},
                {"type": "info", "f": "read", "process": 0, "value": None, "time": 3},
                {"type": "invoke", "f": "write", "process": 1, "value": 7, "time": 5},
            ],
        )
        ops = list(iter_jepsen(path))
        assert [(op.value, op.is_write) for op in ops] == [(7, True)]

    def test_edn_keywords_and_jsonl_event_stream(self, tmp_path):
        path = tmp_path / "h.jepsen"
        lines = [
            {"type": ":invoke", "f": ":write", "process": 0, "value": 1},
            {"type": ":ok", "f": ":write", "process": 0, "value": 1},
            {"type": ":invoke", "f": ":read", "process": 1, "value": None},
            {"type": ":ok", "f": ":read", "process": 1, "value": 1},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        ops = list(iter_jepsen(path))
        # No time field: event positions serve as the logical clock.
        assert [(op.is_write, op.value) for op in ops] == [(True, 1), (False, 1)]
        assert ops[0].start < ops[0].finish

    @pytest.mark.parametrize(
        "events, message",
        [
            ([{"type": "later", "f": "read", "process": 0}], "unknown event type"),
            ([{"type": "invoke", "f": "cas", "process": 0}], "unknown function"),
            ([{"type": "invoke", "f": "write", "process": 0, "value": None}], "no value"),
            ([{"type": "ok", "f": "read", "process": 0, "value": 1}], "no open invocation"),
            (
                [
                    {"type": "invoke", "f": "read", "process": 0},
                    {"type": "invoke", "f": "read", "process": 0},
                ],
                "still open",
            ),
            (
                [{"type": "invoke", "f": "read", "process": 0, "time": "soon"}],
                "must be numeric",
            ),
            (["not-an-object"], "expected a JSON object"),
        ],
    )
    def test_malformed_events_raise_trace_format_error(self, tmp_path, events, message):
        path = self.write_events(tmp_path, events)
        with pytest.raises(TraceFormatError, match=message):
            list(iter_jepsen(path))

    def test_invalid_json_matches_native_reader_behaviour(self, tmp_path):
        path = tmp_path / "bad.jepsen"
        path.write_text('{"type": "invoke", "f": "read"\n')
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            list(iter_jepsen(path))


# ----------------------------------------------------------------------
# Porcupine logs
# ----------------------------------------------------------------------
class TestPorcupine:
    def test_fixture_decodes_mixed_field_spellings(self):
        trace = load_porcupine(PORCUPINE_FIXTURE)
        assert set(trace.keys()) == {"x"}
        assert verdicts(trace, 1) == {"x": False}
        assert verdicts(trace, 2) == {"x": True}

    def test_sniffed_by_extension(self):
        assert detect_format(PORCUPINE_FIXTURE).name == "porcupine"
        assert op_tuples(load_trace(PORCUPINE_FIXTURE)) == op_tuples(
            load_porcupine(PORCUPINE_FIXTURE)
        )

    @pytest.mark.parametrize(
        "record, message",
        [
            ({"call": 0, "return": 1}, "no input object"),
            ({"call": 0, "return": 1, "input": {"op": "cas"}}, "unknown operation"),
            ({"call": 5, "return": 5, "input": {"op": "read"}}, "not after"),
            ({"call": "x", "return": 1, "input": {"op": "read"}}, "must be numeric"),
            ({"call": 0, "return": 1, "input": {"op": "write"}}, "no input value"),
        ],
    )
    def test_malformed_records_raise_trace_format_error(self, tmp_path, record, message):
        path = tmp_path / "ops.porcupine"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TraceFormatError, match=message):
            list(iter_porcupine(path))


# ----------------------------------------------------------------------
# Round trips: import → verify → export → re-import parity
# ----------------------------------------------------------------------
class TestRoundTrips:
    def multi_register_trace(self):
        ops = [
            write(1, 0.0, 1.0, key="x", client="a"),
            write(2, 0.5, 1.5, key="x", client="b"),
            read(1, 2.0, 3.0, key="x", client="a"),
            read(2, 3.5, 4.0, key="x", client="b"),
            write(10, 0.0, 0.5, key="y"),
            read(10, 1.0, 2.0, key="y"),
            # Overlapping ops from one client: exporters must not collapse
            # them onto one single-threaded Jepsen process.
            write(11, 2.5, 6.0, key="y", client="a"),
            read(11, 3.0, 6.5, key="y", client="a"),
        ]
        return MultiHistory(ops)

    @pytest.mark.parametrize("fmt", ["jepsen", "porcupine", "jsonl", "csv"])
    def test_export_reimport_preserves_operations_and_verdicts(self, tmp_path, fmt):
        trace = self.multi_register_trace()
        path = tmp_path / f"trace.{fmt}"
        count = dump_trace(trace, path, fmt)
        assert count == sum(len(trace[key]) for key in trace.keys())
        back = load_trace(path, fmt)
        expected = op_tuples(trace)
        if fmt == "csv":  # CSV stores values as strings, by design
            expected = {
                key: sorted((t, str(v), s, f) for t, v, s, f in rows)
                for key, rows in expected.items()
            }
        assert op_tuples(back) == expected
        for k in (1, 2):
            assert verdicts(back, k) == verdicts(trace, k)

    @pytest.mark.parametrize("fmt", ["jepsen", "porcupine"])
    def test_double_round_trip_is_stable(self, tmp_path, fmt):
        first = tmp_path / f"first.{fmt}"
        second = tmp_path / f"second.{fmt}"
        dump_trace(self.multi_register_trace(), first, fmt)
        dump_trace(load_trace(first, fmt), second, fmt)
        assert op_tuples(load_trace(first, fmt)) == op_tuples(load_trace(second, fmt))

    def test_jepsen_fixture_round_trip(self, tmp_path):
        trace = load_trace(JEPSEN_FIXTURE, fmt="jepsen")
        out = tmp_path / "exported.jepsen.json"
        dump_jepsen(trace, out)
        assert op_tuples(load_trace(out)) == op_tuples(trace)

    def test_cli_convert_round_trip(self, tmp_path):
        target = tmp_path / "converted.porcupine"
        out = io.StringIO()
        assert main(
            ["convert", str(JEPSEN_FIXTURE), str(target), "--from", "jepsen"], out=out
        ) == 0
        assert "converted 8 operations" in out.getvalue()
        assert op_tuples(load_trace(target)) == op_tuples(
            load_trace(JEPSEN_FIXTURE, fmt="jepsen")
        )

    def test_cli_convert_reports_errors(self, tmp_path):
        bad = tmp_path / "bad.jepsen"
        bad.write_text('{"type": "nope"}\n')
        out = io.StringIO()
        assert main(["convert", str(bad), str(tmp_path / "out.jsonl")], out=out) == 2
        assert "error:" in out.getvalue()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliFormatFlag:
    def test_formats_listing(self):
        out = io.StringIO()
        assert main(["formats"], out=out) == 0
        for name in ("jsonl", "csv", "jepsen", "porcupine"):
            assert name in out.getvalue()

    def test_audit_accepts_format(self):
        out = io.StringIO()
        assert main(["audit", str(JEPSEN_FIXTURE), "--format", "jepsen"], out=out) == 0
        assert "staleness spectrum" in out.getvalue()

    def test_watch_accepts_format(self):
        out = io.StringIO()
        assert main(
            ["watch", str(JEPSEN_FIXTURE), "--format", "jepsen", "--window", "4"],
            out=out,
        ) == 0
        assert "registers" in out.getvalue()

    def test_watch_rejects_foreign_format_on_stdin_and_follow(self, tmp_path):
        out = io.StringIO()
        assert main(["watch", "-", "--format", "jepsen"], out=out) == 2
        assert "stdin" in out.getvalue()
        trace = tmp_path / "t.jsonl"
        dump_jsonl([write("a", 0.0, 1.0, key="x")], trace)
        out = io.StringIO()
        assert main(
            ["watch", str(trace), "--follow", "--format", "csv", "--idle-timeout", "0.05"],
            out=out,
        ) == 2
        assert "follow" in out.getvalue()
        # A sniffed foreign extension must hit the same guard as --format.
        out = io.StringIO()
        assert main(
            ["watch", str(JEPSEN_FIXTURE.parent / "x.jepsen.json"), "--follow"],
            out=out,
        ) == 2
        assert "jepsen" in out.getvalue()

    def test_streaming_engine_verify_file(self):
        from repro.engine import StreamingEngine

        report = StreamingEngine().verify_file(JEPSEN_FIXTURE, 2, fmt="jepsen")
        assert report.is_k_atomic
        assert not StreamingEngine().verify_file(JSONL_TWIN, 1).is_k_atomic
