"""Unit tests for the staleness and structural metrics."""

import pytest

from repro.analysis.metrics import (
    profile_history,
    read_time_lag,
    read_value_lag,
    staleness_stats,
)
from repro.core.history import History
from repro.core.operation import read, write
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestReadValueLag:
    def test_fresh_read_has_zero_lag(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert read_value_lag(h, h.reads[0]) == 0

    def test_lag_counts_newer_preceding_writes(self, stale_by_two_history):
        (r,) = stale_by_two_history.reads
        assert read_value_lag(stale_by_two_history, r) == 2

    def test_concurrent_newer_write_not_counted(self):
        # The newer write overlaps the read, so it is not *forced* to intervene.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 10.0),
                read("a", 3.0, 4.0),
            ]
        )
        assert read_value_lag(h, h.reads[0]) == 0

    def test_lag_is_a_lower_bound_on_minimal_k(self):
        h = exactly_k_atomic_history(3, 6)
        worst = max(read_value_lag(h, r) for r in h.reads)
        assert worst == 2  # k - 1 intervening writes

    def test_rejects_write_argument(self):
        h = History([write("a", 0.0, 1.0)])
        with pytest.raises(ValueError):
            read_value_lag(h, h.writes[0])


class TestReadTimeLag:
    def test_fresh_read_has_zero_time_lag(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert read_time_lag(h, h.reads[0]) == 0.0

    def test_stale_read_time_lag_measures_gap(self):
        h = History([write("a", 0.0, 1.0), write("b", 2.0, 3.0), read("a", 10.0, 11.0)])
        assert read_time_lag(h, h.reads[0]) == pytest.approx(7.0)


class TestStalenessStats:
    def test_all_fresh(self):
        stats = staleness_stats(serial_history(5, 2))
        assert stats.stale_reads == 0
        assert stats.stale_fraction == 0.0
        assert stats.max_value_lag == 0

    def test_exactly_k_history_stats(self):
        stats = staleness_stats(exactly_k_atomic_history(3, 6))
        assert stats.max_value_lag == 2
        assert stats.stale_fraction == 1.0
        assert stats.implies_not_k_atomic(2)
        assert not stats.implies_not_k_atomic(3)

    def test_histogram_sums_to_read_count(self):
        h = exactly_k_atomic_history(2, 5, reads_per_write=2)
        stats = staleness_stats(h)
        assert sum(count for _, count in stats.lag_histogram) == stats.num_reads

    def test_empty_reads(self):
        stats = staleness_stats(History([write("a", 0.0, 1.0)]))
        assert stats.num_reads == 0
        assert stats.stale_fraction == 0.0


class TestHistoryProfile:
    def test_profile_counts(self):
        h = exactly_k_atomic_history(2, 5, reads_per_write=1)
        profile = profile_history(h)
        assert profile.num_operations == len(h)
        assert profile.num_writes == 5
        assert profile.num_reads == 4
        assert profile.max_concurrent_writes == 1
        assert profile.write_fraction == pytest.approx(5 / 9)

    def test_profile_cluster_breakdown(self):
        h = History(
            [
                write("fwd", 0.0, 1.0),
                read("fwd", 5.0, 6.0),
                write("bwd", 10.0, 20.0),
            ]
        )
        profile = profile_history(h)
        assert profile.num_forward_clusters == 1
        assert profile.num_backward_clusters == 1
        assert profile.num_chunks == 1
        assert profile.num_dangling_clusters == 1

    def test_empty_history_profile(self):
        profile = profile_history(History([]))
        assert profile.num_operations == 0
        assert profile.write_fraction == 0.0

    def test_duration(self):
        h = History([write("a", 1.0, 2.0), read("a", 3.0, 9.0)])
        assert profile_history(h).duration == pytest.approx(8.0)
