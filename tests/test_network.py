"""Unit tests for the network model (latency, loss, partitions)."""

import random

import pytest

from repro.core.errors import SimulationError
from repro.simulation.events import EventLoop
from repro.simulation.network import (
    ExponentialLatency,
    FixedLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)


class TestLatencyModels:
    def test_fixed_latency(self):
        model = FixedLatency(latency_ms=3.0)
        assert model.sample(random.Random(0)) == 3.0
        assert model.mean() == 3.0

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(low_ms=1.0, high_ms=2.0)
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(1.0 <= s <= 2.0 for s in samples)
        assert model.mean() == pytest.approx(1.5)

    def test_exponential_latency_positive_with_floor(self):
        model = ExponentialLatency(mean_ms=2.0, floor_ms=0.5)
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(s >= 0.5 for s in samples)
        assert model.mean() == pytest.approx(2.5)

    def test_lognormal_latency_positive(self):
        model = LogNormalLatency(median_ms=1.5, sigma=0.5)
        rng = random.Random(0)
        assert all(model.sample(rng) > 0 for _ in range(200))

    def test_empirical_means_roughly_match(self):
        rng = random.Random(42)
        for model in (UniformLatency(1.0, 3.0), ExponentialLatency(2.0, 0.0)):
            samples = [model.sample(rng) for _ in range(5000)]
            assert sum(samples) / len(samples) == pytest.approx(model.mean(), rel=0.15)


class TestDelivery:
    def test_message_delivered_after_latency(self):
        loop = EventLoop()
        net = Network(loop, FixedLatency(2.0), random.Random(0))
        seen = []
        net.send("a", "b", lambda payload: seen.append((loop.now, payload)), "hello")
        loop.run()
        assert seen == [(2.0, "hello")]
        assert net.stats.sent == 1 and net.stats.delivered == 1

    def test_messages_can_reorder_under_variable_latency(self):
        loop = EventLoop()
        rng = random.Random(3)
        net = Network(loop, UniformLatency(0.1, 10.0), rng)
        arrivals = []
        for i in range(50):
            net.send("a", "b", arrivals.append, i)
        loop.run()
        assert sorted(arrivals) == list(range(50))
        assert arrivals != list(range(50))  # at least one reordering happened

    def test_drop_probability_drops_messages(self):
        loop = EventLoop()
        net = Network(loop, FixedLatency(1.0), random.Random(1), drop_probability=0.5)
        seen = []
        for i in range(200):
            net.send("a", "b", seen.append, i)
        loop.run()
        assert 0 < len(seen) < 200
        assert net.stats.dropped == 200 - len(seen)

    def test_invalid_drop_probability_rejected(self):
        with pytest.raises(SimulationError):
            Network(EventLoop(), FixedLatency(), random.Random(0), drop_probability=1.5)


class TestPartitions:
    def test_partition_blocks_both_directions(self):
        loop = EventLoop()
        net = Network(loop, FixedLatency(1.0), random.Random(0))
        net.partition("a", "b")
        seen = []
        net.send("a", "b", seen.append, 1)
        net.send("b", "a", seen.append, 2)
        loop.run()
        assert seen == []
        assert net.stats.blocked_by_partition == 2

    def test_heal_restores_traffic(self):
        loop = EventLoop()
        net = Network(loop, FixedLatency(1.0), random.Random(0))
        net.partition("a", "b")
        net.heal("a", "b")
        seen = []
        net.send("a", "b", seen.append, 1)
        loop.run()
        assert seen == [1]

    def test_partition_is_pairwise(self):
        loop = EventLoop()
        net = Network(loop, FixedLatency(1.0), random.Random(0))
        net.partition("a", "b")
        seen = []
        net.send("a", "c", seen.append, "ok")
        loop.run()
        assert seen == ["ok"]
        assert net.is_partitioned("a", "b")
        assert not net.is_partitioned("a", "c")
