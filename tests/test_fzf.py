"""Unit tests for the FZF 2-AV algorithm (Section IV, Figure 4)."""

import pytest

from repro.algorithms.fzf import (
    candidate_orders,
    check_viable,
    is_2atomic_fzf,
    verify_2atomic_fzf,
)
from repro.algorithms.lbt import verify_2atomic
from repro.core.chunks import compute_chunk_set
from repro.core.history import History
from repro.core.operation import read, write
from repro.workloads.adversarial import (
    concurrent_batch_history,
    non_2atomic_batch_history,
)
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestAcceptance:
    def test_atomic_history_accepted(self, atomic_history):
        assert is_2atomic_fzf(atomic_history)

    def test_stale_by_one_accepted(self, stale_by_one_history):
        result = verify_2atomic_fzf(stale_by_one_history)
        assert result
        assert result.algorithm == "FZF"

    def test_stale_by_two_rejected(self, stale_by_two_history):
        result = verify_2atomic_fzf(stale_by_two_history)
        assert not result
        assert "chunk" in result.reason

    def test_empty_history_accepted(self):
        assert verify_2atomic_fzf(History([]))

    def test_anomalous_history_rejected(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        assert not verify_2atomic_fzf(h)

    def test_backward_only_history_accepted(self):
        # All clusters backward (lone writes): trivially 1-atomic, hence 2-atomic.
        h = History([write(i, float(i), float(i) + 10.0) for i in range(5)])
        assert is_2atomic_fzf(h)

    def test_exactly_2_atomic_accepted_and_3_rejected(self):
        assert is_2atomic_fzf(exactly_k_atomic_history(2, 6))
        assert not is_2atomic_fzf(exactly_k_atomic_history(3, 6))

    def test_concurrent_batches_accepted(self):
        assert is_2atomic_fzf(concurrent_batch_history(4, 5))

    def test_non_2atomic_batches_rejected(self):
        assert not is_2atomic_fzf(non_2atomic_batch_history(3, 4))

    def test_preprocess_flag(self):
        h = History([write("a", 0.0, 10.0), read("a", 1.0, 3.0), write("b", 11.0, 12.0)])
        assert verify_2atomic_fzf(h, preprocess=True)


class TestWitness:
    def test_witness_valid(self, stale_by_one_history):
        result = verify_2atomic_fzf(stale_by_one_history)
        assert result.check_witness(stale_by_one_history)

    def test_witness_with_dangling_clusters(self):
        # A forward chunk plus a far-away lone write (dangling backward cluster).
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 5.0, 6.0),
                write("lonely", 20.0, 30.0),
            ]
        )
        result = verify_2atomic_fzf(h)
        assert result
        assert result.check_witness(h)

    def test_witness_covers_all_operations(self):
        h = concurrent_batch_history(3, 3)
        result = verify_2atomic_fzf(h)
        assert set(result.require_witness()) == set(h.operations)

    def test_serial_history_witness(self):
        h = serial_history(10, 1)
        result = verify_2atomic_fzf(h)
        assert result.check_witness(h)


class TestCandidateOrders:
    def _chunk_of(self, history):
        chunk_set = compute_chunk_set(history)
        assert chunk_set.num_chunks == 1
        return chunk_set.chunks[0]

    def test_no_backward_clusters_gives_two_orders(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 4.0, 5.0),
                write("b", 2.0, 3.0),
                read("b", 6.0, 7.0),
            ]
        )
        chunk = self._chunk_of(h)
        orders = candidate_orders(chunk)
        assert 1 <= len(orders) <= 2

    def test_single_forward_cluster_gives_one_order(self):
        h = History([write("a", 0.0, 1.0), read("a", 4.0, 5.0)])
        chunk = self._chunk_of(h)
        assert len(candidate_orders(chunk)) == 1

    def test_one_backward_cluster_gives_up_to_four_orders(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 10.0, 11.0),
                write("inner", 3.0, 5.0),
            ]
        )
        chunk = self._chunk_of(h)
        orders = candidate_orders(chunk)
        assert len(orders) in (2, 3, 4)
        # Every order contains all dictating writes exactly once.
        for order in orders:
            assert len(order) == 2
            assert len(set(order)) == 2

    def test_three_backward_clusters_gives_empty_set(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 10.0, 11.0),
                write("b1", 2.0, 3.5),
                write("b2", 4.0, 5.5),
                write("b3", 6.0, 7.5),
            ]
        )
        chunk = self._chunk_of(h)
        assert chunk.num_backward == 3
        assert candidate_orders(chunk) == []

    def test_tf_sorted_by_zone_low_endpoint(self):
        h = History(
            [
                write("x", 0.0, 1.0),
                read("x", 4.0, 5.0),
                write("y", 2.0, 3.0),
                read("y", 6.0, 7.0),
                write("z", 4.5, 5.5),
                read("z", 8.0, 9.0),
            ]
        )
        chunk = self._chunk_of(h)
        orders = candidate_orders(chunk)
        tf = orders[0]
        lows = []
        for w in tf:
            cluster = next(cl for cl in chunk.forward_clusters if cl.write is w)
            lows.append(cluster.zone.low)
        assert lows == sorted(lows)

    def test_tf_prime_swaps_first_two(self):
        h = History(
            [
                write("x", 0.0, 1.0),
                read("x", 4.0, 5.0),
                write("y", 2.0, 3.0),
                read("y", 6.0, 7.0),
            ]
        )
        chunk = self._chunk_of(h)
        orders = candidate_orders(chunk)
        assert len(orders) == 2
        assert orders[0][0] is orders[1][1]
        assert orders[0][1] is orders[1][0]


class TestViabilitySubroutine:
    def test_viable_order_returns_extension(self, stale_by_one_history):
        h = stale_by_one_history
        writes = list(h.writes)
        dictating = {r: h.dictating_write(r) for r in h.reads}
        dictated = {w: h.dictated_reads(w) for w in h.writes}
        extension = check_viable(writes, h.operations, dictating, dictated)
        assert extension is not None
        assert h.is_k_atomic_total_order(extension, 2)

    def test_order_contradicting_precedence_is_rejected(self, stale_by_one_history):
        h = stale_by_one_history
        writes = list(reversed(h.writes))  # b before a contradicts a < b? no: a<b real time -> reversed is invalid
        dictating = {r: h.dictating_write(r) for r in h.reads}
        dictated = {w: h.dictated_reads(w) for w in h.writes}
        assert check_viable(writes, h.operations, dictating, dictated) is None

    def test_order_missing_a_write_is_rejected(self, stale_by_one_history):
        h = stale_by_one_history
        writes = [h.writes[0]]
        dictating = {r: h.dictating_write(r) for r in h.reads}
        dictated = {w: h.dictated_reads(w) for w in h.writes}
        assert check_viable(writes, h.operations, dictating, dictated) is None

    def test_separation_two_rejected(self, stale_by_two_history):
        h = stale_by_two_history
        writes = list(h.writes)  # forced order a, b, c; read of a is 2 stale
        dictating = {r: h.dictating_write(r) for r in h.reads}
        dictated = {w: h.dictated_reads(w) for w in h.writes}
        assert check_viable(writes, h.operations, dictating, dictated) is None


class TestAgreementWithLBT:
    GENERATORS = [
        lambda: serial_history(10, 1),
        lambda: exactly_k_atomic_history(2, 7),
        lambda: exactly_k_atomic_history(3, 7),
        lambda: exactly_k_atomic_history(4, 7),
        lambda: concurrent_batch_history(3, 4),
        lambda: non_2atomic_batch_history(2, 4),
    ]

    @pytest.mark.parametrize("make", GENERATORS)
    def test_fzf_matches_lbt(self, make):
        h = make()
        assert bool(verify_2atomic_fzf(h)) == bool(verify_2atomic(h))

    def test_stats_report_chunks(self, stale_by_one_history):
        result = verify_2atomic_fzf(stale_by_one_history)
        assert result.stats["chunks"] >= 1
        assert result.stats["orders_tested"] >= 1
