"""Documentation checks as part of tier-1: the docs cannot silently rot.

Runs the docs build (``docs/check_docs.py``) exactly as CI does, and pins
the load-bearing guarantees directly: the paper-to-code map covers every
registered algorithm and checker, and the generated API reference covers
the curated public surface.
"""

import subprocess
import sys
from pathlib import Path

from repro.algorithms.registry import CHECKERS, REGISTRY

REPO_ROOT = Path(__file__).parent.parent
DOCS = REPO_ROOT / "docs"


def test_docs_build_passes():
    result = subprocess.run(
        [sys.executable, str(DOCS / "check_docs.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, f"docs build failed:\n{result.stderr}"
    assert "docs build OK" in result.stdout


def test_paper_map_covers_every_registered_algorithm():
    text = (DOCS / "paper-map.md").read_text(encoding="utf-8")
    for name in list(REGISTRY) + list(CHECKERS):
        assert f"`{name}`" in text, f"paper-map.md does not cover {name!r}"


def test_api_reference_covers_the_public_surface():
    text = (DOCS / "api.md").read_text(encoding="utf-8")
    for symbol in (
        "repro.core.api.verify",
        "repro.engine.engine.Engine",
        "repro.engine.streaming.StreamingEngine",
        "repro.algorithms.online.Checker",
        "repro.service.server.AuditServer",
        "repro.io.registry.TraceFormat",
        "repro.io.interop.iter_jepsen",
        "repro.experiments.ExperimentSpec",
    ):
        assert f"### `{symbol}`" in text, f"api.md lacks {symbol}"


def test_formats_page_and_cli_cover_every_registered_extension():
    """Registering a trace format obliges docs/formats.md and `repro formats`."""
    import io as _io

    from repro.cli import main
    from repro.io.registry import FORMATS

    page = (DOCS / "formats.md").read_text(encoding="utf-8")
    out = _io.StringIO()
    assert main(["formats"], out=out) == 0
    cli_text = out.getvalue()
    for fmt in FORMATS.values():
        assert fmt.name in cli_text, f"`repro formats` does not list {fmt.name!r}"
        for extension in fmt.extensions:
            assert extension in page, (
                f"docs/formats.md does not document the {extension!r} extension "
                f"of the {fmt.name!r} format"
            )
            assert extension in cli_text, (
                f"`repro formats` does not show the {extension!r} extension"
            )


def test_docs_pages_exist():
    for page in (
        "index.md",
        "architecture.md",
        "paper-map.md",
        "verification.md",
        "formats.md",
        "experiments.md",
        "api.md",
    ):
        assert (DOCS / page).exists(), f"docs/{page} is missing"
