"""Unit tests for the chunk decomposition (FZF Stage 1)."""

import pytest

from repro.core.chunks import compute_chunk_set
from repro.core.history import History
from repro.core.operation import read, write


def forward_cluster_ops(value, low, high):
    """A write+read pair whose zone is the forward interval [low, high]."""
    return [write(value, low - 0.9, low, key=None), read(value, high, high + 0.37)]


def backward_cluster_ops(value, low, high):
    """A lone write spanning [low, high]: its zone is backward on [low, high]."""
    return [write(value, low, high)]


class TestBasicDecomposition:
    def test_single_forward_cluster_is_one_chunk(self):
        h = History(forward_cluster_ops("a", 1.0, 5.0))
        cs = compute_chunk_set(h)
        assert cs.num_chunks == 1
        assert cs.num_dangling == 0
        assert cs.chunks[0].num_forward == 1

    def test_single_backward_cluster_is_dangling(self):
        h = History(backward_cluster_ops("a", 1.0, 5.0))
        cs = compute_chunk_set(h)
        assert cs.num_chunks == 0
        assert cs.num_dangling == 1

    def test_overlapping_forward_zones_merge_into_one_chunk(self):
        ops = forward_cluster_ops("a", 1.0, 5.0) + forward_cluster_ops("b", 4.0, 9.0)
        cs = compute_chunk_set(History(ops))
        assert cs.num_chunks == 1
        assert cs.chunks[0].num_forward == 2

    def test_disjoint_forward_zones_make_separate_chunks(self):
        ops = forward_cluster_ops("a", 1.0, 5.0) + forward_cluster_ops("b", 7.0, 11.0)
        cs = compute_chunk_set(History(ops))
        assert cs.num_chunks == 2

    def test_backward_inside_forward_interval_joins_chunk(self):
        ops = forward_cluster_ops("a", 1.0, 10.0) + backward_cluster_ops("b", 3.0, 6.0)
        cs = compute_chunk_set(History(ops))
        assert cs.num_chunks == 1
        assert cs.chunks[0].num_backward == 1
        assert cs.num_dangling == 0

    def test_backward_outside_forward_interval_dangles(self):
        ops = forward_cluster_ops("a", 1.0, 5.0) + backward_cluster_ops("b", 20.0, 25.0)
        cs = compute_chunk_set(History(ops))
        assert cs.num_chunks == 1
        assert cs.num_dangling == 1

    def test_backward_straddling_chunk_boundary_dangles(self):
        # Backward zone overlaps the chunk interval but is not contained in it.
        ops = forward_cluster_ops("a", 1.0, 5.0) + backward_cluster_ops("b", 4.0, 9.0)
        cs = compute_chunk_set(History(ops))
        assert cs.num_chunks == 1
        assert cs.num_dangling == 1

    def test_empty_history(self):
        cs = compute_chunk_set(History([]))
        assert cs.num_chunks == 0 and cs.num_dangling == 0

    def test_chunk_interval_and_endpoints(self):
        ops = forward_cluster_ops("a", 1.0, 5.0) + forward_cluster_ops("b", 4.0, 9.0)
        cs = compute_chunk_set(History(ops))
        chunk = cs.chunks[0]
        assert chunk.interval == (1.0, 9.0)
        assert chunk.low == 1.0 and chunk.high == 9.0

    def test_chunks_sorted_by_interval(self):
        ops = (
            forward_cluster_ops("late", 20.0, 24.0)
            + forward_cluster_ops("early", 1.0, 5.0)
        )
        cs = compute_chunk_set(History(ops))
        assert cs.chunks[0].interval[0] < cs.chunks[1].interval[0]

    def test_chunk_operations_and_projection(self):
        ops = forward_cluster_ops("a", 1.0, 5.0) + backward_cluster_ops("b", 2.0, 4.0)
        h = History(ops)
        cs = compute_chunk_set(h)
        chunk = cs.chunks[0]
        assert len(chunk.operations()) == 3
        assert len(chunk.projection(h)) == 3

    def test_forward_clusters_sorted_by_low_endpoint_within_chunk(self):
        ops = (
            forward_cluster_ops("b", 4.0, 9.0)
            + forward_cluster_ops("a", 1.0, 5.0)
            + forward_cluster_ops("c", 8.0, 12.0)
        )
        cs = compute_chunk_set(History(ops))
        chunk = cs.chunks[0]
        lows = [cl.zone.low for cl in chunk.forward_clusters]
        assert lows == sorted(lows)

    def test_every_forward_cluster_belongs_to_some_chunk(self):
        ops = []
        bounds = [(1.0, 4.0), (3.0, 8.0), (10.0, 12.0), (20.0, 30.0), (25.0, 40.0)]
        for i, (lo, hi) in enumerate(bounds):
            ops += forward_cluster_ops(f"f{i}", lo, hi)
        cs = compute_chunk_set(History(ops))
        total_forward = sum(chunk.num_forward for chunk in cs.chunks)
        assert total_forward == len(bounds)

    def test_dangling_clusters_are_all_backward(self):
        ops = (
            forward_cluster_ops("a", 1.0, 5.0)
            + backward_cluster_ops("b", 7.0, 9.0)
            + backward_cluster_ops("c", 30.0, 31.0)
        )
        cs = compute_chunk_set(History(ops))
        assert all(cl.is_backward for cl in cs.dangling)

    def test_largest_chunk_size(self):
        ops = forward_cluster_ops("a", 1.0, 5.0) + forward_cluster_ops("b", 4.0, 9.0)
        cs = compute_chunk_set(History(ops))
        assert cs.largest_chunk_size() == 4
