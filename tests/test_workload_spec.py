"""Unit tests for workload specifications and key selectors."""

import random
from collections import Counter

import pytest

from repro.workloads.spec import (
    HotspotKeys,
    SingleKey,
    UniformKeys,
    WorkloadSpec,
    ZipfianKeys,
)


class TestKeySelectors:
    def test_single_key_always_same(self):
        selector = SingleKey()
        rng = random.Random(0)
        assert {selector.select(rng) for _ in range(20)} == {"key-00000"}
        assert selector.keys() == ["key-00000"]

    def test_uniform_covers_all_keys(self):
        selector = UniformKeys(5)
        rng = random.Random(0)
        seen = {selector.select(rng) for _ in range(500)}
        assert seen == set(selector.keys())
        assert len(selector.keys()) == 5

    def test_uniform_is_roughly_balanced(self):
        selector = UniformKeys(4)
        rng = random.Random(1)
        counts = Counter(selector.select(rng) for _ in range(4000))
        for key in selector.keys():
            assert 800 <= counts[key] <= 1200

    def test_zipfian_prefers_low_ranks(self):
        selector = ZipfianKeys(num_keys=20, theta=0.99)
        rng = random.Random(2)
        counts = Counter(selector.select(rng) for _ in range(5000))
        hottest = counts["key-00000"]
        coldest = counts.get("key-00019", 0)
        assert hottest > 5 * max(coldest, 1)

    def test_zipfian_with_zero_theta_is_uniformish(self):
        selector = ZipfianKeys(num_keys=4, theta=0.0)
        rng = random.Random(3)
        counts = Counter(selector.select(rng) for _ in range(4000))
        assert min(counts.values()) > 700

    def test_hotspot_traffic_share(self):
        selector = HotspotKeys(num_keys=10, hot_fraction=0.1, hot_traffic=0.9)
        rng = random.Random(4)
        counts = Counter(selector.select(rng) for _ in range(5000))
        hot = counts["key-00000"]
        assert hot / 5000 == pytest.approx(0.9, abs=0.05)

    def test_selectors_validate_parameters(self):
        with pytest.raises(ValueError):
            UniformKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(3, theta=-1.0)
        with pytest.raises(ValueError):
            HotspotKeys(5, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotKeys(5, hot_traffic=1.5)

    def test_all_selectors_return_known_keys(self):
        rng = random.Random(5)
        for selector in (UniformKeys(3), ZipfianKeys(3), HotspotKeys(3), SingleKey()):
            keys = set(selector.keys())
            assert all(selector.select(rng) in keys for _ in range(50))


class TestWorkloadSpec:
    def test_total_operations(self):
        spec = WorkloadSpec(num_clients=4, operations_per_client=25)
        assert spec.total_operations == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_clients=0)
        with pytest.raises(ValueError):
            WorkloadSpec(operations_per_client=0)
        with pytest.raises(ValueError):
            WorkloadSpec(write_ratio=2.0)
        with pytest.raises(ValueError):
            WorkloadSpec(mean_think_time_ms=-1.0)

    def test_client_rng_deterministic_and_distinct(self):
        spec = WorkloadSpec(seed=9)
        first = spec.client_rng(0).random()
        again = spec.client_rng(0).random()
        other = spec.client_rng(1).random()
        assert first == again
        assert first != other

    def test_default_key_selector_is_single_key(self):
        assert isinstance(WorkloadSpec().key_selector, SingleKey)
