"""Unit tests for clusters and zones (Gibbons–Korach terminology)."""

import pytest

from repro.core.errors import HistoryError
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.zones import Zone, build_clusters, zone_table, zones_of


class TestZoneGeometry:
    def test_forward_zone(self):
        z = Zone(min_finish=1.0, max_start=5.0)
        assert z.is_forward and not z.is_backward
        assert z.low == 1.0 and z.high == 5.0
        assert z.length == 4.0

    def test_backward_zone(self):
        z = Zone(min_finish=5.0, max_start=1.0)
        assert z.is_backward and not z.is_forward
        assert z.low == 1.0 and z.high == 5.0

    def test_overlap_symmetric(self):
        a = Zone(1.0, 4.0)
        b = Zone(3.0, 6.0)
        c = Zone(5.0, 8.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_containment(self):
        outer = Zone(0.0, 10.0)
        inner = Zone(2.0, 3.0)
        assert outer.contains_zone(inner)
        assert not inner.contains_zone(outer)

    def test_contains_point(self):
        z = Zone(1.0, 4.0)
        assert z.contains_point(2.5)
        assert not z.contains_point(4.5)


class TestClusters:
    def test_cluster_per_write(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                read("a", 2.0, 3.0),
                write("b", 4.0, 5.0),
            ]
        )
        clusters = build_clusters(h)
        assert len(clusters) == 2
        values = {cl.value for cl in clusters}
        assert values == {"a", "b"}

    def test_cluster_of_lonely_write_is_backward(self):
        # A write with no reads has zone [finish, start] reversed -> backward.
        h = History([write("a", 0.0, 5.0)])
        (cl,) = build_clusters(h)
        assert cl.is_backward
        assert cl.zone.low == 0.0 and cl.zone.high == 5.0

    def test_write_then_later_read_forms_forward_zone(self):
        h = History([write("a", 0.0, 1.0), read("a", 5.0, 6.0)])
        (cl,) = build_clusters(h)
        assert cl.is_forward
        assert cl.zone.low == 1.0   # min finish = write finish
        assert cl.zone.high == 5.0  # max start = read start

    def test_overlapping_write_and_read_form_backward_zone(self):
        h = History([write("a", 0.0, 10.0), read("a", 2.0, 4.0)])
        (cl,) = build_clusters(h)
        assert cl.is_backward

    def test_cluster_operations_include_write_and_reads(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0), read("a", 4.0, 5.0)])
        (cl,) = build_clusters(h)
        assert cl.size == 3
        assert cl.operations[0].is_write

    def test_clusters_sorted_by_zone_low(self):
        h = History(
            [
                write("late", 20.0, 21.0),
                read("late", 25.0, 26.0),
                write("early", 0.0, 1.0),
                read("early", 5.0, 6.0),
            ]
        )
        clusters = build_clusters(h)
        assert [cl.value for cl in clusters] == ["early", "late"]

    def test_anomalous_history_rejected(self):
        h = History([write("a", 0.0, 1.0), read("ghost", 2.0, 3.0)])
        with pytest.raises(HistoryError):
            build_clusters(h)

    def test_zones_of_matches_clusters(self):
        h = History([write("a", 0.0, 1.0), read("a", 5.0, 6.0), write("b", 2.0, 9.0)])
        zones = zones_of(h)
        clusters = build_clusters(h)
        assert zones == [cl.zone for cl in clusters]

    def test_zone_table_keys_are_writes(self):
        h = History([write("a", 0.0, 1.0), read("a", 5.0, 6.0)])
        table = zone_table(h)
        assert set(table.keys()) == set(h.writes)
