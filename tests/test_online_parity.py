"""Online/offline parity: incremental checkers equal their batch counterparts.

The acceptance bar of the online stack: for randomized synthetic and
adversarial traces, every incremental checker's *final* verdict must equal
the batch algorithm's, across window sizes including degenerate ones (a
window of one operation, and a window larger than the whole trace).  The
streaming engine's rolling mode must inherit that parity end to end, and its
mid-stream NO verdicts must be sound (never fired on a trace the batch
algorithm accepts).
"""

import random

import pytest

from repro.algorithms.online import checker_for
from repro.core.api import verify
from repro.core.history import History
from repro.core.preprocess import has_anomalies
from repro.core.windows import WindowPolicy
from repro.engine import Engine, StreamingEngine
from repro.workloads.adversarial import (
    concurrent_batch_history,
    non_2atomic_batch_history,
)
from repro.workloads.synthetic import (
    exactly_k_atomic_history,
    practical_history,
    random_history,
    serial_history,
    synthetic_trace,
)

#: Window sizes swept by the parity tests: degenerate small, odd, and
#: larger-than-any-test-trace.
WINDOW_SIZES = (1, 7, 100_000)


def completion_order(ops):
    return sorted(ops, key=lambda op: (op.finish, op.op_id))


def stream_of(history):
    return completion_order(history.operations)


def checker_verdict(history, k, *, check_interval):
    checker = checker_for(k, check_interval=check_interval)
    for op in stream_of(history):
        checker.feed(op)
    return checker.finish()


def single_register_corpus():
    """A mix of synthetic, adversarial and fuzzed single-register histories."""
    rng = random.Random(0xA11CE)
    corpus = [
        serial_history(12, 2),
        exactly_k_atomic_history(2, 8),
        exactly_k_atomic_history(3, 8),
        concurrent_batch_history(4, 3),
        non_2atomic_batch_history(4, 3),
    ]
    for _ in range(10):
        corpus.append(
            practical_history(
                rng,
                50,
                staleness_probability=0.3,
                max_staleness=2,
            )
        )
    # Fuzzed histories, anomalies allowed (batch answers NO via preprocessing).
    for _ in range(10):
        corpus.append(random_history(rng, 6, 10, span=12.0))
    return corpus


CORPUS = single_register_corpus()


class TestCheckerBatchParity:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("check_interval", [1, 5, 100_000])
    def test_final_verdict_equals_batch(self, index, k, check_interval):
        history = CORPUS[index]
        batch = verify(history, k)
        online = checker_verdict(history, k, check_interval=check_interval)
        assert bool(online) == bool(batch), (
            f"history #{index}: online {online.summary()} != batch {batch.summary()}"
        )

    @pytest.mark.parametrize("index", range(len(CORPUS)))
    @pytest.mark.parametrize("k", [1, 2])
    def test_midstream_no_is_sound(self, index, k):
        """A mid-stream final NO may only fire on histories batch rejects."""
        history = CORPUS[index]
        checker = checker_for(k, check_interval=1)
        fired = False
        for op in stream_of(history):
            verdict = checker.feed(op)
            if verdict is not None and verdict.final and not verdict:
                fired = True
                break
        if fired:
            assert not verify(history, k)

    def test_arrival_order_does_not_change_final_verdict(self):
        """Parity holds even for start-ordered (non-completion) streams."""
        rng = random.Random(7)
        for _ in range(5):
            history = practical_history(rng, 40, staleness_probability=0.2)
            for k in (1, 2):
                checker = checker_for(k, check_interval=3)
                for op in history.operations:  # start-time order
                    checker.feed(op)
                assert bool(checker.finish()) == bool(verify(history, k))


class TestStreamingEngineParity:
    @pytest.mark.parametrize("window_size", WINDOW_SIZES)
    @pytest.mark.parametrize("k", [1, 2])
    def test_rolling_mode_equals_batch_engine(self, window_size, k):
        rng = random.Random(0xBEEF + window_size)
        trace = synthetic_trace(
            rng, 6, 50, staleness_probability=0.2, max_staleness=2
        )
        ops = completion_order(
            op for key in trace.keys() for op in trace[key].operations
        )
        batch = Engine().verify_trace(trace, k)
        streaming = StreamingEngine(
            window=WindowPolicy.count(window_size)
        ).verify_stream(ops, k)
        assert {key: bool(r) for key, r in streaming.results.items()} == {
            key: bool(r) for key, r in batch.results.items()
        }
        assert streaming.is_k_atomic == batch.is_k_atomic

    @pytest.mark.parametrize("window_size", WINDOW_SIZES)
    def test_windowed_mode_no_is_sound_and_yes_when_batch_yes(self, window_size):
        rng = random.Random(0xF00D + window_size)
        trace = synthetic_trace(
            rng, 5, 40, staleness_probability=0.15, max_staleness=1
        )
        ops = completion_order(
            op for key in trace.keys() for op in trace[key].operations
        )
        overlap = 0 if window_size == 1 else min(window_size // 2, 8)
        streaming = StreamingEngine(
            window=WindowPolicy.count(window_size, overlap=overlap),
            mode="windowed",
        ).verify_stream(ops, 2)
        batch = Engine().verify_trace(trace, 2)
        for key, result in streaming.results.items():
            if not result:
                # Windowed NO verdicts must be sound.
                assert not batch.results[key], key
            if batch.results[key]:
                # Batch YES implies every window verified YES.
                assert bool(result), key

    def test_intermediate_verdict_exists_before_end_of_stream(self):
        """The acceptance criterion: a verdict strictly before end-of-input."""
        rng = random.Random(42)
        trace = synthetic_trace(rng, 4, 60, staleness_probability=0.2)
        ops = completion_order(
            op for key in trace.keys() for op in trace[key].operations
        )
        seen_before_end = []
        engine = StreamingEngine(window=WindowPolicy.count(32))
        report = engine.verify_stream(
            ops, 2, on_window=lambda w: seen_before_end.append(w)
        )
        assert len(seen_before_end) == report.num_windows >= 2
        # The first window closed after 32 of the ~240 operations: its
        # verdicts existed while most of the stream had not arrived yet.
        first = seen_before_end[0]
        assert first.stats.num_ops < len(ops)
        assert first.verdicts
