"""Unit tests for the History and MultiHistory containers."""

import pytest

from repro.core.errors import DuplicateValueError, HistoryError
from repro.core.history import History, MultiHistory
from repro.core.operation import read, write


def simple_history():
    return History(
        [
            write("a", 0.0, 1.0),
            read("a", 2.0, 3.0),
            write("b", 4.0, 5.0),
            read("b", 6.0, 7.0),
            read("a", 8.0, 9.0),
        ]
    )


class TestConstruction:
    def test_operations_sorted_by_start(self):
        h = History([write("b", 5.0, 6.0), write("a", 0.0, 1.0)])
        assert [op.value for op in h.operations] == ["a", "b"]

    def test_len_and_iter(self):
        h = simple_history()
        assert len(h) == 5
        assert len(list(h)) == 5

    def test_writes_and_reads_split(self):
        h = simple_history()
        assert [w.value for w in h.writes] == ["a", "b"]
        assert len(h.reads) == 3

    def test_duplicate_write_values_rejected(self):
        with pytest.raises(DuplicateValueError):
            History([write("a", 0.0, 1.0), write("a", 2.0, 3.0)])

    def test_duplicate_read_values_allowed(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0), read("a", 4.0, 5.0)])
        assert len(h.reads) == 2

    def test_conflicting_keys_rejected(self):
        with pytest.raises(HistoryError):
            History([write("a", 0.0, 1.0, key="x"), write("b", 2.0, 3.0, key="y")])

    def test_key_inferred_from_operations(self):
        h = History([write("a", 0.0, 1.0, key="reg-1")])
        assert h.key == "reg-1"

    def test_empty_history(self):
        h = History([])
        assert h.is_empty
        assert len(h) == 0
        with pytest.raises(HistoryError):
            h.span()

    def test_equality_and_hash(self):
        ops = [write("a", 0.0, 1.0), read("a", 2.0, 3.0)]
        assert History(ops) == History(list(reversed(ops)))
        assert hash(History(ops)) == hash(History(ops))


class TestDictation:
    def test_dictating_write_found(self):
        h = simple_history()
        r = h.reads[0]
        assert h.dictating_write(r).value == r.value

    def test_dictating_write_missing_returns_none(self):
        h = History([write("a", 0.0, 1.0), read("ghost", 2.0, 3.0)])
        assert h.dictating_write(h.reads[0]) is None

    def test_dictating_write_rejects_writes(self):
        h = simple_history()
        with pytest.raises(HistoryError):
            h.dictating_write(h.writes[0])

    def test_dictated_reads(self):
        h = simple_history()
        w_a = h.writer_of("a")
        assert {r.start for r in h.dictated_reads(w_a)} == {2.0, 8.0}

    def test_dictated_reads_empty_for_unread_write(self):
        h = History([write("a", 0.0, 1.0), write("b", 2.0, 3.0), read("a", 4.0, 5.0)])
        assert h.dictated_reads(h.writer_of("b")) == ()

    def test_dictated_reads_rejects_reads(self):
        h = simple_history()
        with pytest.raises(HistoryError):
            h.dictated_reads(h.reads[0])

    def test_clusters_cover_every_write(self):
        h = simple_history()
        clusters = h.clusters()
        assert set(clusters.keys()) == set(h.writes)
        assert sum(len(v) for v in clusters.values()) == len(h.reads)


class TestConcurrency:
    def test_max_concurrent_writes_serial(self):
        h = History([write(i, 2.0 * i, 2.0 * i + 1.0) for i in range(5)])
        assert h.max_concurrent_writes() == 1

    def test_max_concurrent_writes_overlapping(self):
        h = History(
            [
                write("a", 0.0, 10.0),
                write("b", 1.0, 11.0),
                write("c", 2.0, 12.0),
                read("a", 20.0, 21.0),
            ]
        )
        assert h.max_concurrent_writes() == 3

    def test_reads_do_not_count_towards_write_concurrency(self):
        h = History([write("a", 0.0, 10.0), read("a", 1.0, 9.0), read("a", 2.0, 8.0)])
        assert h.max_concurrent_writes() == 1

    def test_concurrency_profile_monotone_bookkeeping(self):
        h = History([write("a", 0.0, 4.0), write("b", 1.0, 5.0)])
        profile = h.concurrency_profile()
        assert max(level for _, level in profile) == 2
        assert profile[-1][1] == 0

    def test_span(self):
        h = simple_history()
        assert h.span() == (0.0, 9.0)


class TestDerivedHistories:
    def test_restrict(self):
        h = simple_history()
        sub = h.restrict(h.writes)
        assert len(sub) == 2
        assert all(op.is_write for op in sub)

    def test_without(self):
        h = simple_history()
        sub = h.without(h.reads)
        assert len(sub) == 2

    def test_with_operations(self):
        h = History([write("a", 0.0, 1.0)])
        h2 = h.with_operations([read("a", 2.0, 3.0)])
        assert len(h2) == 2 and len(h) == 1


class TestTotalOrderChecks:
    def test_valid_total_order_accepts_real_time_order(self):
        h = simple_history()
        assert h.is_valid_total_order(list(h.operations))

    def test_valid_total_order_rejects_inverted_precedence(self):
        h = History([write("a", 0.0, 1.0), write("b", 5.0, 6.0)])
        a, b = h.operations
        assert not h.is_valid_total_order([b, a])

    def test_valid_total_order_allows_swapping_concurrent(self):
        h = History([write("a", 0.0, 5.0), write("b", 1.0, 6.0)])
        a, b = h.operations
        assert h.is_valid_total_order([b, a])
        assert h.is_valid_total_order([a, b])

    def test_valid_total_order_requires_all_operations(self):
        h = simple_history()
        assert not h.is_valid_total_order(list(h.operations)[:-1])

    def test_k_atomic_order_fresh_read(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert h.is_k_atomic_total_order(list(h.operations), 1)

    def test_k_atomic_order_stale_read_needs_k2(self):
        h = History([write("a", 0.0, 1.0), write("b", 2.0, 3.0), read("a", 4.0, 5.0)])
        order = list(h.operations)
        assert not h.is_k_atomic_total_order(order, 1)
        assert h.is_k_atomic_total_order(order, 2)

    def test_k_atomic_order_read_before_write_rejected(self):
        h = History([write("a", 2.0, 5.0), read("a", 3.0, 6.0)])
        w, r = h.writes[0], h.reads[0]
        assert not h.is_k_atomic_total_order([r, w], 1)
        assert h.is_k_atomic_total_order([w, r], 1)

    def test_weighted_order_counts_dictating_write_weight(self):
        h = History([write("a", 0.0, 1.0, weight=3), read("a", 2.0, 3.0)])
        order = list(h.operations)
        assert not h.is_weighted_k_atomic_total_order(order, 2)
        assert h.is_weighted_k_atomic_total_order(order, 3)

    def test_weighted_order_counts_intervening_weight(self):
        h = History(
            [
                write("a", 0.0, 1.0),
                write("b", 2.0, 3.0, weight=5),
                read("a", 4.0, 5.0),
            ]
        )
        order = list(h.operations)
        # separation weight = w(a)=1 + w(b)=5 = 6
        assert not h.is_weighted_k_atomic_total_order(order, 5)
        assert h.is_weighted_k_atomic_total_order(order, 6)

    def test_k_must_be_positive(self):
        h = simple_history()
        assert not h.is_k_atomic_total_order(list(h.operations), 0)


class TestMultiHistory:
    def test_groups_by_key(self):
        ops = [
            write("a", 0.0, 1.0, key="x"),
            read("a", 2.0, 3.0, key="x"),
            write("b", 0.0, 1.0, key="y"),
        ]
        trace = MultiHistory(ops)
        assert set(trace.keys()) == {"x", "y"}
        assert len(trace["x"]) == 2
        assert len(trace["y"]) == 1

    def test_total_operations(self):
        ops = [write(i, 0.0, 1.0, key=f"k{i}") for i in range(4)]
        assert MultiHistory(ops).total_operations() == 4

    def test_items_and_histories(self):
        ops = [write("a", 0.0, 1.0, key="x")]
        trace = MultiHistory(ops)
        assert [key for key, _ in trace.items()] == ["x"]
        assert len(trace.histories()) == 1

    def test_duplicate_values_on_different_keys_allowed(self):
        ops = [write("a", 0.0, 1.0, key="x"), write("a", 0.0, 1.0, key="y")]
        trace = MultiHistory(ops)
        assert len(trace) == 2

    def test_explicit_histories_constructor(self):
        h = History([write("a", 0.0, 1.0)], key="z")
        trace = MultiHistory(histories={"z": h})
        assert trace["z"] is h
