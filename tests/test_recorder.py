"""Unit tests for the history recorder."""

import random

import pytest

from repro.core.operation import OpType
from repro.simulation.events import EventLoop
from repro.simulation.recorder import HistoryRecorder


class TestRecording:
    def test_write_recorded_with_timestamps(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        token = recorder.begin_write("c0", "k", "v1")
        loop.schedule(5.0, lambda: recorder.complete(token))
        loop.run()
        (op,) = recorder.operations()
        assert op.op_type is OpType.WRITE
        assert op.value == "v1"
        assert op.start == 0.0 and op.finish == 5.0
        assert op.key == "k" and op.client == "c0"

    def test_read_records_returned_value(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        token = recorder.begin_read("c1", "k")
        loop.schedule(2.0, lambda: recorder.complete(token, value="observed"))
        loop.run()
        (op,) = recorder.operations()
        assert op.op_type is OpType.READ
        assert op.value == "observed"

    def test_failed_operations_excluded(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        token = recorder.begin_read("c1", "k")
        recorder.complete(token, ok=False)
        assert recorder.operations() == []
        assert recorder.failed_count == 1

    def test_pending_operations_not_in_history(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        recorder.begin_write("c0", "k", "v")
        assert recorder.pending_count == 1
        assert recorder.completed_count == 0
        assert recorder.multi_history().total_operations() == 0

    def test_unknown_token_ignored(self):
        recorder = HistoryRecorder(EventLoop())
        recorder.complete(999)  # must not raise
        assert recorder.completed_count == 0

    def test_zero_duration_operation_gets_positive_length(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        token = recorder.begin_write("c0", "k", "v")
        recorder.complete(token)  # same simulated instant
        (op,) = recorder.operations()
        assert op.finish > op.start

    def test_multi_history_groups_by_key(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        t1 = recorder.begin_write("c0", "k1", "a")
        t2 = recorder.begin_write("c0", "k2", "b")
        loop.schedule(1.0, lambda: recorder.complete(t1))
        loop.schedule(2.0, lambda: recorder.complete(t2))
        loop.run()
        trace = recorder.multi_history()
        assert set(trace.keys()) == {"k1", "k2"}

    def test_record_instant_write(self):
        recorder = HistoryRecorder(EventLoop())
        recorder.record_instant_write("seed", "k", "v0", -1.0, -0.999)
        (op,) = recorder.operations()
        assert op.is_write and op.start == -1.0


class TestClockError:
    def test_clock_error_perturbs_timestamps(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop, clock_error_ms=0.5, rng=random.Random(1))
        token = recorder.begin_write("c0", "k", "v")
        loop.schedule(10.0, lambda: recorder.complete(token))
        loop.run()
        (op,) = recorder.operations()
        assert op.start != 0.0 or op.finish != 10.0
        assert abs(op.start - 0.0) <= 0.5
        assert abs(op.finish - 10.0) <= 0.5

    def test_zero_clock_error_is_exact(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop, clock_error_ms=0.0)
        token = recorder.begin_write("c0", "k", "v")
        loop.schedule(10.0, lambda: recorder.complete(token))
        loop.run()
        (op,) = recorder.operations()
        assert (op.start, op.finish) == (0.0, 10.0)


class TestStreamingBuilder:
    def test_recorder_exposes_live_trace_builder(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        t1 = recorder.begin_write("c0", "k1", "a")
        t2 = recorder.begin_write("c0", "k2", "b")
        loop.schedule(1.0, lambda: recorder.complete(t1))
        loop.schedule(2.0, lambda: recorder.complete(t2))
        loop.run()
        builder = recorder.trace_builder()
        assert builder.op_count == 2
        assert set(builder.keys()) == {"k1", "k2"}
        # The builder is the engine's ingestion surface: verify it directly.
        from repro.engine import Engine

        report = Engine().verify_trace(builder, 1)
        assert report.is_k_atomic

    def test_operations_in_completion_order(self):
        loop = EventLoop()
        recorder = HistoryRecorder(loop)
        t1 = recorder.begin_write("c0", "k1", "a")
        t2 = recorder.begin_write("c1", "k2", "b")
        # k2's write completes before k1's.
        loop.schedule(1.0, lambda: recorder.complete(t2))
        loop.schedule(2.0, lambda: recorder.complete(t1))
        loop.run()
        ops = recorder.operations()
        assert [op.key for op in ops] == ["k2", "k1"]
