"""Unit tests for the staleness spectrum analysis."""

import pytest

from repro.analysis.spectrum import (
    StalenessBucket,
    atomicity_spectrum,
    staleness_bucket,
)
from repro.core.history import History, MultiHistory
from repro.core.operation import read, write
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history


class TestStalenessBucket:
    def test_atomic_history(self):
        bucket, k = staleness_bucket(serial_history(5, 1))
        assert bucket is StalenessBucket.ATOMIC
        assert k == 1

    def test_two_atomic_history(self):
        bucket, k = staleness_bucket(exactly_k_atomic_history(2, 5))
        assert bucket is StalenessBucket.TWO_ATOMIC
        assert k == 2

    def test_three_plus_unresolved_by_default(self):
        bucket, k = staleness_bucket(exactly_k_atomic_history(4, 6))
        assert bucket is StalenessBucket.THREE_PLUS
        assert k is None

    def test_three_plus_resolved_on_request(self):
        bucket, k = staleness_bucket(exactly_k_atomic_history(4, 6), resolve_exact=True)
        assert bucket is StalenessBucket.THREE_PLUS
        assert k == 4

    def test_anomalous_history(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        bucket, k = staleness_bucket(h)
        assert bucket is StalenessBucket.ANOMALOUS
        assert k is None

    def test_empty_history(self):
        bucket, k = staleness_bucket(History([]))
        assert bucket is StalenessBucket.EMPTY


class TestSpectrum:
    def build_trace(self):
        ops = []
        for op in serial_history(4, 1, key="atomic"):
            ops.append(op)
        for op in exactly_k_atomic_history(2, 4, key="two"):
            ops.append(op)
        for op in exactly_k_atomic_history(3, 5, key="three"):
            ops.append(op)
        return MultiHistory(ops)

    def test_counts_per_bucket(self):
        spectrum = atomicity_spectrum(self.build_trace())
        counts = spectrum.counts()
        assert counts[StalenessBucket.ATOMIC] == 1
        assert counts[StalenessBucket.TWO_ATOMIC] == 1
        assert counts[StalenessBucket.THREE_PLUS] == 1

    def test_fractions(self):
        spectrum = atomicity_spectrum(self.build_trace())
        assert spectrum.fraction_atomic == pytest.approx(1 / 3)
        assert spectrum.fraction_within_2 == pytest.approx(2 / 3)

    def test_worst_bucket(self):
        spectrum = atomicity_spectrum(self.build_trace())
        assert spectrum.worst_bucket() is StalenessBucket.THREE_PLUS

    def test_is_k_atomic_aggregation(self):
        spectrum = atomicity_spectrum(self.build_trace(), resolve_exact=True)
        assert spectrum.is_k_atomic(1) is False
        assert spectrum.is_k_atomic(2) is False
        assert spectrum.is_k_atomic(3) is True

    def test_is_k_atomic_unresolved_returns_none(self):
        spectrum = atomicity_spectrum(self.build_trace(), resolve_exact=False)
        assert spectrum.is_k_atomic(3) is None
        assert spectrum.is_k_atomic(2) is False

    def test_all_atomic_trace(self):
        ops = []
        for key in ("a", "b"):
            ops.extend(serial_history(3, 1, key=key).operations)
        spectrum = atomicity_spectrum(MultiHistory(ops))
        assert spectrum.fraction_atomic == 1.0
        assert spectrum.is_k_atomic(1) is True
        assert spectrum.worst_bucket() is StalenessBucket.ATOMIC

    def test_verdict_records_operation_counts(self):
        spectrum = atomicity_spectrum(self.build_trace())
        by_key = {v.key: v for v in spectrum.verdicts}
        assert by_key["atomic"].num_operations == len(serial_history(4, 1))
        assert spectrum.num_keys == 3
