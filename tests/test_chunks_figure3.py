"""Experiment E4: reproduce the chunk decomposition of Figure 3.

Figure 3 of the paper shows a zone structure with eight forward zones
(FZ1..FZ8) and seven backward zones (BZ1..BZ7) whose chunk set consists of
three maximal chunks —

* {FZ1, BZ1},
* {FZ2, FZ3, FZ4, BZ3, BZ4},
* {FZ5, FZ6, FZ7, FZ8, BZ6},

— plus three dangling clusters (BZ2, BZ5, BZ7).  This test constructs a
history realising exactly that zone geometry and checks that Stage 1 of FZF
reproduces the decomposition described in the figure's caption.
"""

import pytest

from repro.algorithms.fzf import verify_2atomic_fzf
from repro.core.chunks import compute_chunk_set
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.zones import build_clusters

# Forward zone [low, high]: a write finishing at `low` plus a read starting at
# `high`.  Backward zone [low, high]: a lone write spanning the interval.
FORWARD_ZONES = {
    "FZ1": (0.0, 10.0),
    "FZ2": (14.0, 20.0),
    "FZ3": (18.0, 26.0),
    "FZ4": (24.0, 30.0),
    "FZ5": (34.0, 44.0),
    "FZ6": (36.0, 40.0),
    "FZ7": (42.0, 48.0),
    "FZ8": (46.0, 52.0),
}
BACKWARD_ZONES = {
    "BZ1": (2.1, 5.2),
    "BZ2": (11.1, 13.2),
    "BZ3": (15.1, 17.2),
    "BZ4": (25.1, 28.2),
    "BZ5": (31.1, 33.2),
    "BZ6": (37.1, 39.2),
    "BZ7": (53.1, 55.2),
}
EXPECTED_CHUNKS = [
    {"FZ1", "BZ1"},
    {"FZ2", "FZ3", "FZ4", "BZ3", "BZ4"},
    {"FZ5", "FZ6", "FZ7", "FZ8", "BZ6"},
]
EXPECTED_DANGLING = {"BZ2", "BZ5", "BZ7"}


def figure3_history():
    ops = []
    for name, (low, high) in FORWARD_ZONES.items():
        ops.append(write(name, low - 0.9, low))
        ops.append(read(name, high, high + 0.37))
    for name, (low, high) in BACKWARD_ZONES.items():
        ops.append(write(name, low, high))
    return History(ops)


@pytest.fixture(scope="module")
def chunk_set():
    return compute_chunk_set(figure3_history())


class TestFigure3Zones:
    def test_zone_kinds_match_construction(self):
        clusters = {cl.value: cl for cl in build_clusters(figure3_history())}
        for name in FORWARD_ZONES:
            assert clusters[name].is_forward, name
        for name in BACKWARD_ZONES:
            assert clusters[name].is_backward, name

    def test_zone_endpoints_match_construction(self):
        clusters = {cl.value: cl for cl in build_clusters(figure3_history())}
        for name, (low, high) in {**FORWARD_ZONES, **BACKWARD_ZONES}.items():
            assert clusters[name].zone.low == pytest.approx(low)
            assert clusters[name].zone.high == pytest.approx(high)


class TestFigure3ChunkSet:
    def test_three_maximal_chunks(self, chunk_set):
        assert chunk_set.num_chunks == 3

    def test_three_dangling_clusters(self, chunk_set):
        assert chunk_set.num_dangling == 3

    def test_chunk_memberships_match_figure(self, chunk_set):
        actual = [
            {cl.value for cl in chunk.clusters} for chunk in chunk_set.chunks
        ]
        assert actual == EXPECTED_CHUNKS

    def test_dangling_memberships_match_figure(self, chunk_set):
        assert {cl.value for cl in chunk_set.dangling} == EXPECTED_DANGLING

    def test_dangling_clusters_are_backward(self, chunk_set):
        assert all(cl.is_backward for cl in chunk_set.dangling)

    def test_chunk_intervals_are_disjoint_and_ordered(self, chunk_set):
        intervals = [chunk.interval for chunk in chunk_set.chunks]
        for (  _, hi), (lo2, _) in zip(intervals, intervals[1:]):
            assert hi < lo2

    def test_backward_counts_per_chunk(self, chunk_set):
        assert [chunk.num_backward for chunk in chunk_set.chunks] == [1, 2, 1]

    def test_forward_counts_per_chunk(self, chunk_set):
        assert [chunk.num_forward for chunk in chunk_set.chunks] == [1, 3, 4]


class TestFigure3EndToEnd:
    def test_fzf_runs_and_cross_checks_with_witness(self):
        h = figure3_history()
        result = verify_2atomic_fzf(h)
        # Whatever the verdict, a YES must come with a checkable witness.
        if result:
            assert result.check_witness(h)

    def test_fzf_tests_at_most_four_orders_per_chunk(self):
        h = figure3_history()
        result = verify_2atomic_fzf(h)
        assert result.stats["orders_tested"] <= 4 * result.stats["chunks"]
