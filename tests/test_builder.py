"""Tests for the streaming history/trace builders (repro.core.builder)."""

import pytest

from repro.core.builder import HistoryBuilder, TraceBuilder
from repro.core.errors import HistoryError
from repro.core.history import MultiHistory
from repro.core.operation import read, write


class TestHistoryBuilder:
    def test_incremental_build_equals_direct_construction(self):
        ops = [write("a", 0.0, 1.0), read("a", 2.0, 3.0), write("b", 4.0, 5.0)]
        builder = HistoryBuilder()
        for op in ops:
            builder.append(op)
        from repro.core.history import History

        assert builder.build() == History(ops)

    def test_adopts_key_from_operations(self):
        builder = HistoryBuilder().append(write("a", 0.0, 1.0, key="reg"))
        assert builder.key == "reg"
        assert builder.build().key == "reg"

    def test_key_mismatch_fails_fast(self):
        builder = HistoryBuilder(key="reg-a")
        with pytest.raises(HistoryError):
            builder.append(write("v", 0.0, 1.0, key="reg-b"))

    def test_len_and_op_count(self):
        builder = HistoryBuilder().extend(
            [write("a", 0.0, 1.0), read("a", 2.0, 3.0)]
        )
        assert len(builder) == builder.op_count == 2

    def test_empty_build(self):
        assert HistoryBuilder().build().is_empty


class TestTraceBuilder:
    def _ops(self):
        return [
            write("a", 0.0, 1.0, key="k1"),
            write("x", 0.0, 1.0, key="k2"),
            read("a", 2.0, 3.0, key="k1"),
            read("x", 2.0, 3.0, key="k2"),
        ]

    def test_streaming_build_equals_batch_multihistory(self):
        ops = self._ops()
        builder = TraceBuilder()
        for op in ops:
            builder.append(op)
        built = builder.build()
        batch = MultiHistory(ops)
        assert set(built.keys()) == set(batch.keys())
        for key in batch.keys():
            assert built[key] == batch[key]

    def test_keys_in_first_appearance_order(self):
        builder = TraceBuilder(self._ops())
        assert builder.keys() == ("k1", "k2")
        assert list(builder.build().keys()) == ["k1", "k2"]

    def test_counts(self):
        builder = TraceBuilder(self._ops())
        assert builder.op_count == 4
        assert builder.num_registers == len(builder) == 2
        assert builder.operation_counts() == {"k1": 2, "k2": 2}
        assert "k1" in builder and "missing" not in builder

    def test_lazy_per_register_history(self):
        builder = TraceBuilder(self._ops())
        history = builder.history("k1")
        assert history.key == "k1" and len(history) == 2

    def test_unknown_register_rejected(self):
        with pytest.raises(HistoryError):
            TraceBuilder().history("missing")

    def test_iter_operations_yields_everything(self):
        ops = self._ops()
        builder = TraceBuilder(ops)
        assert sorted(op.op_id for op in builder.iter_operations()) == sorted(
            op.op_id for op in ops
        )

    def test_keyless_operations_grouped_under_none(self):
        builder = TraceBuilder([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert builder.keys() == (None,)
        assert len(builder.build()[None]) == 2
