"""Unit tests for weighted k-AV (Section V) front-end helpers."""

import pytest

from repro.algorithms.wkav import (
    is_weighted_k_atomic,
    verify_weighted_k_atomic,
    weighted_lower_bound,
    with_weights,
    total_write_weight,
)
from repro.core.errors import VerificationError
from repro.core.history import History
from repro.core.operation import read, write


@pytest.fixture
def weighted_history():
    return History(
        [
            write("a", 0.0, 1.0),
            write("important", 2.0, 3.0),
            read("a", 4.0, 5.0),
        ]
    )


class TestWithWeights:
    def test_weights_applied_to_named_values(self, weighted_history):
        h = with_weights(weighted_history, {"important": 5})
        assert h.writer_of("important").weight == 5
        assert h.writer_of("a").weight == 1

    def test_reads_unaffected(self, weighted_history):
        h = with_weights(weighted_history, {"a": 3})
        assert all(r.weight == 1 for r in h.reads)

    def test_rejects_non_positive_weights(self, weighted_history):
        with pytest.raises(VerificationError):
            with_weights(weighted_history, {"a": 0})
        with pytest.raises(VerificationError):
            with_weights(weighted_history, {"a": -2})

    def test_rejects_non_integer_weights(self, weighted_history):
        with pytest.raises(VerificationError):
            with_weights(weighted_history, {"a": 1.5})

    def test_total_write_weight(self, weighted_history):
        h = with_weights(weighted_history, {"a": 2, "important": 5})
        assert total_write_weight(h) == 7


class TestLowerBound:
    def test_unweighted_lower_bound_is_one(self, weighted_history):
        assert weighted_lower_bound(weighted_history) == 1

    def test_lower_bound_ignores_unread_writes(self, weighted_history):
        h = with_weights(weighted_history, {"important": 9})  # never read
        assert weighted_lower_bound(h) == 1

    def test_lower_bound_tracks_read_writes(self, weighted_history):
        h = with_weights(weighted_history, {"a": 4})
        assert weighted_lower_bound(h) == 4


class TestVerification:
    def test_plain_history_weighted_verdicts(self, weighted_history):
        # With unit weights the separation of r(a) is 2 (a itself plus the
        # intervening write), so k = 2 works and k = 1 does not.
        assert not is_weighted_k_atomic(weighted_history, 1)
        assert is_weighted_k_atomic(weighted_history, 2)

    def test_important_write_raises_required_k(self, weighted_history):
        h = with_weights(weighted_history, {"important": 5})
        # Separation of r(a) becomes 1 + 5 = 6.
        assert not is_weighted_k_atomic(h, 5)
        assert is_weighted_k_atomic(h, 6)

    def test_heavy_dictating_write_short_circuit(self, weighted_history):
        h = with_weights(weighted_history, {"a": 10})
        result = verify_weighted_k_atomic(h, 3)
        assert not result
        assert "weight" in result.reason

    def test_invalid_k_rejected(self, weighted_history):
        with pytest.raises(VerificationError):
            verify_weighted_k_atomic(weighted_history, 0)

    def test_empty_history(self):
        assert verify_weighted_k_atomic(History([]), 1)

    def test_anomalous_history_rejected(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        assert not verify_weighted_k_atomic(h, 3)

    def test_concurrent_heavy_write_can_be_dodged(self):
        # The heavy write overlaps the read, so a valid order can place it
        # after the read and the weighted bound stays small.
        h = History(
            [
                write("a", 0.0, 1.0),
                write("heavy", 2.0, 20.0, weight=7),
                read("a", 3.0, 4.0),
            ]
        )
        assert is_weighted_k_atomic(h, 1)

    def test_witness_satisfies_weighted_definition(self, weighted_history):
        h = with_weights(weighted_history, {"important": 3})
        result = verify_weighted_k_atomic(h, 4)
        assert result
        assert h.is_weighted_k_atomic_total_order(result.require_witness(), 4)
