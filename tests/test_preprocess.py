"""Unit tests for anomaly detection and history normalisation (Section II-C)."""

import pytest

from repro.core.errors import AnomalyError
from repro.core.history import History
from repro.core.operation import read, write
from repro.core.preprocess import (
    Anomaly,
    AnomalyKind,
    find_anomalies,
    has_anomalies,
    normalize,
    perturb_equal_timestamps,
    shorten_writes,
)


class TestAnomalyDetection:
    def test_clean_history_has_no_anomalies(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert find_anomalies(h) == []
        assert not has_anomalies(h)

    def test_read_without_dictating_write(self):
        h = History([write("a", 0.0, 1.0), read("ghost", 2.0, 3.0)])
        anomalies = find_anomalies(h)
        assert len(anomalies) == 1
        assert anomalies[0].kind is AnomalyKind.READ_WITHOUT_WRITE
        assert has_anomalies(h)

    def test_read_preceding_its_write(self):
        h = History([read("a", 0.0, 1.0), write("a", 2.0, 3.0)])
        anomalies = find_anomalies(h)
        assert len(anomalies) == 1
        assert anomalies[0].kind is AnomalyKind.READ_BEFORE_WRITE
        assert anomalies[0].write is not None

    def test_read_overlapping_its_write_is_fine(self):
        h = History([write("a", 2.0, 5.0), read("a", 1.0, 3.0)])
        assert not has_anomalies(h)

    def test_multiple_anomalies_all_reported(self):
        h = History(
            [
                write("a", 10.0, 11.0),
                read("a", 0.0, 1.0),     # precedes its write
                read("ghost", 2.0, 3.0),  # no write at all
            ]
        )
        kinds = {a.kind for a in find_anomalies(h)}
        assert kinds == {AnomalyKind.READ_BEFORE_WRITE, AnomalyKind.READ_WITHOUT_WRITE}

    def test_describe_mentions_value(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        text = find_anomalies(h)[0].describe()
        assert "ghost" in text


class TestShortenWrites:
    def test_write_already_short_untouched(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert shorten_writes(h) == h

    def test_long_write_shortened_before_read_finish(self):
        h = History([write("a", 0.0, 10.0), read("a", 1.0, 3.0)])
        shortened = shorten_writes(h)
        w = shortened.writes[0]
        r = shortened.reads[0]
        assert w.finish < r.finish
        assert w.finish > w.start

    def test_shortening_uses_minimum_read_finish(self):
        h = History(
            [write("a", 0.0, 10.0), read("a", 1.0, 8.0), read("a", 2.0, 4.0)]
        )
        shortened = shorten_writes(h)
        assert shortened.writes[0].finish < 4.0

    def test_unread_write_untouched(self):
        h = History([write("a", 0.0, 10.0), write("b", 20.0, 30.0), read("b", 21.0, 25.0)])
        shortened = shorten_writes(h)
        assert shortened.writer_of("a").finish == 10.0

    def test_reads_never_modified(self):
        h = History([write("a", 0.0, 10.0), read("a", 1.0, 3.0)])
        shortened = shorten_writes(h)
        assert shortened.reads[0].interval == (1.0, 3.0)


class TestPerturbTimestamps:
    def test_distinct_timestamps_untouched(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert perturb_equal_timestamps(h) == h

    def test_ties_are_broken(self):
        h = History([write("a", 0.0, 1.0), write("b", 1.0, 2.0), read("a", 1.0, 3.0)])
        fixed = perturb_equal_timestamps(h)
        stamps = []
        for op in fixed.operations:
            stamps.extend(op.interval)
        assert len(stamps) == len(set(stamps))

    def test_order_of_distinct_stamps_preserved(self):
        h = History([write("a", 0.0, 5.0), write("b", 5.0, 7.0), read("b", 6.0, 9.0)])
        fixed = perturb_equal_timestamps(h)
        # b still starts after a starts, and the read still starts inside b.
        a, b = fixed.writer_of("a"), fixed.writer_of("b")
        r = fixed.reads[0]
        assert a.start < b.start
        assert b.start < r.start < r.finish

    def test_operations_remain_positive_length(self):
        h = History([write("a", 1.0, 1.0 + 1e-12), read("a", 1.0, 2.0)])
        fixed = perturb_equal_timestamps(h)
        for op in fixed.operations:
            assert op.finish > op.start


class TestNormalize:
    def test_normalize_raises_on_anomaly(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0)])
        with pytest.raises(AnomalyError) as err:
            normalize(h)
        assert err.value.anomalies

    def test_normalize_can_drop_anomalous_reads(self):
        h = History([write("a", 5.0, 6.0), read("ghost", 0.0, 1.0), read("a", 7.0, 8.0)])
        fixed = normalize(h, drop_anomalous_reads=True)
        assert len(fixed.reads) == 1
        assert fixed.reads[0].value == "a"

    def test_normalize_applies_both_steps(self):
        h = History(
            [write("a", 0.0, 10.0), read("a", 1.0, 3.0), write("b", 3.0, 20.0), read("b", 5.0, 7.0)]
        )
        fixed = normalize(h)
        for w in fixed.writes:
            reads = fixed.dictated_reads(w)
            if reads:
                assert w.finish < min(r.finish for r in reads)
        stamps = [t for op in fixed.operations for t in op.interval]
        assert len(stamps) == len(set(stamps))

    def test_normalize_idempotent_on_clean_history(self):
        h = History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])
        assert normalize(normalize(h)) == normalize(h)

    def test_normalize_preserves_operation_count(self):
        h = History([write("a", 0.0, 10.0), read("a", 1.0, 3.0)])
        assert len(normalize(h)) == 2
