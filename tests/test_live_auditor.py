"""Tests for live simulation auditing (LiveAuditor + OnlineSpectrum)."""

import pytest

from repro.analysis.spectrum import (
    OnlineSpectrum,
    StalenessBucket,
    atomicity_spectrum,
)
from repro.core.api import verify
from repro.core.errors import SimulationError
from repro.core.result import StreamVerdict, VerificationResult
from repro.core.windows import WindowPolicy
from repro.simulation import (
    ExponentialLatency,
    LiveAuditor,
    QuorumConfig,
    SloppyQuorumStore,
    StoreConfig,
)
from repro.simulation.faults import crash_window
from repro.workloads import WorkloadSpec, ZipfianKeys


def sloppy_store(seed=11):
    config = StoreConfig(
        quorum=QuorumConfig(num_replicas=3, read_quorum=1, write_quorum=1),
        latency=ExponentialLatency(mean_ms=4.0),
    )
    return SloppyQuorumStore(config, seed=seed)


def workload(seed=2):
    return WorkloadSpec(
        num_clients=8,
        operations_per_client=30,
        write_ratio=0.4,
        key_selector=ZipfianKeys(3),
        seed=seed,
    )


@pytest.fixture(scope="module")
def audited_run():
    auditor = LiveAuditor(window=WindowPolicy.count(24))
    store = sloppy_store()
    result = store.run(
        workload(), faults=crash_window("replica-0", 20.0, 120.0), auditor=auditor
    )
    return result, auditor


class TestLiveAuditor:
    def test_rolling_samples_exist_midrun(self, audited_run):
        result, auditor = audited_run
        assert auditor.windows_closed >= 2
        samples = auditor.samples
        assert samples
        # Samples were taken before the run ended: the earliest sample's
        # simulated time is strictly inside the run, not at its end.
        assert samples[0].sim_time_ms < result.simulated_duration_ms
        assert samples[0].describe()

    def test_audits_both_bounds_per_window(self, audited_run):
        _, auditor = audited_run
        ks = {sample.k for sample in auditor.samples}
        assert ks == {1, 2}

    def test_final_results_equal_batch_verification(self, audited_run):
        result, auditor = audited_run
        for k in (1, 2):
            finals = auditor.final_results(k)
            assert set(finals) == set(result.history.keys())
            for key, verdict in finals.items():
                assert bool(verdict) == bool(verify(result.history[key], k)), key

    def test_spectrum_snapshot_matches_batch_buckets(self, audited_run):
        result, auditor = audited_run
        online = auditor.spectrum_snapshot()
        batch = atomicity_spectrum(result.history)
        online_buckets = {v.key: v.bucket for v in online.verdicts}
        batch_buckets = {v.key: v.bucket for v in batch.verdicts}
        assert online_buckets == batch_buckets

    def test_ops_observed_counts_recorded_history(self, audited_run):
        result, auditor = audited_run
        assert auditor.ops_observed == result.history.total_operations()

    def test_observe_after_finalize_rejected(self, audited_run):
        _, auditor = audited_run
        with pytest.raises(SimulationError):
            auditor.observe(None)

    def test_finalize_is_idempotent(self, audited_run):
        _, auditor = audited_run
        assert auditor.finalize() is auditor.finalize()

    def test_summary_renders(self, audited_run):
        _, auditor = audited_run
        text = auditor.summary()
        assert "live audit" in text and "windows" in text


class TestAuditorConfiguration:
    def test_requires_at_least_one_bound(self):
        with pytest.raises(SimulationError):
            LiveAuditor(ks=())

    def test_single_bound_audit(self):
        auditor = LiveAuditor(ks=(2,), window=WindowPolicy.count(16))
        result = sloppy_store(seed=3).run(workload(seed=5), auditor=auditor)
        assert set(auditor.finalize()) == {2}
        finals = auditor.final_results(2)
        for key, verdict in finals.items():
            assert bool(verdict) == bool(verify(result.history[key], 2))

    def test_rolling_verdict_accessor(self):
        auditor = LiveAuditor(window=WindowPolicy.count(16))
        sloppy_store(seed=4).run(workload(seed=6), auditor=auditor)
        key = auditor.samples[0].key
        verdict = auditor.rolling_verdict(key, 1)
        assert verdict is not None and verdict.final
        assert auditor.rolling_verdict("nonexistent", 1) is None


class TestOnlineSpectrum:
    @staticmethod
    def verdict(k, yes, *, algorithm="X", final=False):
        result = (
            VerificationResult.yes(k, algorithm)
            if yes
            else VerificationResult.no(k, algorithm)
        )
        return StreamVerdict(result=result, ops_seen=10, final=final)

    def test_bucketing_rules(self):
        spectrum = OnlineSpectrum()
        assert (
            spectrum.observe("a", one_atomic=self.verdict(1, True), num_ops=5)
            is StalenessBucket.ATOMIC
        )
        assert (
            spectrum.observe(
                "b",
                one_atomic=self.verdict(1, False),
                two_atomic=self.verdict(2, True),
            )
            is StalenessBucket.TWO_ATOMIC
        )
        assert (
            spectrum.observe(
                "c",
                one_atomic=self.verdict(1, False),
                two_atomic=self.verdict(2, False),
            )
            is StalenessBucket.THREE_PLUS
        )
        # A lone 1-atomic NO gives the optimistic-but-sound 2-atomic bound.
        assert (
            spectrum.observe("d", one_atomic=self.verdict(1, False))
            is StalenessBucket.TWO_ATOMIC
        )

    def test_anomalous_detection(self):
        spectrum = OnlineSpectrum()
        bad = StreamVerdict(
            result=VerificationResult.no(1, "preprocess", reason="anomalies"),
            ops_seen=3,
            final=True,
        )
        assert spectrum.observe("a", one_atomic=bad) is StalenessBucket.ANOMALOUS

    def test_snapshot_structure(self):
        spectrum = OnlineSpectrum()
        spectrum.observe("a", one_atomic=self.verdict(1, True), num_ops=7)
        snap = spectrum.snapshot()
        assert snap.num_keys == 1
        verdict = snap.verdicts[0]
        assert verdict.key == "a" and verdict.minimal_k == 1
        assert verdict.num_operations == 7
        assert spectrum.updates == 1
