"""Unit tests for VerificationResult."""

import pytest

from repro.core.history import History
from repro.core.operation import read, write
from repro.core.result import VerificationResult


@pytest.fixture
def tiny_history():
    return History([write("a", 0.0, 1.0), read("a", 2.0, 3.0)])


class TestConstruction:
    def test_yes_factory(self, tiny_history):
        result = VerificationResult.yes(2, "LBT", witness=tiny_history.operations)
        assert result.is_k_atomic
        assert bool(result)
        assert result.k == 2
        assert result.algorithm == "LBT"

    def test_no_factory(self):
        result = VerificationResult.no(2, "FZF", reason="bad chunk")
        assert not result
        assert result.reason == "bad chunk"
        assert result.witness is None

    def test_stats_are_copied(self):
        stats = {"epochs": 3}
        result = VerificationResult.yes(2, "LBT", stats=stats)
        stats["epochs"] = 99
        assert result.stats["epochs"] == 3


class TestWitnessHandling:
    def test_require_witness_returns_order(self, tiny_history):
        result = VerificationResult.yes(1, "exact", witness=tiny_history.operations)
        assert result.require_witness() == tuple(tiny_history.operations)

    def test_require_witness_raises_without_one(self):
        result = VerificationResult.no(1, "GK")
        with pytest.raises(ValueError):
            result.require_witness()

    def test_check_witness_true_for_valid_order(self, tiny_history):
        result = VerificationResult.yes(1, "exact", witness=tiny_history.operations)
        assert result.check_witness(tiny_history)

    def test_check_witness_false_for_invalid_order(self, tiny_history):
        backwards = list(reversed(tiny_history.operations))
        result = VerificationResult.yes(1, "exact", witness=backwards)
        assert not result.check_witness(tiny_history)

    def test_check_witness_false_when_absent(self, tiny_history):
        result = VerificationResult.yes(1, "GK")
        assert not result.check_witness(tiny_history)

    def test_check_witness_respects_k(self):
        h = History([write("a", 0.0, 1.0), write("b", 2.0, 3.0), read("a", 4.0, 5.0)])
        result_k1 = VerificationResult.yes(1, "exact", witness=h.operations)
        result_k2 = VerificationResult.yes(2, "exact", witness=h.operations)
        assert not result_k1.check_witness(h)
        assert result_k2.check_witness(h)


class TestPresentation:
    def test_summary_contains_verdict_and_algorithm(self):
        yes = VerificationResult.yes(2, "FZF")
        no = VerificationResult.no(2, "FZF", reason="three backward clusters")
        assert "YES" in yes.summary() and "FZF" in yes.summary()
        assert "NO" in no.summary() and "three backward clusters" in no.summary()
