"""Unit tests for replica nodes."""

import pytest

from repro.simulation.events import EventLoop
from repro.simulation.replica import Replica, StoredVersion


class TestWrites:
    def test_write_applied_and_acked(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        acks = []
        replica.handle_write("k", "v1", (1, "c", 0), acks.append)
        loop.run()
        assert acks == ["r0"]
        assert replica.store["k"].value == "v1"
        assert replica.stats.writes_applied == 1

    def test_newer_version_overwrites(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replica.handle_write("k", "old", (1, "c", 0), lambda rid: None)
        replica.handle_write("k", "new", (2, "c", 1), lambda rid: None)
        loop.run()
        assert replica.store["k"].value == "new"

    def test_stale_version_ignored_but_acked(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        acks = []
        replica.handle_write("k", "new", (2, "c", 1), acks.append)
        replica.handle_write("k", "old", (1, "c", 0), acks.append)
        loop.run()
        assert replica.store["k"].value == "new"
        assert replica.stats.writes_ignored_stale == 1
        assert len(acks) == 2

    def test_apply_delay_postpones_ack(self):
        loop = EventLoop()
        replica = Replica("r0", loop, apply_delay_ms=5.0)
        ack_times = []
        replica.handle_write("k", "v", (1, "c", 0), lambda rid: ack_times.append(loop.now))
        loop.run()
        assert ack_times == [5.0]

    def test_out_of_order_delivery_converges_to_newest(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        versions = [(3, "c", 2), (1, "c", 0), (2, "c", 1)]
        for i, version in enumerate(versions):
            replica.handle_write("k", f"v{version[0]}", version, lambda rid: None)
        loop.run()
        assert replica.store["k"].value == "v3"


class TestReads:
    def test_read_returns_stored_version(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replica.install("k", "v", (1, "seed", 0))
        replies = []
        replica.handle_read("k", lambda rid, stored: replies.append((rid, stored)))
        loop.run()
        assert replies[0][0] == "r0"
        assert replies[0][1] == StoredVersion((1, "seed", 0), "v")

    def test_read_of_unknown_key_returns_none(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replies = []
        replica.handle_read("missing", lambda rid, stored: replies.append(stored))
        loop.run()
        assert replies == [None]


class TestFaults:
    def test_crashed_replica_drops_requests(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replica.crash()
        acks = []
        replies = []
        replica.handle_write("k", "v", (1, "c", 0), acks.append)
        replica.handle_read("k", lambda rid, stored: replies.append(stored))
        loop.run()
        assert acks == [] and replies == []
        assert replica.stats.requests_dropped_while_down == 2

    def test_recovered_replica_serves_again(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replica.crash()
        replica.recover()
        acks = []
        replica.handle_write("k", "v", (1, "c", 0), acks.append)
        loop.run()
        assert acks == ["r0"]

    def test_state_survives_crash(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replica.install("k", "v", (1, "seed", 0))
        replica.crash()
        replica.recover()
        assert replica.store["k"].value == "v"

    def test_crash_during_apply_delay_drops_write(self):
        loop = EventLoop()
        replica = Replica("r0", loop, apply_delay_ms=5.0)
        acks = []
        replica.handle_write("k", "v", (1, "c", 0), acks.append)
        loop.schedule(1.0, replica.crash)
        loop.run()
        assert acks == []
        assert "k" not in replica.store

    def test_install_keeps_newest_version(self):
        loop = EventLoop()
        replica = Replica("r0", loop)
        replica.install("k", "new", (5, "seed", 0))
        replica.install("k", "old", (1, "seed", 1))
        assert replica.store["k"].value == "new"
