"""Unit tests for the fault-injection schedule."""

import random

import pytest

from repro.core.errors import SimulationError
from repro.simulation.events import EventLoop
from repro.simulation.faults import FaultEvent, FaultKind, FaultSchedule, crash_window, partition_window
from repro.simulation.network import FixedLatency, Network
from repro.simulation.replica import Replica


def make_sim():
    loop = EventLoop()
    network = Network(loop, FixedLatency(1.0), random.Random(0))
    replicas = {f"replica-{i}": Replica(f"replica-{i}", loop) for i in range(3)}
    return loop, network, replicas


class TestSchedule:
    def test_crash_and_recover_applied_at_times(self):
        loop, network, replicas = make_sim()
        schedule = FaultSchedule()
        schedule.add_crash("replica-0", 10.0)
        schedule.add_recover("replica-0", 20.0)
        schedule.install(loop, network, replicas)
        loop.run_until(15.0)
        assert not replicas["replica-0"].alive
        loop.run()
        assert replicas["replica-0"].alive

    def test_partition_and_heal_applied(self):
        loop, network, replicas = make_sim()
        schedule = FaultSchedule()
        schedule.add_partition("a", "b", 5.0)
        schedule.add_heal("a", "b", 15.0)
        schedule.install(loop, network, replicas)
        loop.run_until(10.0)
        assert network.is_partitioned("a", "b")
        loop.run()
        assert not network.is_partitioned("a", "b")

    def test_unknown_replica_rejected_at_install(self):
        loop, network, replicas = make_sim()
        schedule = FaultSchedule().add_crash("replica-99", 1.0)
        with pytest.raises(SimulationError):
            schedule.install(loop, network, replicas)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(1.0, "meteor-strike", ("replica-0",))

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(-1.0, FaultKind.CRASH, ("replica-0",))

    def test_builder_returns_self_for_chaining(self):
        schedule = FaultSchedule()
        assert schedule.add_crash("r", 1.0) is schedule
        assert len(schedule) == 1


class TestWindows:
    def test_crash_window_has_two_events(self):
        schedule = crash_window("replica-0", 5.0, 25.0)
        kinds = sorted(e.kind for e in schedule.events)
        assert kinds == [FaultKind.CRASH, FaultKind.RECOVER]

    def test_partition_window_has_two_events(self):
        schedule = partition_window("a", "b", 5.0, 25.0)
        kinds = sorted(e.kind for e in schedule.events)
        assert kinds == [FaultKind.HEAL, FaultKind.PARTITION]

    def test_empty_windows_rejected(self):
        with pytest.raises(SimulationError):
            crash_window("replica-0", 10.0, 10.0)
        with pytest.raises(SimulationError):
            partition_window("a", "b", 20.0, 10.0)
