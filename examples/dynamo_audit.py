#!/usr/bin/env python
"""Audit a simulated Dynamo-style store for k-atomicity (Experiment E8).

The paper's motivating question — and its concluding open problem — is whether
real sloppy-quorum stores actually provide 2-atomicity.  This example answers
it for the bundled store simulator: it runs the same workload against several
(N, R, W) replication configurations, records the histories each run produces,
and audits every register with the GK / LBT / FZF verifiers.

Run with:  python examples/dynamo_audit.py
"""

from repro.analysis import audit_trace
from repro.analysis.report import format_table
from repro.simulation import (
    ExponentialLatency,
    QuorumConfig,
    SloppyQuorumStore,
    StoreConfig,
)
from repro.workloads import WorkloadSpec, ZipfianKeys

CONFIGURATIONS = [
    # (N, R, W, read_repair)
    (3, 2, 2, False),   # strict quorums: R + W > N
    (3, 1, 3, False),   # strict via write-all
    (5, 2, 2, False),   # sloppy: R + W <= N
    (5, 1, 2, False),   # sloppier
    (5, 1, 1, False),   # the fast-and-loose end of the dial
    (5, 1, 1, True),    # same, but with read repair
]


def run_configuration(n, r, w, read_repair, *, seed=7):
    config = StoreConfig(
        quorum=QuorumConfig(
            num_replicas=n, read_quorum=r, write_quorum=w, read_repair=read_repair
        ),
        latency=ExponentialLatency(mean_ms=3.0),
    )
    workload = WorkloadSpec(
        num_clients=16,
        operations_per_client=60,
        write_ratio=0.4,
        key_selector=ZipfianKeys(num_keys=4),
        mean_think_time_ms=2.0,
        seed=seed,
    )
    store = SloppyQuorumStore(config, seed=seed)
    return store.run(workload)


def main():
    rows = []
    for n, r, w, repair in CONFIGURATIONS:
        result = run_configuration(n, r, w, repair)
        report = audit_trace(result.history)
        spectrum = report.spectrum
        rows.append(
            [
                result.config.quorum.describe() + (" +RR" if repair else ""),
                result.completed_operations,
                f"{spectrum.fraction_atomic:.0%}",
                f"{spectrum.fraction_within_2:.0%}",
                spectrum.worst_bucket().value,
                report.worst_observed_lag(),
            ]
        )
    print("k-atomicity audit of the simulated sloppy-quorum store")
    print()
    print(
        format_table(
            [
                "configuration",
                "ops",
                "keys 1-atomic",
                "keys <=2-atomic",
                "worst bucket",
                "worst lag",
            ],
            rows,
        )
    )
    print()
    print(
        "Reading the table: strict quorums (R+W>N) stay linearizable; shrinking\n"
        "the quorums trades freshness for latency, first into the 2-atomic\n"
        "band the paper's algorithms certify, then beyond it; read repair pulls\n"
        "a sloppy configuration back towards atomicity."
    )

    # Show the full per-key report for the most interesting configuration.
    print()
    result = run_configuration(5, 1, 2, False)
    print(audit_trace(result.history, title="detailed report for N=5 R=1 W=2").render())


if __name__ == "__main__":
    main()
