#!/usr/bin/env python
"""The audit service end to end: one server, two concurrent audit sessions.

An :class:`~repro.service.AuditServer` runs in-process while two clients
stream different traces to it *concurrently* — a healthy store's trace and a
deliberately sloppy one — each getting rolling window verdicts back as its
stream runs and a final per-register report equal to what batch
``verify_trace`` computes locally.  Mid-stream, one session is checkpointed,
its connection dropped, and the session resumed from the checkpoint — the
recovered verdicts are identical to an uninterrupted run's.

Run with:  python examples/serve_audit.py
"""

import asyncio
import random
import sys
import tempfile
from pathlib import Path

if __package__ is None:  # allow running without installing the package
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.analysis.report import format_table
from repro.core.api import verify_trace
from repro.service import AuditClient, AuditServer
from repro.workloads.synthetic import synthetic_trace


def completion_order(trace):
    return sorted(
        (op for key in trace.keys() for op in trace[key].operations),
        key=lambda op: (op.finish, op.op_id),
    )


async def audit_session(address, name, stream, *, resume_midway=False):
    """Stream one trace as a session; optionally crash and resume halfway."""
    windows = []
    client = await AuditClient.connect(
        address, session=name, k=2, window=32, on_window=windows.append
    )
    if resume_midway:
        cut = len(stream) // 2
        await client.feed_ops(stream[:cut])
        ack = await client.checkpoint()
        await client.close()  # simulate the client (or server link) dying
        print(
            f"  [{name}] crashed after {ack['ops']} ops; "
            f"resuming from checkpoint #{ack['checkpoints']}"
        )
        client = await AuditClient.connect(
            address, session=name, resume=True, on_window=windows.append
        )
        await client.feed_ops(stream[cut:])
    else:
        await client.feed_ops(stream)
    report = await client.finish()
    print(
        f"  [{name}] final report: {len(report.results)} registers, "
        f"{report.ops} ops, {len(report.failures)} alarms, "
        f"{len(windows)} rolling verdict frames"
    )
    return report


async def main_async():
    rng = random.Random(7)
    healthy = synthetic_trace(rng, 4, 60, staleness_probability=0.0)
    sloppy = synthetic_trace(rng, 4, 60, staleness_probability=0.25, max_staleness=2)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        server = AuditServer(checkpoint_dir=checkpoint_dir, checkpoint_every=64)
        await server.start()
        address = server.addresses[0]
        print(f"audit service listening on {address}\n")
        print("two sessions streaming concurrently:")
        healthy_report, sloppy_report = await asyncio.gather(
            audit_session(address, "healthy-store", completion_order(healthy)),
            audit_session(
                address, "sloppy-store", completion_order(sloppy), resume_midway=True
            ),
        )
        print()
        print(server.service_report().render())
        await server.stop()
    return healthy, sloppy, healthy_report, sloppy_report


def main():
    healthy, sloppy, healthy_report, sloppy_report = asyncio.run(main_async())

    # The served verdicts equal local batch verification, register for register.
    rows = []
    for title, trace, report in (
        ("healthy-store", healthy, healthy_report),
        ("sloppy-store", sloppy, sloppy_report),
    ):
        local = verify_trace(trace, 2)
        for key in sorted(local, key=repr):
            served, batch = bool(report.results[key]), bool(local[key])
            assert served == batch, (title, key)
            rows.append([title, key, "YES" if served else "NO", "YES" if batch else "NO"])
    print()
    print(format_table(["session", "register", "served 2-AV", "local 2-AV"], rows))
    print("\nserved verdicts match local batch verification for every register")
    return 0


if __name__ == "__main__":
    sys.exit(main())
