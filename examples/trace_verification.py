#!/usr/bin/env python
"""Verify a trace file: the offline-audit workflow for real systems.

Production audits capture operation logs (client, key, value, invocation and
response timestamps) and verify them offline.  This example shows the full
pipeline on a generated trace:

1. record a trace from the store simulator,
2. persist it as JSON Lines (the same format a production interceptor would
   emit),
3. reload it, normalise each register's history (Section II-C preprocessing),
4. verify 1- and 2-atomicity per register and print the audit report.

Run with:  python examples/trace_verification.py [trace.jsonl]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import audit_trace
from repro.core import verify_trace
from repro.io import dump_jsonl, load_jsonl
from repro.simulation import QuorumConfig, SloppyQuorumStore, StoreConfig
from repro.workloads import UniformKeys, WorkloadSpec


def record_example_trace(path):
    """Run a sloppy-quorum workload and dump its history to ``path``."""
    config = StoreConfig(
        quorum=QuorumConfig(num_replicas=5, read_quorum=1, write_quorum=2)
    )
    workload = WorkloadSpec(
        num_clients=10,
        operations_per_client=40,
        write_ratio=0.4,
        key_selector=UniformKeys(num_keys=3),
        mean_think_time_ms=2.0,
        seed=21,
    )
    result = SloppyQuorumStore(config, seed=21).run(workload)
    count = dump_jsonl(result.history, path)
    print(f"recorded {count} operations from `{result.config.quorum.describe()}` to {path}")


def main():
    if len(sys.argv) > 1:
        trace_path = Path(sys.argv[1])
        print(f"verifying existing trace {trace_path}")
    else:
        trace_path = Path(tempfile.gettempdir()) / "repro-example-trace.jsonl"
        record_example_trace(trace_path)

    trace = load_jsonl(trace_path)
    print(f"loaded {trace.total_operations()} operations over {len(trace)} registers")
    print()

    # Per-register verdicts for k = 1 and k = 2.
    for k in (1, 2):
        results = verify_trace(trace, k)
        passing = sum(1 for r in results.values() if r)
        print(f"k={k}: {passing}/{len(results)} registers verified k-atomic")
    print()

    # Full report: staleness spectrum plus per-register staleness statistics.
    print(audit_trace(trace, title=f"audit of {trace_path.name}").render())


if __name__ == "__main__":
    main()
