#!/usr/bin/env python
"""Weighted k-atomicity and the bin-packing reduction (Section V, Figure 5).

Two demonstrations:

1. *Important writes.*  A storage system can mark certain writes as important
   by giving them a larger weight; weighted k-AV then bounds how much
   "important" staleness any read may observe.  We verify a small history
   under several weight assignments.

2. *NP-hardness in action.*  Theorem 5.1 reduces bin packing to weighted
   k-AV.  We build the Figure 5 construction for a handful of bin-packing
   instances, solve both sides with exact solvers, and show the answers always
   coincide — including decoding a k-WAV witness back into a packing.

Run with:  python examples/weighted_verification.py
"""

from repro import History, read, write
from repro.algorithms import verify_weighted_k_atomic, with_weights
from repro.analysis.report import format_table
from repro.binpacking import (
    BinPackingInstance,
    decode_witness,
    is_feasible,
    reduce_to_wkav,
)


def important_writes_demo():
    print("Important writes: the same history under different weight assignments")
    history = History(
        [
            write("profile-update", 0.0, 1.0),
            write("password-change", 2.0, 3.0),
            read("profile-update", 4.0, 5.0),   # misses the password change
        ]
    )
    rows = []
    for label, weights in [
        ("all writes weight 1", {}),
        ("password-change weight 3", {"password-change": 3}),
        ("both writes weight 3", {"profile-update": 3, "password-change": 3}),
    ]:
        weighted = with_weights(history, weights)
        verdicts = [
            "YES" if verify_weighted_k_atomic(weighted, k) else "NO" for k in (2, 4, 6)
        ]
        rows.append([label] + verdicts)
    print(format_table(["weight assignment", "k=2", "k=4", "k=6"], rows))
    print()


def reduction_demo():
    print("Theorem 5.1: bin packing <-> weighted k-AV on the Figure 5 construction")
    instances = [
        ("3 items of size 2 into 2 bins of 4", BinPackingInstance((2, 2, 2), 4, 2)),
        ("3 items of size 3 into 2 bins of 4", BinPackingInstance((3, 3, 3), 4, 2)),
        ("partition {4,3,3,2,2,2} into 2x8", BinPackingInstance((4, 3, 3, 2, 2, 2), 8, 2)),
        ("same items into 2x7", BinPackingInstance((4, 3, 3, 2, 2, 2), 7, 2)),
    ]
    rows = []
    for label, instance in instances:
        reduced = reduce_to_wkav(instance)
        packing_exists = is_feasible(instance)
        verdict = verify_weighted_k_atomic(reduced.history, reduced.k)
        decoded = ""
        if verdict:
            packing = decode_witness(reduced, verdict.require_witness())
            decoded = str(packing.loads())
        rows.append(
            [
                label,
                len(reduced.history),
                f"k={reduced.k}",
                "feasible" if packing_exists else "infeasible",
                "YES" if verdict else "NO",
                decoded or "-",
            ]
        )
        assert bool(verdict) == packing_exists
    print(
        format_table(
            ["bin-packing instance", "history ops", "bound", "packing", "k-WAV", "decoded bin loads"],
            rows,
        )
    )
    print()
    print(
        "The verdicts match in every row, as Theorem 5.1 requires; when the\n"
        "instance is feasible, the k-WAV witness decodes into a concrete packing."
    )


def main():
    important_writes_demo()
    reduction_demo()


if __name__ == "__main__":
    main()
