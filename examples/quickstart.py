#!/usr/bin/env python
"""Quickstart: verify the k-atomicity of small hand-written histories.

This example walks through the paper's core notions on a five-minute scale:

1. build a history of timed read/write operations,
2. check linearizability (1-atomicity) with the Gibbons–Korach conditions,
3. check 2-atomicity with both LBT (Section III) and FZF (Section IV),
4. compute the minimal staleness bound k and inspect a witness order.

Run with:  python examples/quickstart.py
"""

from repro import History, minimal_k, read, verify, write
from repro.algorithms import verify_2atomic, verify_2atomic_fzf


def banner(title):
    print()
    print(title)
    print("-" * len(title))


def show(history, description):
    banner(description)
    for op in history.operations:
        kind = "write" if op.is_write else "read "
        print(f"  {kind} {op.value!r:>6}   [{op.start:g}, {op.finish:g}]")
    for k in (1, 2, 3):
        result = verify(history, k)
        print(f"  {k}-atomic? {'YES' if result else 'NO':>3}   ({result.algorithm})")
    print(f"  minimal k = {minimal_k(history)}")


def main():
    # A perfectly fresh, serial history: linearizable.
    fresh = History(
        [
            write("v1", 0.0, 1.0),
            read("v1", 2.0, 3.0),
            write("v2", 4.0, 5.0),
            read("v2", 6.0, 7.0),
        ]
    )
    show(fresh, "A fresh, serial history")

    # A read that is one write stale: 2-atomic but not linearizable.  This is
    # the kind of history a Dynamo-style sloppy quorum produces when the read
    # quorum misses the latest write.
    stale_by_one = History(
        [
            write("v1", 0.0, 1.0),
            write("v2", 2.0, 3.0),
            read("v1", 4.0, 5.0),
        ]
    )
    show(stale_by_one, "A read that is one write stale")

    # Two writes intervene before the stale read: not even 2-atomic.
    stale_by_two = History(
        [
            write("v1", 0.0, 1.0),
            write("v2", 2.0, 3.0),
            write("v3", 4.0, 5.0),
            read("v1", 6.0, 7.0),
        ]
    )
    show(stale_by_two, "A read that is two writes stale")

    # Both 2-AV algorithms return a witness total order on YES; the witness is
    # a certified 2-atomic linearisation you can inspect or replay.
    banner("Witness order produced by LBT and FZF for the stale-by-one history")
    for verifier in (verify_2atomic, verify_2atomic_fzf):
        result = verifier(stale_by_one)
        order = " -> ".join(
            f"{'w' if op.is_write else 'r'}({op.value})" for op in result.require_witness()
        )
        print(f"  {result.algorithm:>4}: {order}")
        assert result.check_witness(stale_by_one)


if __name__ == "__main__":
    main()
