#!/usr/bin/env python
"""Consistency "tuning knobs": quorum size vs. latency vs. staleness (E9).

The paper's introduction argues that verifying k-atomicity lets operators turn
back consistency knobs (e.g. quorum sizes) when an application only needs
bounded staleness.  This example quantifies that trade-off on the simulator:
for a fixed replication factor it sweeps the read-quorum size, measuring

* mean operation latency (the cost of larger quorums), and
* the staleness spectrum of the recorded histories (the consistency obtained).

Run with:  python examples/tuning_knobs.py
"""

from repro.analysis import atomicity_spectrum, staleness_stats
from repro.analysis.report import format_table
from repro.simulation import (
    ExponentialLatency,
    QuorumConfig,
    SloppyQuorumStore,
    StoreConfig,
)
from repro.workloads import SingleKey, WorkloadSpec

NUM_REPLICAS = 5
WRITE_QUORUM = 2


def run_with_read_quorum(read_quorum, *, seed=11):
    config = StoreConfig(
        quorum=QuorumConfig(
            num_replicas=NUM_REPLICAS,
            read_quorum=read_quorum,
            write_quorum=WRITE_QUORUM,
        ),
        latency=ExponentialLatency(mean_ms=4.0),
    )
    workload = WorkloadSpec(
        num_clients=12,
        operations_per_client=60,
        write_ratio=0.4,
        key_selector=SingleKey(),
        mean_think_time_ms=2.0,
        seed=seed,
    )
    return SloppyQuorumStore(config, seed=seed).run(workload)


def mean_latency(history):
    durations = [op.finish - op.start for op in history.operations]
    return sum(durations) / len(durations)


def main():
    rows = []
    for read_quorum in range(1, NUM_REPLICAS + 1):
        result = run_with_read_quorum(read_quorum)
        history = result.history["key-00000"]
        spectrum = atomicity_spectrum(result.history)
        stats = staleness_stats(history)
        quorum = result.config.quorum
        rows.append(
            [
                f"R={read_quorum} W={WRITE_QUORUM} (N={NUM_REPLICAS})",
                "strict" if quorum.is_strict else "sloppy",
                f"{mean_latency(history):.2f} ms",
                spectrum.worst_bucket().value,
                f"{stats.stale_fraction:.1%}",
                stats.max_value_lag,
            ]
        )
    print("Tuning the read quorum on a 5-replica register (write quorum fixed at 2)")
    print()
    print(
        format_table(
            [
                "configuration",
                "quorum type",
                "mean op latency",
                "staleness bucket",
                "stale reads",
                "worst lag",
            ],
            rows,
        )
    )
    print()
    print(
        "Small read quorums answer faster but drift into the k>=2 buckets; the\n"
        "k-AV verifiers tell the operator exactly how far the knob can be turned\n"
        "before the application's staleness budget is exceeded."
    )


if __name__ == "__main__":
    main()
