#!/usr/bin/env python
"""Live-audit a fault-injected simulation run (the online workflow).

The paper frames verification as an audit an operator runs against a *live*
store.  This example shows that loop end to end: a sloppy-quorum store runs a
workload while a replica crash is injected mid-run, and a
:class:`~repro.simulation.LiveAuditor` — subscribed to the history recorder's
completion stream — emits rolling per-register 1-AV and 2-AV verdicts while
the simulation is still executing.  At the end, the rolling verdicts are
compared against batch verification of the recorded trace (they match by
construction) and the online staleness spectrum is printed.

Run with:  python examples/live_audit.py
"""

import sys
from pathlib import Path

if __package__ is None:  # allow running without installing the package
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.analysis.report import format_table
from repro.core.api import verify
from repro.core.windows import WindowPolicy
from repro.simulation import (
    ExponentialLatency,
    LiveAuditor,
    QuorumConfig,
    SloppyQuorumStore,
    StoreConfig,
)
from repro.simulation.faults import crash_window
from repro.workloads import WorkloadSpec, ZipfianKeys


def main():
    # A deliberately sloppy configuration (R + W <= N) with a mid-run crash:
    # the recipe for stale reads the auditor should catch as they happen.
    config = StoreConfig(
        quorum=QuorumConfig(num_replicas=3, read_quorum=1, write_quorum=1),
        latency=ExponentialLatency(mean_ms=4.0),
    )
    workload = WorkloadSpec(
        num_clients=10,
        operations_per_client=40,
        write_ratio=0.4,
        key_selector=ZipfianKeys(num_keys=4),
        mean_think_time_ms=2.0,
        seed=3,
    )
    faults = crash_window("replica-0", start_ms=30.0, end_ms=150.0)

    auditor = LiveAuditor(ks=(1, 2), window=WindowPolicy.count(48))
    store = SloppyQuorumStore(config, seed=13)
    result = store.run(workload, faults=faults, auditor=auditor)

    print(result.summary())
    print(auditor.summary())
    print()

    # The rolling verdict stream: these lines existed *during* the run, in
    # simulated-time order — an operator tailing them would have seen the
    # first violations long before the workload finished.
    print("mid-run verdict stream (first alarms per register):")
    alarmed = set()
    for sample in auditor.samples:
        if sample.verdict.final and not sample.verdict and (sample.key, sample.k) not in alarmed:
            alarmed.add((sample.key, sample.k))
            print(" ", sample.describe())
    if not alarmed:
        print("  (no violations — try a sloppier configuration)")
    print()

    # Rolling final verdicts equal batch verification of the recorded trace.
    rows = []
    for key in sorted(result.history.keys(), key=repr):
        online_1 = auditor.final_results(1)[key]
        online_2 = auditor.final_results(2)[key]
        batch_1 = verify(result.history[key], 1)
        batch_2 = verify(result.history[key], 2)
        assert bool(online_1) == bool(batch_1) and bool(online_2) == bool(batch_2)
        rows.append(
            [
                key,
                len(result.history[key]),
                "YES" if online_1 else "NO",
                "YES" if online_2 else "NO",
                "YES" if batch_2 else "NO",
            ]
        )
    print(
        format_table(
            ["key", "ops", "online 1-AV", "online 2-AV", "batch 2-AV"], rows
        )
    )
    print()

    spectrum = auditor.spectrum_snapshot()
    print("online staleness spectrum:")
    for bucket, count in sorted(spectrum.counts().items(), key=lambda b: b[0].value):
        print(f"  {bucket.value:>10}: {count}")


if __name__ == "__main__":
    main()
