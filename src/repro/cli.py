"""Command-line interface for trace verification and store auditing.

Three subcommands cover the offline-audit workflow end to end::

    python -m repro verify TRACE --k 2        # per-register k-AV verdicts
    python -m repro audit TRACE               # staleness spectrum + report
    python -m repro simulate --out TRACE ...  # record a sloppy-quorum trace

Traces are JSON Lines (``.jsonl``, the format of :mod:`repro.io`) or CSV
(by extension).  The CLI is a thin layer over the library API so that
everything it does can also be scripted.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.report import audit_trace, format_table
from .core.builder import TraceBuilder
from .engine import Engine
from .io.formats import dump_jsonl, load_trace, stream_trace
from .simulation import ExponentialLatency, QuorumConfig, SloppyQuorumStore, StoreConfig
from .workloads import UniformKeys, WorkloadSpec, ZipfianKeys

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_verify(args: argparse.Namespace, out) -> int:
    # Stream the trace straight into per-register buckets; the engine shards
    # and (optionally) parallelises verification from there.
    builder = TraceBuilder(stream_trace(args.trace))
    engine = Engine(
        executor=args.engine,
        jobs=args.jobs,
        partitioner=args.partitioner,
        algorithm=args.algorithm,
        max_exact_ops=args.max_exact_ops,
    )
    report = engine.verify_trace(builder, args.k)
    results = report.results
    op_counts = builder.operation_counts()
    rows = []
    failures = 0
    for key in sorted(results, key=repr):
        result = results[key]
        if not result:
            failures += 1
        rows.append(
            [
                key,
                op_counts[key],
                "YES" if result else "NO",
                result.algorithm,
                result.reason if not result else "",
            ]
        )
    print(format_table(["key", "ops", f"{args.k}-atomic", "algorithm", "reason"], rows), file=out)
    print(
        f"\n{len(results) - failures}/{len(results)} registers are {args.k}-atomic",
        file=out,
    )
    if args.engine != "serial" or args.jobs:
        print(report.summary(), file=out)
    return 1 if failures and args.strict else 0


def _cmd_audit(args: argparse.Namespace, out) -> int:
    trace = load_trace(args.trace)
    report = audit_trace(
        trace,
        title=f"consistency audit of {Path(args.trace).name}",
        resolve_exact=args.resolve_exact,
    )
    print(report.render(), file=out)
    return 0


def _cmd_simulate(args: argparse.Namespace, out) -> int:
    config = StoreConfig(
        quorum=QuorumConfig(
            num_replicas=args.replicas,
            read_quorum=args.read_quorum,
            write_quorum=args.write_quorum,
            read_repair=args.read_repair,
        ),
        latency=ExponentialLatency(mean_ms=args.mean_latency_ms),
        drop_probability=args.drop_probability,
    )
    selector = UniformKeys(args.keys) if args.uniform_keys else ZipfianKeys(args.keys)
    workload = WorkloadSpec(
        num_clients=args.clients,
        operations_per_client=args.ops_per_client,
        write_ratio=args.write_ratio,
        key_selector=selector,
        mean_think_time_ms=args.think_time_ms,
        seed=args.seed,
    )
    result = SloppyQuorumStore(config, seed=args.seed).run(workload)
    count = dump_jsonl(result.history, args.out)
    print(result.summary(), file=out)
    print(f"wrote {count} operations to {args.out}", file=out)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-atomicity verification for replicated storage histories",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="verify k-atomicity of every register in a trace")
    p_verify.add_argument("trace", help="trace file (.jsonl or .csv)")
    p_verify.add_argument("--k", type=int, default=2, help="staleness bound to verify (default 2)")
    p_verify.add_argument(
        "--algorithm",
        default="auto",
        help="auto, gk, lbt, lbt-reference, fzf, or exact (default auto)",
    )
    p_verify.add_argument(
        "--max-exact-ops",
        type=int,
        default=40,
        dest="max_exact_ops",
        help="size guard for the exponential k>=3 fallback",
    )
    p_verify.add_argument(
        "--strict",
        action="store_true",
        help="exit with status 1 if any register fails verification",
    )
    p_verify.add_argument(
        "--engine",
        choices=["serial", "threads", "processes"],
        default="serial",
        help="shard executor for per-register verification (default serial)",
    )
    p_verify.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker count for parallel engines (default: available CPUs)",
    )
    p_verify.add_argument(
        "--partitioner",
        choices=["hash", "round-robin", "size-balanced"],
        default="size-balanced",
        help="register-to-shard assignment strategy (default size-balanced)",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_audit = sub.add_parser("audit", help="full staleness-spectrum audit of a trace")
    p_audit.add_argument("trace", help="trace file (.jsonl or .csv)")
    p_audit.add_argument(
        "--resolve-exact",
        action="store_true",
        dest="resolve_exact",
        help="resolve minimal k exactly for small k>=3 registers (exponential)",
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_sim = sub.add_parser("simulate", help="record a trace from the sloppy-quorum simulator")
    p_sim.add_argument("--out", required=True, help="output trace path (.jsonl)")
    p_sim.add_argument("--replicas", type=int, default=5)
    p_sim.add_argument("--read-quorum", type=int, default=1, dest="read_quorum")
    p_sim.add_argument("--write-quorum", type=int, default=2, dest="write_quorum")
    p_sim.add_argument("--read-repair", action="store_true", dest="read_repair")
    p_sim.add_argument("--clients", type=int, default=12)
    p_sim.add_argument("--ops-per-client", type=int, default=50, dest="ops_per_client")
    p_sim.add_argument("--write-ratio", type=float, default=0.4, dest="write_ratio")
    p_sim.add_argument("--keys", type=int, default=4)
    p_sim.add_argument("--uniform-keys", action="store_true", dest="uniform_keys")
    p_sim.add_argument("--mean-latency-ms", type=float, default=3.0, dest="mean_latency_ms")
    p_sim.add_argument("--think-time-ms", type=float, default=2.0, dest="think_time_ms")
    p_sim.add_argument("--drop-probability", type=float, default=0.0, dest="drop_probability")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
