"""Command-line interface for trace verification and store auditing.

Five subcommands cover the audit workflow — offline, online, and served —
end to end::

    python -m repro verify TRACE --k 2        # per-register k-AV verdicts
    python -m repro verify TRACE --online     # windowed streaming verification
    python -m repro verify TRACE --remote A   # stream the trace to a server
    python -m repro verify H --format jepsen  # verify a foreign (Jepsen) history
    python -m repro watch TRACE --follow      # rolling verdicts while a log grows
    python -m repro audit TRACE               # staleness spectrum + report
    python -m repro serve --port 7400         # run the concurrent audit service
    python -m repro simulate --out TRACE ...  # record a sloppy-quorum trace
    python -m repro convert A B --to jepsen   # convert between trace formats
    python -m repro formats                   # list the registered formats
    python -m repro experiment run SPEC       # run a declarative experiment grid
    python -m repro chaos kinds               # list fault-injection kinds
    python -m repro chaos trace PLAN --out T  # hostile trace from a fault plan

``watch`` reads JSON Lines from a file, a growing log (``--follow``) or
stdin (``-``) and prints a verdict block every time a window closes, so a
piped stream yields intermediate verdicts long before end-of-input.
``serve`` runs the audit service of :mod:`repro.service` — many concurrent
sessions, rolling verdicts, checkpoint/resume — and ``verify --remote``
streams a trace to such a server instead of verifying in-process.  Trace
formats are resolved by the format registry (:mod:`repro.io.registry`):
native JSON Lines and CSV plus the foreign Jepsen/Porcupine adapters,
sniffed by extension or forced with ``--format``.  ``experiment run``
executes the declarative grids of :mod:`repro.experiments` (the canned specs
under ``experiments/`` regenerate the paper's evaluation).  The CLI is a
thin layer over the library API so that everything it does can also be
scripted.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .analysis.report import audit_trace, format_table
from .core.builder import TraceBuilder
from .core.windows import WindowPolicy
from .engine import Engine, StreamingEngine
from .io.formats import dump_jsonl, follow_jsonl, iter_jsonl_handle, load_trace, stream_trace
from .io.registry import FORMATS, available_formats, dump_trace, resolve_format
from .simulation import ExponentialLatency, QuorumConfig, SloppyQuorumStore, StoreConfig
from .workloads import UniformKeys, WorkloadSpec, ZipfianKeys

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _window_policy(args: argparse.Namespace) -> WindowPolicy:
    """Build the window policy from --window/--window-mode/--overlap flags.

    Values are passed through unrounded; WindowPolicy rejects fractional
    sizes/overlaps in count mode instead of silently truncating them.
    """
    return WindowPolicy(
        mode=args.window_mode, size=args.window, overlap=args.overlap
    )


def _add_format_flag(parser: argparse.ArgumentParser) -> None:
    """The trace-format flag, with choices drawn from the format registry.

    The registry (:mod:`repro.io.registry`) is the single source of truth:
    adding a format there makes it selectable here (and sniffable by
    extension) without touching the CLI.
    """
    parser.add_argument(
        "--format",
        dest="fmt",
        default=None,
        choices=sorted(FORMATS),
        help="trace format (default: sniffed from the file extension)",
    )


def _add_window_flags(parser: argparse.ArgumentParser, *, default_window: float) -> None:
    parser.add_argument(
        "--window",
        type=float,
        default=default_window,
        help=f"window size: operations, or time units with --window-mode time "
        f"(default {default_window:g})",
    )
    parser.add_argument(
        "--window-mode",
        choices=["count", "time"],
        default="count",
        dest="window_mode",
        help="cut windows by operation count or by finish-timestamp grid (default count)",
    )
    parser.add_argument(
        "--overlap",
        type=float,
        default=0,
        help="sliding-window overlap margin carried between windows (default 0: tumbling)",
    )
    parser.add_argument(
        "--stream-mode",
        choices=["rolling", "windowed"],
        default="rolling",
        dest="stream_mode",
        help="rolling: persistent incremental checkers (exact final verdicts); "
        "windowed: independent per-window batch verification (window-bounded "
        "buffering, approximate YES verdicts)",
    )


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _print_results_table(results, k, out, *, op_counts=None, epilogue="") -> int:
    """Render the per-register verdict table shared by the local and remote
    ``verify`` paths; returns the number of failing registers."""
    headers = ["key"] + (["ops"] if op_counts is not None else [])
    headers += [f"{k}-atomic", "algorithm", "reason"]
    rows = []
    failures = 0
    for key in sorted(results, key=repr):
        result = results[key]
        if not result:
            failures += 1
        row = [key] + ([op_counts[key]] if op_counts is not None else [])
        row += [
            "YES" if result else "NO",
            result.algorithm,
            result.reason if not result else "",
        ]
        rows.append(row)
    print(format_table(headers, rows), file=out)
    print(
        f"\n{len(results) - failures}/{len(results)} registers are "
        f"{k}-atomic{epilogue}",
        file=out,
    )
    return failures


def _cmd_verify(args: argparse.Namespace, out) -> int:
    if args.remote:
        return _cmd_verify_remote(args, out)
    if args.online:
        return _cmd_verify_online(args, out)
    engine = Engine(
        executor=args.engine,
        jobs=args.jobs,
        partitioner=args.partitioner,
        algorithm=args.algorithm,
        max_exact_ops=args.max_exact_ops,
        columnar=False if args.no_columnar else None,
        kernel=args.kernel,
        tier=args.tier,
    )
    from .io.registry import resolve_format

    if resolve_format(args.trace, args.fmt).name == "rcol":
        # Memory-mapped trace: let the engine ingest registers lazily instead
        # of materialising the operation stream here.
        from .io.rcol import RcolFile

        with RcolFile(args.trace) as rcol_file:
            op_counts = dict(rcol_file.register_sizes())
        report = engine.verify_file(args.trace, args.k, fmt=args.fmt)
    else:
        # Stream the trace straight into per-register buckets; the engine
        # shards and (optionally) parallelises verification from there.
        builder = TraceBuilder(stream_trace(args.trace, args.fmt))
        op_counts = builder.operation_counts()
        report = engine.verify_trace(builder, args.k)
    failures = _print_results_table(
        report.results, args.k, out, op_counts=op_counts
    )
    if args.engine != "serial" or args.jobs or args.tier:
        # A tiered run always prints the summary: the tier hit-rates in it
        # are how a skipped exact check stays visible.
        print(report.summary(), file=out)
    return 1 if failures and args.strict else 0


def _cmd_verify_remote(args: argparse.Namespace, out) -> int:
    """The --remote path of ``verify``: stream the trace to an audit server."""
    from .core.errors import ServiceError
    from .service import verify_remote

    # Local-execution flags have no effect on a remote session; refuse the
    # combination loudly rather than silently dropping what the user asked for.
    conflicts = [
        flag
        for flag, used in (
            ("--online", args.online),
            ("--engine", args.engine != "serial"),
            ("--jobs", args.jobs is not None),
            ("--partitioner", args.partitioner != "size-balanced"),
            ("--no-columnar", args.no_columnar),
            ("--kernel", args.kernel is not None),
            ("--tier", args.tier is not None),
            ("--stream-mode", args.stream_mode != "rolling"),
        )
        if used
    ]
    if conflicts:
        print(
            f"error: {', '.join(conflicts)} select local execution and cannot "
            "be combined with --remote (the server controls its own execution)",
            file=out,
        )
        return 2
    try:
        report = verify_remote(
            args.trace,
            args.k,
            address=args.remote,
            algorithm=args.algorithm,
            window=_window_policy(args),
            session=args.session,
            fmt=args.fmt,
        )
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: cannot audit via {args.remote}: {exc}", file=out)
        return 2
    failures = _print_results_table(
        report.results,
        args.k,
        out,
        epilogue=(
            f" (session {report.session_id!r} on {args.remote}: "
            f"{report.ops} ops, {report.num_windows} windows)"
        ),
    )
    return 1 if failures and args.strict else 0


def _cmd_verify_online(args: argparse.Namespace, out) -> int:
    """The --online path of ``verify``: windowed streaming over the trace."""
    if args.stream_mode == "rolling" and args.engine == "processes":
        print(
            "error: rolling streaming needs a shared-memory executor; use "
            "--engine serial/threads or --stream-mode windowed",
            file=out,
        )
        return 2
    engine = StreamingEngine(
        window=_window_policy(args),
        mode=args.stream_mode,
        algorithm=args.algorithm,
        executor=args.engine,
        jobs=args.jobs,
        max_exact_ops=args.max_exact_ops,
        tier=args.tier,
    )
    report = engine.verify_stream(stream_trace(args.trace, args.fmt), args.k)
    print(report.render(), file=out)
    if args.tier:
        print(report.summary(), file=out)
    print(
        f"\n{report.num_registers - len(report.failures)}/{report.num_registers} "
        f"registers are {args.k}-atomic",
        file=out,
    )
    return 1 if report.failures and args.strict else 0


def _cmd_watch(args: argparse.Namespace, out) -> int:
    """Rolling verdicts over a JSONL stream: stdin, a file, or a growing log."""
    state_store = None
    if args.retain_windows is not None:
        if args.state_dir is None:
            print("error: --retain-windows needs --state-dir", file=out)
            return 2
        from .core.errors import StateError
        from .state import open_state_store

        try:
            state_store = open_state_store(args.state_backend, args.state_dir)
        except StateError as exc:
            print(f"error: {exc}", file=out)
            return 2
    elif args.state_dir is not None:
        print("error: --state-dir needs --retain-windows", file=out)
        return 2
    engine = StreamingEngine(
        window=_window_policy(args),
        mode=args.stream_mode,
        algorithm=args.algorithm,
        executor="serial",
        state_store=state_store,
        retain_windows=args.retain_windows,
    )
    if args.trace == "-":
        if args.fmt not in (None, "jsonl"):
            print(
                f"error: stdin streams are always JSON Lines; --format {args.fmt} "
                "applies only to files (convert first: repro convert)",
                file=out,
            )
            return 2
        ops = iter_jsonl_handle(sys.stdin, source="<stdin>")
    elif args.follow:
        # Resolve the format the non-follow path would use (flag or sniffed
        # extension), so `watch history.jepsen.json --follow` fails as
        # clearly as `--format jepsen --follow` does.
        resolved = resolve_format(args.trace, args.fmt).name
        if resolved != "jsonl":
            print(
                f"error: --follow tails JSON Lines logs; {resolved!r} "
                "is not a line-appendable format",
                file=out,
            )
            return 2
        ops = follow_jsonl(
            args.trace,
            poll_interval_s=args.poll_interval,
            idle_timeout_s=args.idle_timeout,
        )
    else:
        ops = stream_trace(args.trace, args.fmt)

    def on_window(window_report) -> None:
        for line in window_report.render_lines():
            print(line, file=out)
        if hasattr(out, "flush"):
            out.flush()

    try:
        report = engine.verify_stream(ops, args.k, on_window=on_window)
    finally:
        if state_store is not None:
            state_store.close()
    print("", file=out)
    print(report.summary(), file=out)
    failures = report.failures
    if failures:
        print("", file=out)
        print(
            format_table(
                ["key", "algorithm", "reason"],
                [[key, r.algorithm, r.reason] for key, r in failures.items()],
            ),
            file=out,
        )
    return 1 if failures and args.strict else 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Run the concurrent audit service until interrupted (or quota reached)."""
    import asyncio

    from .service import AuditServer
    from .service.session import SessionConfig

    from .core.errors import ServiceError, StateError

    port = args.port
    if port is None and args.unix is None:
        port = 7400
    try:
        server = AuditServer(
            host=args.host,
            port=port,
            unix_path=args.unix,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            queue_size=args.queue_size,
            max_sessions=args.max_sessions,
            default_config=SessionConfig(
                k=args.k,
                algorithm=args.algorithm,
                state_backend=args.state_backend,
                tier=args.tier,
            ),
            state_backend=args.state_backend,
            workers=args.workers,
            session_idle_timeout=args.idle_timeout,
            max_active_sessions=args.max_active,
        )
    except (ServiceError, StateError) as exc:
        print(f"error: {exc}", file=out)
        return 2

    async def run() -> None:
        import signal

        await server.start()
        # Graceful drain on SIGTERM/SIGINT: stop accepting, checkpoint every
        # live session at an operation boundary, then fall out of
        # serve_forever.  A second signal cancels the drain the hard way.
        loop = asyncio.get_running_loop()
        drain_task: list = []

        def _begin_drain(signame: str) -> None:
            if drain_task:
                for task in drain_task:
                    task.cancel()
                return
            print(f"{signame}: draining audit service...", file=out)
            if hasattr(out, "flush"):
                out.flush()
            drain_task.append(asyncio.ensure_future(server.drain()))

        for signame in ("SIGTERM", "SIGINT"):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame), _begin_drain, signame
                )
            except (NotImplementedError, RuntimeError):  # non-unix loops
                pass
        for address in server.addresses:
            print(f"audit service listening on {address}", file=out)
        if hasattr(out, "flush"):
            out.flush()
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    print("", file=out)
    print(server.service_report().render(), file=out)
    return 0


def _cmd_chaos_kinds(args: argparse.Namespace, out) -> int:
    """List the registered fault kinds and the arm each one drives."""
    from .chaos import FAULT_KINDS

    rows = [[kind, domain] for kind, domain in sorted(FAULT_KINDS.items())]
    print(format_table(["kind", "domain"], rows), file=out)
    return 0


def _cmd_chaos_trace(args: argparse.Namespace, out) -> int:
    """Generate the hostile trace a fault plan's workload clauses describe."""
    from .chaos import load_plan
    from .core.errors import ReproError
    from .workloads.chaos import dump_chaos_fixtures, history_from_plan

    try:
        plan = load_plan(args.plan)
        ops = history_from_plan(plan)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if not ops:
        print(
            f"error: plan {plan.name!r} has no workload clauses "
            "(hot_key / indeterminate_storm / clock_skew)",
            file=out,
        )
        return 2
    count = dump_trace(iter(ops), args.out, "jsonl")
    print(
        f"plan {plan.name!r} (seed {plan.seed}): wrote {count} operations "
        f"to {args.out}",
        file=out,
    )
    if args.fixtures is not None:
        stem = Path(args.out).stem
        paths = dump_chaos_fixtures(ops, args.fixtures, stem)
        for fmt, path in sorted(paths.items()):
            print(f"wrote {fmt} fixture: {path}", file=out)
    return 0


def _cmd_audit(args: argparse.Namespace, out) -> int:
    trace = load_trace(args.trace, args.fmt)
    report = audit_trace(
        trace,
        title=f"consistency audit of {Path(args.trace).name}",
        resolve_exact=args.resolve_exact,
    )
    print(report.render(), file=out)
    return 0


def _cmd_convert(args: argparse.Namespace, out) -> int:
    """Convert a trace between registered formats.

    The writers materialise the operation list before emitting (the event
    formats must interleave and sort by time anyway), so conversion memory
    is O(trace) — same as ``load_trace`` — not constant.
    """
    from .core.errors import TraceFormatError

    try:
        source = resolve_format(args.source, args.from_fmt)
        target = resolve_format(args.target, args.to_fmt)
        count = dump_trace(source.reader(args.source), args.target, target.name)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(
        f"converted {count} operations: {args.source} ({source.name}) -> "
        f"{args.target} ({target.name})",
        file=out,
    )
    return 0


def _cmd_formats(args: argparse.Namespace, out) -> int:
    """List the registered trace formats and their sniffable extensions."""
    rows = []
    for name, description in available_formats().items():
        spec = FORMATS[name]
        rows.append([name, " ".join(spec.extensions), description])
    print(format_table(["format", "extensions", "description"], rows), file=out)
    return 0


def _cmd_experiment_run(args: argparse.Namespace, out) -> int:
    from .experiments import ExperimentError, load_spec, run_experiment, validate_report

    try:
        spec = load_spec(args.spec)
    except ExperimentError as exc:
        print(f"error: {exc}", file=out)
        return 2

    progress = None
    if not args.quiet:
        def progress(line: str) -> None:
            print(f"  {line}", file=out)
            if hasattr(out, "flush"):
                out.flush()

    trials = (spec.smoke() if args.smoke else spec).trials()
    print(
        f"running experiment {spec.name!r} ({spec.kind}): {len(trials)} trials"
        + (" [smoke]" if args.smoke else ""),
        file=out,
    )
    try:
        report = run_experiment(spec, smoke=args.smoke, progress=progress)
    except ExperimentError as exc:
        print(f"error: {exc}", file=out)
        return 2
    validate_report(report.to_dict(), source=spec.name)  # the schema CI asserts
    paths = report.write(args.out)
    print("", file=out)
    print(report.render_text(), file=out)
    print("", file=out)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind:>4}: {path}", file=out)
    return 0


def _cmd_experiment_report(args: argparse.Namespace, out) -> int:
    from .experiments import ExperimentError, load_report

    try:
        report = load_report(args.report)
    except ExperimentError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.emit == "markdown":
        print(report.to_markdown(), file=out, end="")
    elif args.emit == "csv":
        print(report.to_csv(), file=out, end="")
    elif args.emit == "json":
        print(report.to_json(), file=out)
    else:  # table
        print(report.render_text(), file=out)
    return 0


def _cmd_simulate(args: argparse.Namespace, out) -> int:
    config = StoreConfig(
        quorum=QuorumConfig(
            num_replicas=args.replicas,
            read_quorum=args.read_quorum,
            write_quorum=args.write_quorum,
            read_repair=args.read_repair,
        ),
        latency=ExponentialLatency(mean_ms=args.mean_latency_ms),
        drop_probability=args.drop_probability,
    )
    selector = UniformKeys(args.keys) if args.uniform_keys else ZipfianKeys(args.keys)
    workload = WorkloadSpec(
        num_clients=args.clients,
        operations_per_client=args.ops_per_client,
        write_ratio=args.write_ratio,
        key_selector=selector,
        mean_think_time_ms=args.think_time_ms,
        seed=args.seed,
    )
    result = SloppyQuorumStore(config, seed=args.seed).run(workload)
    count = dump_jsonl(result.history, args.out)
    print(result.summary(), file=out)
    print(f"wrote {count} operations to {args.out}", file=out)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-atomicity verification for replicated storage histories",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="verify k-atomicity of every register in a trace")
    p_verify.add_argument("trace", help="trace file (.jsonl or .csv)")
    p_verify.add_argument("--k", type=int, default=2, help="staleness bound to verify (default 2)")
    p_verify.add_argument(
        "--algorithm",
        default="auto",
        help="auto, gk, lbt, lbt-reference, fzf, or exact (default auto)",
    )
    p_verify.add_argument(
        "--max-exact-ops",
        type=int,
        default=40,
        dest="max_exact_ops",
        help="size guard for the exponential k>=3 fallback",
    )
    p_verify.add_argument(
        "--strict",
        action="store_true",
        help="exit with status 1 if any register fails verification",
    )
    p_verify.add_argument(
        "--engine",
        choices=["serial", "threads", "processes"],
        default="serial",
        help="shard executor for per-register verification (default serial)",
    )
    p_verify.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker count for parallel engines (default: available CPUs)",
    )
    p_verify.add_argument(
        "--partitioner",
        choices=["hash", "round-robin", "size-balanced"],
        default="size-balanced",
        help="register-to-shard assignment strategy (default size-balanced)",
    )
    p_verify.add_argument(
        "--no-columnar",
        action="store_true",
        dest="no_columnar",
        help="disable the columnar (struct-of-arrays) fast path and verify "
        "through the object-model reference kernels",
    )
    p_verify.add_argument(
        "--kernel",
        choices=["object", "columnar", "numpy"],
        default=None,
        help="kernel tier for the verification hot loops (default: fastest "
        "available — numpy when importable, else columnar); all tiers "
        "produce identical verdicts",
    )
    p_verify.add_argument(
        "--tier",
        choices=["exact", "screen", "auto"],
        default=None,
        help="adaptive verification tier: exact (every register pays the "
        "full check), screen (k-monotone GK/FZF screen with escalation to "
        "exact), or auto (screen plus feature gating and cost-model kernel "
        "selection); unknown names fail the parse — there is no silent "
        "fallback (default: exact)",
    )
    p_verify.add_argument(
        "--online",
        action="store_true",
        help="stream the trace through windows and report a verdict timeline "
        "instead of one batch pass",
    )
    p_verify.add_argument(
        "--remote",
        default=None,
        metavar="ADDRESS",
        help="stream the trace to a running audit service (HOST:PORT or "
        "unix:PATH) instead of verifying in-process",
    )
    p_verify.add_argument(
        "--session",
        default=None,
        help="session identifier for --remote (default: server-assigned)",
    )
    _add_window_flags(p_verify, default_window=256)
    _add_format_flag(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_watch = sub.add_parser(
        "watch",
        help="rolling k-AV verdicts over a JSONL stream (file, growing log, or stdin)",
    )
    p_watch.add_argument(
        "trace",
        nargs="?",
        default="-",
        help="JSONL trace file, or '-' for stdin (default '-')",
    )
    p_watch.add_argument("--k", type=int, default=2, help="staleness bound to watch (default 2)")
    p_watch.add_argument(
        "--algorithm",
        default="auto",
        help="auto or a registered algorithm name (default auto)",
    )
    _add_window_flags(p_watch, default_window=64)
    p_watch.add_argument(
        "--follow",
        action="store_true",
        help="tail the file for appended operations (tail -f style)",
    )
    p_watch.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        dest="poll_interval",
        help="seconds between polls while following (default 0.2)",
    )
    p_watch.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        dest="idle_timeout",
        help="stop following after this many idle seconds (default: follow forever)",
    )
    p_watch.add_argument(
        "--strict",
        action="store_true",
        help="exit with status 1 if any register fails verification",
    )
    p_watch.add_argument(
        "--state-dir",
        dest="state_dir",
        default=None,
        metavar="DIR",
        help="spill cold window reports to a state store in DIR so "
        "long-running watches hold a bounded working set (needs "
        "--retain-windows)",
    )
    p_watch.add_argument(
        "--state-backend",
        dest="state_backend",
        default="segments",
        metavar="NAME",
        help="state-store backend for --state-dir: json, sqlite or segments "
        "(default segments)",
    )
    p_watch.add_argument(
        "--retain-windows",
        dest="retain_windows",
        type=_positive_int,
        default=None,
        metavar="N",
        help="keep only the N most recent window reports in memory, spilling "
        "older ones to --state-dir",
    )
    _add_format_flag(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_serve = sub.add_parser(
        "serve",
        help="run the concurrent audit service (many sessions, rolling verdicts)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 7400; 0 picks a free port; TCP is disabled "
        "when only --unix is given)",
    )
    p_serve.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="additionally (or exclusively) listen on this unix socket path",
    )
    p_serve.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        default=None,
        help="directory for session checkpoints (enables checkpoint/resume)",
    )
    p_serve.add_argument(
        "--checkpoint-every",
        dest="checkpoint_every",
        type=_positive_int,
        default=None,
        help="checkpoint each session every N operations (needs --checkpoint-dir)",
    )
    p_serve.add_argument(
        "--state-backend",
        dest="state_backend",
        default="json",
        metavar="NAME",
        help="durable state-store backend under --checkpoint-dir: json "
        "(one fsync-ed file per session, the default), sqlite (one WAL "
        "database) or segments (log-structured segment files); checkpoint "
        "payloads are byte-identical across backends",
    )
    p_serve.add_argument(
        "--queue-size",
        dest="queue_size",
        type=_positive_int,
        default=1024,
        help="per-session backpressure queue bound in stream items (default 1024)",
    )
    p_serve.add_argument(
        "--max-sessions",
        dest="max_sessions",
        type=_positive_int,
        default=None,
        help="exit after N sessions complete (default: serve until interrupted)",
    )
    p_serve.add_argument(
        "--k", type=int, default=2, help="default staleness bound for sessions"
    )
    p_serve.add_argument(
        "--algorithm", default="auto", help="default algorithm for sessions"
    )
    p_serve.add_argument(
        "--tier",
        choices=["exact", "screen", "auto"],
        default="exact",
        help="default adaptive tier for sessions (exact, screen or auto); "
        "escalations and bypassed windows surface per session in the "
        "service report",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run checkers on a pool of N worker processes (default 0: "
        "in-process, single-core)",
    )
    p_serve.add_argument(
        "--idle-timeout",
        dest="idle_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close sessions quiet for this long (checkpointing first when "
        "--checkpoint-dir is set), surfacing a typed retryable error",
    )
    p_serve.add_argument(
        "--max-active",
        dest="max_active",
        type=_positive_int,
        default=None,
        help="load-shed: refuse new sessions beyond N concurrently active "
        "ones with a typed retryable 'overloaded' error",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection plans: list kinds, generate hostile traces",
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)
    p_chaos_kinds = chaos_sub.add_parser(
        "kinds", help="list the registered fault kinds and their domains"
    )
    p_chaos_kinds.set_defaults(func=_cmd_chaos_kinds)
    p_chaos_trace = chaos_sub.add_parser(
        "trace",
        help="generate the hostile trace a plan's workload clauses describe",
    )
    p_chaos_trace.add_argument("plan", help="fault-plan file (.json)")
    p_chaos_trace.add_argument(
        "--out", required=True, help="output trace path (.jsonl)"
    )
    p_chaos_trace.add_argument(
        "--fixtures",
        default=None,
        metavar="DIR",
        help="additionally export Jepsen + Porcupine fixtures to this directory",
    )
    p_chaos_trace.set_defaults(func=_cmd_chaos_trace)

    p_audit = sub.add_parser("audit", help="full staleness-spectrum audit of a trace")
    p_audit.add_argument("trace", help="trace file (.jsonl or .csv)")
    p_audit.add_argument(
        "--resolve-exact",
        action="store_true",
        dest="resolve_exact",
        help="resolve minimal k exactly for small k>=3 registers (exponential)",
    )
    _add_format_flag(p_audit)
    p_audit.set_defaults(func=_cmd_audit)

    p_convert = sub.add_parser(
        "convert",
        help="convert a trace between registered formats (jsonl/csv/jepsen/porcupine)",
    )
    p_convert.add_argument("source", help="input trace file")
    p_convert.add_argument("target", help="output trace file")
    p_convert.add_argument(
        "--from",
        dest="from_fmt",
        default=None,
        choices=sorted(FORMATS),
        help="input format (default: sniffed from the extension)",
    )
    p_convert.add_argument(
        "--to",
        dest="to_fmt",
        default=None,
        choices=sorted(FORMATS),
        help="output format (default: sniffed from the extension)",
    )
    p_convert.set_defaults(func=_cmd_convert)

    p_formats = sub.add_parser(
        "formats", help="list the registered trace formats and their extensions"
    )
    p_formats.set_defaults(func=_cmd_formats)

    p_experiment = sub.add_parser(
        "experiment",
        help="run declarative experiment specs and re-emit their reports",
    )
    experiment_sub = p_experiment.add_subparsers(dest="experiment_command", required=True)
    p_exp_run = experiment_sub.add_parser(
        "run", help="run an experiment spec (.toml or .json) and write its report"
    )
    p_exp_run.add_argument("spec", help="experiment spec file (see experiments/)")
    p_exp_run.add_argument(
        "--out",
        default="experiment-results",
        help="directory for the JSON/CSV/Markdown report (default experiment-results/)",
    )
    p_exp_run.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the grid to one tiny point per axis (the CI configuration)",
    )
    p_exp_run.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress lines"
    )
    p_exp_run.set_defaults(func=_cmd_experiment_run)
    p_exp_report = experiment_sub.add_parser(
        "report", help="re-emit a written experiment report in another form"
    )
    p_exp_report.add_argument("report", help="a <name>.json report written by 'run'")
    p_exp_report.add_argument(
        "--emit",
        choices=["markdown", "csv", "json", "table"],
        default="markdown",
        help="output form (default markdown)",
    )
    p_exp_report.set_defaults(func=_cmd_experiment_report)

    p_sim = sub.add_parser("simulate", help="record a trace from the sloppy-quorum simulator")
    p_sim.add_argument("--out", required=True, help="output trace path (.jsonl)")
    p_sim.add_argument("--replicas", type=int, default=5)
    p_sim.add_argument("--read-quorum", type=int, default=1, dest="read_quorum")
    p_sim.add_argument("--write-quorum", type=int, default=2, dest="write_quorum")
    p_sim.add_argument("--read-repair", action="store_true", dest="read_repair")
    p_sim.add_argument("--clients", type=int, default=12)
    p_sim.add_argument("--ops-per-client", type=int, default=50, dest="ops_per_client")
    p_sim.add_argument("--write-ratio", type=float, default=0.4, dest="write_ratio")
    p_sim.add_argument("--keys", type=int, default=4)
    p_sim.add_argument("--uniform-keys", action="store_true", dest="uniform_keys")
    p_sim.add_argument("--mean-latency-ms", type=float, default=3.0, dest="mean_latency_ms")
    p_sim.add_argument("--think-time-ms", type=float, default=2.0, dest="think_time_ms")
    p_sim.add_argument("--drop-probability", type=float, default=0.0, dest="drop_probability")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
