"""Bounded-memory window-timeline retention backed by a state store.

``StreamingEngine`` and ``repro watch`` accumulate one ``WindowReport`` per
closed window for the life of a stream — unbounded growth for a
months-long session.  :class:`TimelineRetention` is a list-shaped container
that keeps only the most recent ``keep`` reports hot in memory and spills
colder ones (pickled) into the ``timeline`` namespace of a
:class:`~repro.state.StateStore`; indexing a cold entry transparently
reloads it.  With no store or no ``keep`` bound it degrades to a plain
in-memory list, which is the behaviour-preserving default.

Spilled writes use ``durable=False``: the timeline is derived state — its
authority is the session checkpoint — so it needs crash *atomicity* but
not power-loss durability on every window.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Any, Iterator, List, Optional

from .base import StateStore

__all__ = ["TimelineRetention"]

#: State-store namespace holding spilled window reports.
TIMELINE_NAMESPACE = "timeline"


class TimelineRetention:
    """Append-mostly sequence of window reports with cold-entry spill.

    ``keep`` is the number of most-recent entries held in memory; ``None``
    (or no ``store``) retains everything in memory.  ``prefix`` namespaces
    the spilled keys so several streams can share one store.
    """

    def __init__(
        self,
        store: Optional[StateStore] = None,
        keep: Optional[int] = None,
        prefix: str = "stream",
    ):
        self._store = store if keep is not None else None
        self._keep = max(1, int(keep)) if keep is not None else None
        self._prefix = str(prefix)
        #: Hot tail: absolute index -> report, oldest first.
        self._hot: "OrderedDict[int, Any]" = OrderedDict()
        self._count = 0
        self.spills = 0
        self.reloads = 0

    @property
    def bounded(self) -> bool:
        """Whether cold entries are spilled (store attached and keep set)."""
        return self._store is not None

    def _key(self, index: int) -> str:
        return f"{self._prefix}:{index:010d}"

    # -- sequence surface ------------------------------------------------
    def append(self, report: Any) -> None:
        index = self._count
        self._hot[index] = report
        self._count += 1
        if self._store is None:
            return
        while len(self._hot) > self._keep:
            cold_index, cold = self._hot.popitem(last=False)
            self._store.put(
                TIMELINE_NAMESPACE,
                self._key(cold_index),
                pickle.dumps(cold, protocol=pickle.HIGHEST_PROTOCOL),
                durable=False,
            )
            self.spills += 1

    def extend(self, reports) -> None:
        for report in reports:
            self.append(report)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("timeline index out of range")
        hot = self._hot.get(index)
        if hot is not None or index in self._hot:
            return hot
        blob = self._store.get(TIMELINE_NAMESPACE, self._key(index))
        self.reloads += 1
        return pickle.loads(blob)

    def __iter__(self) -> Iterator[Any]:
        for index in range(self._count):
            yield self[index]

    # -- bulk ------------------------------------------------------------
    def materialize(self) -> List[Any]:
        """Every report, cold entries reloaded — snapshot/finish parity."""
        return list(self)

    def clear(self) -> None:
        if self._store is not None:
            for index in range(self._count - len(self._hot)):
                self._store.delete(TIMELINE_NAMESPACE, self._key(index))
        self._hot.clear()
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bounded" if self.bounded else "unbounded"
        return f"<TimelineRetention {kind} len={self._count} hot={len(self._hot)}>"
