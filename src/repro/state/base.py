"""The :class:`StateStore` interface: durable keyed-blob storage backends.

Everything the auditor must not lose across a crash — session checkpoints,
the worker pool's failover journal, spilled window timelines — is a small
set of *named binary blobs*.  A :class:`StateStore` is exactly that surface:
a two-level ``(namespace, key) -> bytes`` map with atomic, durable writes,
so every stateful service component persists through one interface and the
backend (plain files, SQLite, log-structured segments) is an operational
choice, not an architectural one.

Namespaces keep unrelated state apart inside one store directory:

========== =========================================================
namespace   contents
========== =========================================================
sessions    pickled session checkpoint payloads (one per session id)
pool-snap   worker-pool parent copies of per-shard checker snapshots
pool-log    worker-pool per-shard replay-log entries
timeline    spilled :class:`WindowReport` entries of long streams
========== =========================================================

Backends register themselves in :data:`STATE_BACKENDS` (name -> factory) at
import time; :func:`open_state_store` is the single construction point the
service tier, the CLI and the benchmarks all go through.

Durability contract
-------------------
``put`` with ``durable=True`` (the default) must not return until the blob
survives power loss: data is flushed and ``fsync``-ed, and for file-per-key
backends the directory entry is synced too.  ``durable=False`` relaxes this
to process-crash safety (the write is atomic but may be lost on power cut)
for high-churn state whose authority lives elsewhere, such as the pool's
failover journal.  A reader must never observe a torn blob: a partially
written value either loads as the previous value or raises
:class:`~repro.core.errors.CorruptStateError` — the crash-durability suite
(``tests/test_durability.py``) enforces this at every truncation boundary.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Dict, List, Union

from ..core.errors import StateError

__all__ = [
    "StateStore",
    "STATE_BACKENDS",
    "DEFAULT_STATE_BACKEND",
    "available_backends",
    "open_state_store",
    "fsync_directory",
    "write_file_atomic",
]

#: Backend name -> ``factory(directory, **options) -> StateStore``.
#: Populated by the backend modules at import time (see ``__init__``).
STATE_BACKENDS: Dict[str, Callable[..., "StateStore"]] = {}

#: The behaviour-preserving default: one file per key, as pre-1.8 releases.
DEFAULT_STATE_BACKEND = "json"


def available_backends() -> List[str]:
    """Registered backend names, sorted (the CLI's ``--state-backend`` choices)."""
    return sorted(STATE_BACKENDS)


def open_state_store(
    backend: str, directory: Union[str, Path], **options
) -> "StateStore":
    """Open (creating if needed) a state store of the named backend.

    ``backend`` is one of :func:`available_backends` — currently ``json``
    (file per key), ``sqlite`` (one WAL-mode database) and ``segments``
    (log-structured segment files with footer indexes and segment-level
    eviction).  All backends store the same bytes for the same
    ``(namespace, key)``, so stored payloads are byte-interchangeable across
    backends.
    """
    try:
        factory = STATE_BACKENDS[backend]
    except KeyError:
        raise StateError(
            f"unknown state-store backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory(directory, **options)


# ----------------------------------------------------------------------
# Durable file primitives (shared by the file-based backends and .rcol)
# ----------------------------------------------------------------------
def fsync_directory(directory: Union[str, Path]) -> None:
    """``fsync`` a directory so a just-renamed/created entry survives power loss.

    ``os.replace`` makes a write atomic against *process* crashes, but the
    new directory entry itself lives in the page cache until the directory
    inode is synced — without this call a power cut after the rename can
    resurrect the old file (or no file at all).  Platforms whose directory
    handles refuse ``fsync`` (some network filesystems, Windows) are skipped.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs that cannot sync directories
        pass
    finally:
        os.close(fd)


def write_file_atomic(
    path: Path, blob: bytes, *, durable: bool = True, tmp_suffix: str = ".tmp"
) -> None:
    """Write ``blob`` to ``path`` atomically (tmp file + ``os.replace``).

    With ``durable=True`` the temp file is flushed and ``fsync``-ed *before*
    the rename and the directory is synced *after* it, so a crash at any
    point leaves either the complete old file or the complete new one — the
    fix for the torn/lost-checkpoint bug where a rename without fsync could
    surface an empty or stale file after power loss.
    """
    tmp = path.with_name(path.name + tmp_suffix)
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_directory(path.parent)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    else:
        # os.replace consumed the temp file; nothing to clean up.
        pass


# ----------------------------------------------------------------------
# The interface
# ----------------------------------------------------------------------
class StateStore(ABC):
    """Durable ``(namespace, key) -> bytes`` storage.

    Keys and namespaces are arbitrary strings (backends are responsible for
    making hostile keys filesystem-safe); values are opaque byte blobs.
    Implementations must make :meth:`put` atomic — a reader never sees a
    torn blob — and, with ``durable=True``, synced to stable storage before
    returning.  Stores are context managers; :meth:`close` is idempotent.
    """

    #: The registry name of this backend (``json``/``sqlite``/``segments``).
    backend: str = "?"

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- core mapping ----------------------------------------------------
    @abstractmethod
    def put(self, namespace: str, key: str, blob: bytes, *, durable: bool = True) -> None:
        """Store ``blob`` under ``(namespace, key)``, atomically replacing."""

    @abstractmethod
    def get(self, namespace: str, key: str) -> bytes:
        """Return the stored blob; raises :class:`StateError` when absent and
        :class:`~repro.core.errors.CorruptStateError` when unreadable."""

    @abstractmethod
    def contains(self, namespace: str, key: str) -> bool:
        """Whether ``(namespace, key)`` currently holds a value."""

    @abstractmethod
    def delete(self, namespace: str, key: str) -> bool:
        """Remove the entry; returns whether one existed."""

    @abstractmethod
    def keys(self, namespace: str) -> List[str]:
        """All keys of one namespace, sorted."""

    # -- lifecycle -------------------------------------------------------
    def flush(self) -> None:
        """Force buffered state to stable storage (no-op where puts already sync)."""

    def close(self) -> None:
        """Release file handles/mappings; the store must reopen cleanly."""

    def stats(self) -> Dict[str, int]:
        """Operation counters (benchmarks and tests read these)."""
        return {
            "puts": self.puts,
            "gets": self.gets,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }

    # -- helpers ---------------------------------------------------------
    def _missing(self, namespace: str, key: str) -> StateError:
        return StateError(
            f"no state entry {key!r} in namespace {namespace!r} "
            f"({self.backend} backend)"
        )

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} backend={self.backend}>"
