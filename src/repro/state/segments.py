"""Log-structured segment-file state store with footer-indexed segments.

Writes are appends to the *active* segment file; a segment that reaches
``max_segment_bytes`` is *sealed* — a JSON footer indexing every record is
appended, mirroring the ``.rcol`` trace container's chunk/footer idiom
(payload, footer JSON, little-endian ``u64`` footer length, end magic) — and
a fresh segment becomes active.  Updates never rewrite in place: a new
record supersedes the old one and a tombstone record supersedes a delete,
so crash atomicity falls out of the format rather than being bolted on.

Segment file layout::

    MAGIC ("RSEGSTO1")
    record*                      u32 body_len | u32 crc32(body) | body
    [footer JSON | u64 footer_len | END_MAGIC ("RSEGEND1")]   # sealed only

    body := u16 ns_len | ns | u16 key_len | key | u8 flags | blob
    flags bit 0: tombstone (blob empty)

Recovery opens sealed segments straight from their footers (no payload
scan).  The active segment of a crashed process has no footer; it is
scanned record-by-record and the scan *stops at the first torn record* —
a truncated tail therefore yields exactly the state before the interrupted
write, never a partial blob — and the file is truncated back to the last
whole record so appends continue from a clean boundary.

Reads of sealed segments go through ``mmap`` with segment-level eviction:
at most ``cache_segments`` mappings stay open (LRU), colder segments are
unmapped and transparently re-mapped on next access.  Long-running sessions
therefore hold a bounded working set regardless of total history size —
the property ``bench_statestore.py`` demonstrates for ``repro watch``.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.errors import CorruptStateError, StateError
from .base import STATE_BACKENDS, StateStore, fsync_directory

__all__ = ["SegmentStateStore"]

MAGIC = b"RSEGSTO1"
END_MAGIC = b"RSEGEND1"
_HEADER = struct.Struct("<II")  # body_len, crc32(body)
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_TOMBSTONE = 0x01

#: Rotate the active segment once it exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
#: Keep at most this many sealed segments mapped at once.
DEFAULT_CACHE_SEGMENTS = 8


def _segment_name(seg_id: int) -> str:
    return f"seg-{seg_id:08d}.seg"


def _encode_record(namespace: str, key: str, blob: bytes, flags: int) -> bytes:
    ns_b = namespace.encode("utf-8")
    key_b = key.encode("utf-8")
    body = b"".join(
        (
            _U16.pack(len(ns_b)),
            ns_b,
            _U16.pack(len(key_b)),
            key_b,
            bytes((flags,)),
            blob,
        )
    )
    return _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def _decode_body(body: bytes) -> Tuple[str, str, int, bytes]:
    """Split a record body into ``(namespace, key, flags, blob)``."""
    pos = 0
    (ns_len,) = _U16.unpack_from(body, pos)
    pos += _U16.size
    namespace = body[pos : pos + ns_len].decode("utf-8")
    pos += ns_len
    (key_len,) = _U16.unpack_from(body, pos)
    pos += _U16.size
    key = body[pos : pos + key_len].decode("utf-8")
    pos += key_len
    flags = body[pos]
    pos += 1
    return namespace, key, flags, bytes(body[pos:])


class SegmentStateStore(StateStore):
    """Append-only segment files with footer indexes (the ``segments`` backend)."""

    backend = "segments"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        durable: bool = True,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        cache_segments: int = DEFAULT_CACHE_SEGMENTS,
    ):
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self.max_segment_bytes = max(4096, int(max_segment_bytes))
        self.cache_segments = max(1, int(cache_segments))
        self._lock = threading.RLock()
        #: ``(namespace, key) -> (segment id, record offset)``.
        self._index: Dict[Tuple[str, str], Tuple[int, int]] = {}
        #: Sealed-segment LRU: ``seg_id -> (mmap, file object)``.
        self._maps: "OrderedDict[int, Tuple[mmap.mmap, object]]" = OrderedDict()
        self._active_id = 0
        self._active_fh = None
        self._active_size = 0
        #: Tombstones appended to the active segment, for its footer.
        self._active_tombstones: List[Tuple[str, str, int]] = []
        #: Eviction observability (read by the state-store benchmark).
        self.evictions = 0
        self.remaps = 0
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _segment_path(self, seg_id: int) -> Path:
        return self.directory / _segment_name(seg_id)

    def _segment_ids(self) -> List[int]:
        ids = []
        for path in self.directory.glob("seg-*.seg"):
            try:
                ids.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(ids)

    def _recover(self) -> None:
        ids = self._segment_ids()
        last_entries: List[Tuple[str, str, int, int]] = []
        for seg_id in ids:
            entries = self._load_segment(seg_id, seal_if_open=(seg_id != ids[-1]))
            for namespace, key, flags, offset in entries:
                if flags & _TOMBSTONE:
                    self._index.pop((namespace, key), None)
                else:
                    self._index[(namespace, key)] = (seg_id, offset)
            if seg_id == ids[-1]:
                last_entries = entries
        if ids and not self._is_sealed(self._segment_path(ids[-1])):
            self._open_active(ids[-1])
            self._active_tombstones = [
                (ns, key, off)
                for ns, key, flags, off in last_entries
                if flags & _TOMBSTONE
            ]
        else:
            self._start_segment((ids[-1] + 1) if ids else 0)

    def _is_sealed(self, path: Path) -> bool:
        try:
            size = path.stat().st_size
        except OSError:
            return False
        if size < len(MAGIC) + _U64.size + len(END_MAGIC):
            return False
        with open(path, "rb") as fh:
            fh.seek(size - len(END_MAGIC))
            return fh.read(len(END_MAGIC)) == END_MAGIC

    def _read_footer(self, path: Path) -> Optional[List[Tuple[str, str, int, int]]]:
        """Footer entries of a sealed segment, or ``None`` to force a scan."""
        try:
            size = path.stat().st_size
            with open(path, "rb") as fh:
                fh.seek(size - len(END_MAGIC) - _U64.size)
                (footer_len,) = _U64.unpack(fh.read(_U64.size))
                footer_start = size - len(END_MAGIC) - _U64.size - footer_len
                if footer_start < len(MAGIC):
                    return None
                fh.seek(footer_start)
                footer = json.loads(fh.read(footer_len).decode("utf-8"))
            return [
                (str(ns), str(key), int(flags), int(offset))
                for ns, key, flags, offset in footer["entries"]
            ]
        except (OSError, ValueError, KeyError, TypeError, struct.error):
            return None

    def _scan_segment(self, path: Path) -> Tuple[List[Tuple[str, str, int, int]], int]:
        """Tolerantly scan records; returns ``(entries, clean_length)``.

        The scan stops at the first incomplete or checksum-failing record —
        the torn tail a crash mid-append leaves — so recovery surfaces the
        last fully written state and nothing after it.
        """
        entries: List[Tuple[str, str, int, int]] = []
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CorruptStateError(f"cannot read segment {path}: {exc}") from exc
        if data[: len(MAGIC)] != MAGIC:
            raise CorruptStateError(f"{path} is not a state segment (bad magic)")
        pos = len(MAGIC)
        while pos + _HEADER.size <= len(data):
            body_len, crc = _HEADER.unpack_from(data, pos)
            body_end = pos + _HEADER.size + body_len
            if body_end > len(data):
                break
            body = data[pos + _HEADER.size : body_end]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                break
            try:
                namespace, key, flags, _ = _decode_body(body)
            except (struct.error, UnicodeDecodeError, IndexError):
                break
            entries.append((namespace, key, flags, pos))
            pos = body_end
        return entries, pos

    def _load_segment(
        self, seg_id: int, *, seal_if_open: bool
    ) -> List[Tuple[str, str, int, int]]:
        path = self._segment_path(seg_id)
        if self._is_sealed(path):
            entries = self._read_footer(path)
            if entries is not None:
                return entries
        entries, clean_len = self._scan_segment(path)
        if clean_len < path.stat().st_size:
            # Torn tail from a crash mid-append: cut back to the last whole
            # record so future appends start at a clean boundary.
            with open(path, "r+b") as fh:
                fh.truncate(clean_len)
                fh.flush()
                os.fsync(fh.fileno())
        if seal_if_open:
            self._seal_path(path, entries)
        return entries

    # ------------------------------------------------------------------
    # Active segment management
    # ------------------------------------------------------------------
    def _start_segment(self, seg_id: int) -> None:
        path = self._segment_path(seg_id)
        fh = open(path, "w+b")
        fh.write(MAGIC)
        fh.flush()
        if self.durable:
            os.fsync(fh.fileno())
            fsync_directory(self.directory)
        self._active_id = seg_id
        self._active_fh = fh
        self._active_size = len(MAGIC)
        self._active_tombstones = []

    def _open_active(self, seg_id: int) -> None:
        path = self._segment_path(seg_id)
        fh = open(path, "r+b")
        fh.seek(0, os.SEEK_END)
        self._active_id = seg_id
        self._active_fh = fh
        self._active_size = fh.tell()

    def _active_entries(self) -> List[Tuple[str, str, int, int]]:
        """Footer entries for the active segment: live records plus the
        tombstones it carries, in append (offset) order so replaying the
        footer reproduces the segment's final effect on the index."""
        entries = [
            (ns, key, 0, offset)
            for (ns, key), (seg_id, offset) in self._index.items()
            if seg_id == self._active_id
        ]
        entries.extend(
            (ns, key, _TOMBSTONE, offset)
            for ns, key, offset in self._active_tombstones
        )
        entries.sort(key=lambda entry: entry[3])
        return entries

    def _seal_path(self, path: Path, entries: List[Tuple[str, str, int, int]]) -> None:
        footer = json.dumps(
            {"entries": [[ns, key, flags, off] for ns, key, flags, off in entries]},
            separators=(",", ":"),
        ).encode("utf-8")
        with open(path, "ab") as fh:
            fh.write(footer)
            fh.write(_U64.pack(len(footer)))
            fh.write(END_MAGIC)
            fh.flush()
            if self.durable:
                os.fsync(fh.fileno())
        if self.durable:
            fsync_directory(self.directory)

    def _rotate(self) -> None:
        fh = self._active_fh
        self._active_fh = None
        fh.flush()
        if self.durable:
            os.fsync(fh.fileno())
        fh.close()
        self._seal_path(self._segment_path(self._active_id), self._active_entries())
        self._start_segment(self._active_id + 1)

    def _append(self, record: bytes, *, durable: bool) -> int:
        if self._active_size >= self.max_segment_bytes:
            self._rotate()
        fh = self._active_fh
        offset = self._active_size
        fh.seek(0, os.SEEK_END)
        fh.write(record)
        fh.flush()
        if durable and self.durable:
            os.fsync(fh.fileno())
        self._active_size += len(record)
        return offset

    # ------------------------------------------------------------------
    # Sealed-segment mapping with LRU eviction
    # ------------------------------------------------------------------
    def _map_segment(self, seg_id: int) -> mmap.mmap:
        cached = self._maps.get(seg_id)
        if cached is not None:
            self._maps.move_to_end(seg_id)
            return cached[0]
        path = self._segment_path(seg_id)
        try:
            fh = open(path, "rb")
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise CorruptStateError(f"cannot map segment {path}: {exc}") from exc
        self._maps[seg_id] = (mapped, fh)
        self.remaps += 1
        while len(self._maps) > self.cache_segments:
            _, (old_map, old_fh) = self._maps.popitem(last=False)
            old_map.close()
            old_fh.close()
            self.evictions += 1
        return mapped

    def _read_record(self, seg_id: int, offset: int) -> bytes:
        if seg_id == self._active_id:
            fh = self._active_fh
            fh.seek(offset)
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise CorruptStateError(
                    f"torn record at segment {seg_id} offset {offset}"
                )
            body_len, crc = _HEADER.unpack(header)
            body = fh.read(body_len)
            fh.seek(0, os.SEEK_END)
        else:
            mapped = self._map_segment(seg_id)
            body_end = offset + _HEADER.size
            if body_end > len(mapped):
                raise CorruptStateError(
                    f"torn record at segment {seg_id} offset {offset}"
                )
            body_len, crc = _HEADER.unpack(mapped[offset:body_end])
            body = bytes(mapped[body_end : body_end + body_len])
        if len(body) < body_len or zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise CorruptStateError(
                f"checksum mismatch at segment {seg_id} offset {offset}"
            )
        _, _, _, blob = _decode_body(body)
        return blob

    # ------------------------------------------------------------------
    # StateStore interface
    # ------------------------------------------------------------------
    def put(self, namespace: str, key: str, blob: bytes, *, durable: bool = True) -> None:
        record = _encode_record(namespace, key, blob, 0)
        try:
            with self._lock:
                offset = self._append(record, durable=durable)
                self._index[(namespace, key)] = (self._active_id, offset)
        except OSError as exc:
            raise StateError(
                f"cannot write state entry {key!r} ({namespace}): {exc}"
            ) from exc
        self.puts += 1
        self.bytes_written += len(record)

    def get(self, namespace: str, key: str) -> bytes:
        with self._lock:
            loc = self._index.get((namespace, key))
            if loc is None:
                raise self._missing(namespace, key)
            blob = self._read_record(*loc)
        self.gets += 1
        self.bytes_read += len(blob)
        return blob

    def contains(self, namespace: str, key: str) -> bool:
        with self._lock:
            return (namespace, key) in self._index

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            if (namespace, key) not in self._index:
                return False
            record = _encode_record(namespace, key, b"", _TOMBSTONE)
            try:
                offset = self._append(record, durable=True)
            except OSError as exc:
                raise StateError(
                    f"cannot delete state entry {key!r} ({namespace}): {exc}"
                ) from exc
            self._active_tombstones.append((namespace, key, offset))
            del self._index[(namespace, key)]
        return True

    def keys(self, namespace: str) -> List[str]:
        with self._lock:
            return sorted(key for ns, key in self._index if ns == namespace)

    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite live entries into fresh segments; returns bytes reclaimed.

        Superseded records and tombstones accumulate until compaction; a
        long-lived store should compact when :meth:`stats` shows
        ``bytes_written`` far above the live payload size.
        """
        with self._lock:
            live = [
                (ns, key, self._read_record(seg_id, offset))
                for (ns, key), (seg_id, offset) in sorted(self._index.items())
            ]
            before = sum(
                self._segment_path(i).stat().st_size for i in self._segment_ids()
            )
            old_ids = self._segment_ids()
            self._close_maps()
            fh = self._active_fh
            self._active_fh = None
            fh.close()
            self._index.clear()
            self._start_segment((old_ids[-1] + 1) if old_ids else 0)
            for ns, key, blob in live:
                record = _encode_record(ns, key, blob, 0)
                offset = self._append(record, durable=False)
                self._index[(ns, key)] = (self._active_id, offset)
            self.flush()
            for seg_id in old_ids:
                self._segment_path(seg_id).unlink(missing_ok=True)
            if self.durable:
                fsync_directory(self.directory)
            after = sum(
                self._segment_path(i).stat().st_size for i in self._segment_ids()
            )
        return max(0, before - after)

    def flush(self) -> None:
        with self._lock:
            if self._active_fh is not None:
                self._active_fh.flush()
                if self.durable:
                    os.fsync(self._active_fh.fileno())

    def _close_maps(self) -> None:
        while self._maps:
            _, (mapped, fh) = self._maps.popitem(last=False)
            mapped.close()
            fh.close()

    def close(self) -> None:
        with self._lock:
            self._close_maps()
            if self._active_fh is not None:
                fh = self._active_fh
                self._active_fh = None
                fh.flush()
                if self.durable:
                    os.fsync(fh.fileno())
                fh.close()
                self._seal_path(
                    self._segment_path(self._active_id), self._active_entries()
                )


STATE_BACKENDS["segments"] = SegmentStateStore
