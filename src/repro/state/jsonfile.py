"""File-per-key state store — the behaviour-preserving default backend.

Each ``(namespace, key)`` is one file; writes are atomic *and durable*
(temp file + ``fsync`` + ``os.replace`` + directory sync, see
:func:`repro.state.base.write_file_atomic`) and keys are percent-quoted so
arbitrary client-chosen ids cannot escape the store directory.

On-disk layout (compatible with pre-1.8 checkpoint directories)::

    <directory>/<quoted-key>.ckpt          # the "sessions" namespace
    <directory>/<namespace>/<quoted-key>.blob   # every other namespace

The ``sessions`` namespace lives at the top level with the historical
``.ckpt`` suffix so checkpoint directories written by earlier releases load
unchanged, and ``repro serve --checkpoint-dir`` directories remain greppable
one-file-per-session.

Opening the store sweeps orphaned ``*.tmp`` files: a crash between creating
the temp file and renaming it used to leave the orphan behind forever (the
store only ever globbed ``*.ckpt``), accumulating garbage in long-lived
service directories.  The sweep removes them — they are by construction
incomplete and must never be loaded as state.
"""

from __future__ import annotations

import urllib.parse
from pathlib import Path
from typing import List, Union

from ..core.errors import CorruptStateError, StateError
from .base import STATE_BACKENDS, StateStore, write_file_atomic

__all__ = ["JsonFileStateStore"]

#: Suffix of the top-level (``sessions``) namespace — the historical layout.
_SESSION_SUFFIX = ".ckpt"
#: Suffix of namespaced entries.
_BLOB_SUFFIX = ".blob"
_TMP_SUFFIX = ".tmp"
#: The namespace stored at the directory root for backward compatibility.
_ROOT_NAMESPACE = "sessions"


def _quote(text: str) -> str:
    return urllib.parse.quote(str(text), safe="")


def _unquote(text: str) -> str:
    return urllib.parse.unquote(text)


class JsonFileStateStore(StateStore):
    """One file per entry under a directory tree (the ``json`` backend).

    ``durable=False`` at construction downgrades *every* put to
    crash-atomic-but-unsynced (for tests and scratch stores); per-call
    ``put(..., durable=False)`` does the same for one write.
    """

    backend = "json"

    def __init__(self, directory: Union[str, Path], *, durable: bool = True):
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self.swept_tmp = self._sweep_orphans()

    # ------------------------------------------------------------------
    def _sweep_orphans(self) -> int:
        """Remove ``*.tmp`` files a crash mid-write left behind."""
        removed = 0
        for tmp in self.directory.glob(f"*{_TMP_SUFFIX}"):
            tmp.unlink(missing_ok=True)
            removed += 1
        for sub in self.directory.iterdir():
            if sub.is_dir():
                for tmp in sub.glob(f"*{_TMP_SUFFIX}"):
                    tmp.unlink(missing_ok=True)
                    removed += 1
        return removed

    def path_for(self, namespace: str, key: str) -> Path:
        """The file an entry persists to (quoted, always inside the store)."""
        if namespace == _ROOT_NAMESPACE:
            return self.directory / f"{_quote(key)}{_SESSION_SUFFIX}"
        return self.directory / _quote(namespace) / f"{_quote(key)}{_BLOB_SUFFIX}"

    # ------------------------------------------------------------------
    def put(self, namespace: str, key: str, blob: bytes, *, durable: bool = True) -> None:
        path = self.path_for(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            write_file_atomic(
                path, blob, durable=durable and self.durable, tmp_suffix=_TMP_SUFFIX
            )
        except OSError as exc:
            raise StateError(
                f"cannot write state entry {key!r} ({namespace}): {exc}"
            ) from exc
        self.puts += 1
        self.bytes_written += len(blob)

    def get(self, namespace: str, key: str) -> bytes:
        path = self.path_for(namespace, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise self._missing(namespace, key) from None
        except OSError as exc:
            raise CorruptStateError(
                f"cannot read state entry {key!r} ({namespace}): {exc}"
            ) from exc
        self.gets += 1
        self.bytes_read += len(blob)
        return blob

    def contains(self, namespace: str, key: str) -> bool:
        return self.path_for(namespace, key).exists()

    def delete(self, namespace: str, key: str) -> bool:
        path = self.path_for(namespace, key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def keys(self, namespace: str) -> List[str]:
        if namespace == _ROOT_NAMESPACE:
            root, suffix = self.directory, _SESSION_SUFFIX
        else:
            root, suffix = self.directory / _quote(namespace), _BLOB_SUFFIX
        if not root.is_dir():
            return []
        return sorted(
            _unquote(path.name[: -len(suffix)])
            for path in root.glob(f"*{suffix}")
        )


STATE_BACKENDS["json"] = JsonFileStateStore
