"""SQLite state store: one WAL-mode database per service directory.

All namespaces share one ``state.db`` with a single ``kv`` table keyed on
``(namespace, key)``.  The database runs in write-ahead-log mode —
concurrent readers never block the writer, and commits are one sequential
WAL append instead of a page-spread rewrite — with ``synchronous=FULL`` so
every committed put survives power loss (``durable=False`` at construction
relaxes that to ``NORMAL``: consistent after power loss, but the last few
commits may be rolled back).

Compared to the file-per-key backend this trades human-greppable files for
one inode, transactional multi-put potential, and much cheaper small-blob
churn (the pool's failover journal) on filesystems where creating and
fsyncing thousands of tiny files is slow.

The connection is shared across threads (the audit server writes
checkpoints from ``asyncio.to_thread``) behind a lock; SQLite's own file
locking makes cross-process sharing safe, if slow — the intended topology
is one store per service process, as with every backend.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import List, Union

from ..core.errors import CorruptStateError, StateError
from .base import STATE_BACKENDS, StateStore

__all__ = ["SqliteStateStore"]

_DB_NAME = "state.db"


class SqliteStateStore(StateStore):
    """All state in one WAL-mode SQLite database (the ``sqlite`` backend)."""

    backend = "sqlite"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        durable: bool = True,
        page_size: int = 0,
    ):
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / _DB_NAME
        self.durable = durable
        self.page_size = int(page_size)
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection = None  # set by _open
        self._open()

    def _open(self) -> None:
        try:
            conn = sqlite3.connect(str(self.path), check_same_thread=False)
            if self.page_size:
                # Must precede WAL mode (page size is frozen once the WAL
                # exists); the durability tests use tiny pages so the
                # every-byte truncation sweep stays fast.
                conn.execute(f"PRAGMA page_size={self.page_size}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                "PRAGMA synchronous=" + ("FULL" if self.durable else "NORMAL")
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS kv ("
                " namespace TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " blob BLOB NOT NULL,"
                " PRIMARY KEY (namespace, key))"
            )
            conn.commit()
        except sqlite3.DatabaseError as exc:
            # A torn or foreign file where the database should be: surface the
            # typed never-partial-state error, not a backend-specific one.
            raise CorruptStateError(
                f"cannot open state database {self.path}: {exc}"
            ) from exc
        self._conn = conn

    # ------------------------------------------------------------------
    def put(self, namespace: str, key: str, blob: bytes, *, durable: bool = True) -> None:
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT INTO kv (namespace, key, blob) VALUES (?, ?, ?)"
                    " ON CONFLICT(namespace, key) DO UPDATE SET blob=excluded.blob",
                    (namespace, key, sqlite3.Binary(blob)),
                )
                self._conn.commit()
        except sqlite3.DatabaseError as exc:
            raise StateError(
                f"cannot write state entry {key!r} ({namespace}): {exc}"
            ) from exc
        self.puts += 1
        self.bytes_written += len(blob)

    def get(self, namespace: str, key: str) -> bytes:
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT blob FROM kv WHERE namespace=? AND key=?",
                    (namespace, key),
                ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise CorruptStateError(
                f"cannot read state entry {key!r} ({namespace}): {exc}"
            ) from exc
        if row is None:
            raise self._missing(namespace, key)
        blob = bytes(row[0])
        self.gets += 1
        self.bytes_read += len(blob)
        return blob

    def contains(self, namespace: str, key: str) -> bool:
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT 1 FROM kv WHERE namespace=? AND key=?",
                    (namespace, key),
                ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise CorruptStateError(f"cannot query state database: {exc}") from exc
        return row is not None

    def delete(self, namespace: str, key: str) -> bool:
        try:
            with self._lock:
                cursor = self._conn.execute(
                    "DELETE FROM kv WHERE namespace=? AND key=?", (namespace, key)
                )
                self._conn.commit()
        except sqlite3.DatabaseError as exc:
            raise StateError(
                f"cannot delete state entry {key!r} ({namespace}): {exc}"
            ) from exc
        return cursor.rowcount > 0

    def keys(self, namespace: str) -> List[str]:
        try:
            with self._lock:
                rows = self._conn.execute(
                    "SELECT key FROM kv WHERE namespace=? ORDER BY key",
                    (namespace,),
                ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise CorruptStateError(f"cannot query state database: {exc}") from exc
        return [row[0] for row in rows]

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Fold the WAL back into the main database file."""
        try:
            with self._lock:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.DatabaseError as exc:  # pragma: no cover - exotic
            raise StateError(f"cannot checkpoint state database: {exc}") from exc

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                except sqlite3.DatabaseError:
                    pass
                self._conn.close()
                self._conn = None


STATE_BACKENDS["sqlite"] = SqliteStateStore
