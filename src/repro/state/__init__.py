"""Durable pluggable state stores for the audit service and streaming tier.

See :mod:`repro.state.base` for the interface and durability contract.
Importing this package registers all built-in backends:

``json``
    One file per key (temp file + fsync + rename); the behaviour-preserving
    default, byte-compatible with pre-1.8 checkpoint directories.
``sqlite``
    One WAL-mode SQLite database per store directory.
``segments``
    Log-structured footer-indexed segment files with CRC-guarded records
    and segment-level mmap eviction for bounded working sets.
"""

from .base import (
    DEFAULT_STATE_BACKEND,
    STATE_BACKENDS,
    StateStore,
    available_backends,
    fsync_directory,
    open_state_store,
    write_file_atomic,
)
from .jsonfile import JsonFileStateStore
from .retention import TimelineRetention
from .segments import SegmentStateStore
from .sqlite import SqliteStateStore

__all__ = [
    "StateStore",
    "STATE_BACKENDS",
    "DEFAULT_STATE_BACKEND",
    "available_backends",
    "open_state_store",
    "fsync_directory",
    "write_file_atomic",
    "JsonFileStateStore",
    "SqliteStateStore",
    "SegmentStateStore",
    "TimelineRetention",
]
