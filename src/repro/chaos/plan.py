"""Declarative fault plans shared by the simulator and the service chaos arm.

A :class:`FaultPlan` is a named, seeded list of :class:`FaultClause` entries.
Each clause names one fault *kind* (a registered string such as
``"split_brain"`` or ``"frame_corrupt"``) plus kind-specific parameters, and
the plan derives an independent deterministic random stream per clause — so
the same plan JSON replays the same faults, two clauses never share a random
stream (adding one clause cannot reshuffle another's decisions), and plans
compose by concatenation.

The plan itself is deliberately dumb: it validates, serialises, and hands out
clause streams.  The two arms interpret it —

* **simulation/workload arm**: :meth:`repro.simulation.faults.FaultSchedule.
  from_plan` turns simulation clauses into scheduled events, and
  :func:`repro.workloads.chaos.history_from_plan` turns workload clauses into
  hostile operation streams (hot keys, indeterminate storms, clock skew).
* **service arm**: :class:`repro.service.chaos.ChaosProxy` and
  :class:`repro.service.chaos.WorkerChaos` read the service clauses to
  corrupt the wire and kill/stall pool workers.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import SimulationError

__all__ = [
    "DOMAIN_SIMULATION",
    "DOMAIN_WORKLOAD",
    "DOMAIN_SERVICE",
    "FAULT_KINDS",
    "FaultClause",
    "FaultPlan",
    "load_plan",
]

#: Clauses the store simulator interprets (replica/network faults).
DOMAIN_SIMULATION = "simulation"
#: Clauses the workload generators interpret (hostile operation streams).
DOMAIN_WORKLOAD = "workload"
#: Clauses the service chaos layer interprets (wire and worker faults).
DOMAIN_SERVICE = "service"

#: Every supported fault kind, mapped to the domain that interprets it.
FAULT_KINDS: Dict[str, str] = {
    # -- simulator faults ------------------------------------------------
    "crash": DOMAIN_SIMULATION,  # replica, at_ms, duration_ms
    "partition": DOMAIN_SIMULATION,  # a, b, at_ms, duration_ms
    "split_brain": DOMAIN_SIMULATION,  # groups, at_ms, duration_ms
    # -- workload faults -------------------------------------------------
    "clock_skew": DOMAIN_WORKLOAD,  # max_skew_ms, drift_ppm
    "hot_key": DOMAIN_WORKLOAD,  # registers, ops, alpha, clients
    "indeterminate_storm": DOMAIN_WORKLOAD,  # registers, ops, fraction
    # -- service faults --------------------------------------------------
    "frame_drop": DOMAIN_SERVICE,  # direction, probability
    "frame_delay": DOMAIN_SERVICE,  # direction, probability, delay_ms
    "frame_duplicate": DOMAIN_SERVICE,  # probability (server→client only)
    "frame_truncate": DOMAIN_SERVICE,  # direction, probability
    "frame_corrupt": DOMAIN_SERVICE,  # direction, probability
    "worker_kill": DOMAIN_SERVICE,  # after_s, every_s, count
    "worker_stall": DOMAIN_SERVICE,  # after_s, duration_s, count
    "worker_slow": DOMAIN_SERVICE,  # after_s, period_s, duty, duration_s
}


@dataclass(frozen=True)
class FaultClause:
    """One fault: a registered kind plus kind-specific JSON parameters."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )
        if isinstance(self.params, dict):  # accept dicts, store hashable
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))
        try:
            json.dumps(dict(self.params))
        except (TypeError, ValueError) as exc:
            raise SimulationError(
                f"fault clause {self.kind!r} has non-JSON parameters: {exc}"
            ) from exc

    @property
    def domain(self) -> str:
        """The arm that interprets this clause (simulation/workload/service)."""
        return FAULT_KINDS[self.kind]

    def param(self, name: str, default=None):
        """Look up one parameter with a default."""
        return dict(self.params).get(name, default)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, record: Dict) -> "FaultClause":
        if not isinstance(record, dict) or "kind" not in record:
            raise SimulationError(
                f"fault clauses must be objects with a 'kind', got {record!r}"
            )
        params = record.get("params", {})
        if not isinstance(params, dict):
            raise SimulationError(
                f"fault clause 'params' must be an object, got {params!r}"
            )
        return cls(kind=str(record["kind"]), params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, composable set of fault clauses.

    ``seed`` anchors every random decision the plan's interpreters make:
    :meth:`rng_for` derives one independent ``random.Random`` per clause from
    ``(seed, clause index, clause kind)``, so replaying a saved plan replays
    the exact fault schedule.
    """

    name: str = "chaos"
    seed: int = 0
    clauses: Tuple[FaultClause, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "clauses", tuple(self.clauses))
        for clause in self.clauses:
            if not isinstance(clause, FaultClause):
                raise SimulationError(
                    f"plan clauses must be FaultClause objects, got {clause!r}"
                )

    # ------------------------------------------------------------------
    def rng_for(self, index: int) -> random.Random:
        """The deterministic random stream of clause ``index``."""
        clause = self.clauses[index]
        return random.Random(f"{self.seed}:{index}:{clause.kind}")

    def clauses_for(self, domain: str) -> List[Tuple[int, FaultClause]]:
        """The ``(index, clause)`` pairs one arm interprets, in plan order."""
        return [
            (index, clause)
            for index, clause in enumerate(self.clauses)
            if clause.domain == domain
        ]

    def domains(self) -> Tuple[str, ...]:
        """The distinct domains this plan touches, in first-use order."""
        seen: List[str] = []
        for clause in self.clauses:
            if clause.domain not in seen:
                seen.append(clause.domain)
        return tuple(seen)

    def add(self, kind: str, **params) -> "FaultPlan":
        """A new plan with one clause appended (plans are immutable)."""
        return FaultPlan(
            name=self.name,
            seed=self.seed,
            clauses=self.clauses + (FaultClause(kind, tuple(sorted(params.items()))),),
        )

    def compose(self, other: "FaultPlan") -> "FaultPlan":
        """Concatenate two plans (keeps this plan's name and seed).

        The composed clauses keep deterministic per-clause streams because
        stream derivation uses the clause's *position in the composed plan*.
        """
        return FaultPlan(
            name=f"{self.name}+{other.name}",
            seed=self.seed,
            clauses=self.clauses + other.clauses,
        )

    def __len__(self) -> int:
        return len(self.clauses)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "clauses": [clause.to_dict() for clause in self.clauses],
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "FaultPlan":
        if not isinstance(record, dict):
            raise SimulationError(f"a fault plan must be a JSON object, got {record!r}")
        clauses = record.get("clauses", [])
        if not isinstance(clauses, list):
            raise SimulationError(
                f"fault plan 'clauses' must be a list, got {clauses!r}"
            )
        try:
            seed = int(record.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise SimulationError(
                f"fault plan 'seed' must be an integer, got {record.get('seed')!r}"
            ) from exc
        return cls(
            name=str(record.get("name", "chaos")),
            seed=seed,
            clauses=tuple(FaultClause.from_dict(c) for c in clauses),
        )

    def dumps(self) -> str:
        """Serialise to (stable) JSON text."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"malformed fault plan JSON: {exc}") from exc
        return cls.from_dict(record)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan to a JSON file; returns the path."""
        path = Path(path)
        path.write_text(self.dumps() + "\n", encoding="utf-8")
        return path


def load_plan(path: Union[str, Path]) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    return FaultPlan.loads(Path(path).read_text(encoding="utf-8"))
