"""Unified fault injection: one declarative plan, two arms.

:class:`FaultPlan` (see :mod:`repro.chaos.plan`) is the single schema both
chaos arms consume — the store-simulator/workload arm
(:meth:`~repro.simulation.faults.FaultSchedule.from_plan`,
:func:`~repro.workloads.chaos.history_from_plan`) and the service arm
(:class:`~repro.service.chaos.ChaosProxy`,
:class:`~repro.service.chaos.WorkerChaos`).  Plans are seeded, reproducible,
and composable; the chaos test-suite and ``bench_chaos`` hold the headline
invariant that any injected plan leaves the completed verdict stream
byte-identical to a fault-free run.
"""

from .plan import (
    DOMAIN_SERVICE,
    DOMAIN_SIMULATION,
    DOMAIN_WORKLOAD,
    FAULT_KINDS,
    FaultClause,
    FaultPlan,
    load_plan,
)

__all__ = [
    "DOMAIN_SERVICE",
    "DOMAIN_SIMULATION",
    "DOMAIN_WORKLOAD",
    "FAULT_KINDS",
    "FaultClause",
    "FaultPlan",
    "load_plan",
]
