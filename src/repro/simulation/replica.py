"""Replica nodes of the simulated sloppy-quorum store.

Each replica holds a versioned copy of every register it has heard about and
answers read/write requests from coordinators.  Versions are totally ordered
tuples assigned by coordinators (last-writer-wins); a replica only installs a
write whose version exceeds the one it currently stores, so message
reordering never rolls a register back.

Replicas can crash and recover (dropping all requests while down), and can be
configured with an *apply delay* that models slow local persistence: the
acknowledgement is only sent once the write has actually been applied, so the
delay lengthens write latency rather than faking durability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple

from .events import EventLoop

__all__ = ["Replica", "StoredVersion", "ReplicaStats"]


@dataclass(frozen=True)
class StoredVersion:
    """A versioned value held by a replica."""

    version: Tuple
    value: Hashable


@dataclass
class ReplicaStats:
    """Counters a replica maintains for reporting."""

    writes_applied: int = 0
    writes_ignored_stale: int = 0
    reads_served: int = 0
    requests_dropped_while_down: int = 0


class Replica:
    """A single storage replica."""

    def __init__(
        self,
        replica_id: str,
        loop: EventLoop,
        *,
        apply_delay_ms: float = 0.0,
    ):
        self.replica_id = replica_id
        self.loop = loop
        self.apply_delay_ms = apply_delay_ms
        self.store: Dict[Hashable, StoredVersion] = {}
        self.alive = True
        self.stats = ReplicaStats()

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop serving requests.  In-memory state is retained (fail-stop)."""
        self.alive = False

    def recover(self) -> None:
        """Resume serving requests with whatever state survived the crash."""
        self.alive = True

    # ------------------------------------------------------------------
    # Request handlers (invoked by the network on message delivery)
    # ------------------------------------------------------------------
    def handle_write(
        self,
        key: Hashable,
        value: Hashable,
        version: Tuple,
        reply: Callable[[str], None],
    ) -> None:
        """Install ``value`` under ``key`` if ``version`` is newer, then ack.

        ``reply(replica_id)`` is invoked (through the network, by the caller's
        closure) once the write is applied — after ``apply_delay_ms`` of local
        work.  Requests arriving while the replica is down are dropped.
        """
        if not self.alive:
            self.stats.requests_dropped_while_down += 1
            return

        def _apply():
            if not self.alive:
                self.stats.requests_dropped_while_down += 1
                return
            current = self.store.get(key)
            if current is None or version > current.version:
                self.store[key] = StoredVersion(version=version, value=value)
                self.stats.writes_applied += 1
            else:
                self.stats.writes_ignored_stale += 1
            reply(self.replica_id)

        if self.apply_delay_ms > 0:
            self.loop.schedule(self.apply_delay_ms, _apply)
        else:
            _apply()

    def handle_read(
        self,
        key: Hashable,
        reply: Callable[[str, Optional[StoredVersion]], None],
    ) -> None:
        """Return the replica's current version of ``key`` (or ``None``)."""
        if not self.alive:
            self.stats.requests_dropped_while_down += 1
            return
        self.stats.reads_served += 1
        reply(self.replica_id, self.store.get(key))

    # ------------------------------------------------------------------
    def install(self, key: Hashable, value: Hashable, version: Tuple) -> None:
        """Directly install a value, bypassing the network.

        Used to seed the initial value of each register before a workload
        starts (the seed is also recorded in the history as a real write so
        that early reads have a dictating write).
        """
        current = self.store.get(key)
        if current is None or version > current.version:
            self.store[key] = StoredVersion(version=version, value=value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Replica {self.replica_id} {state} keys={len(self.store)}>"
