"""Quorum coordinator: the client-facing read/write protocol.

The coordinator implements the Dynamo-style *sloppy quorum* protocol the
paper's introduction refers to:

* a **write** is sent to all ``N`` replicas and acknowledged to the client as
  soon as ``W`` replicas have applied it;
* a **read** queries all ``N`` replicas and returns as soon as ``R`` replies
  have arrived, answering with the highest-versioned value among them;
* optionally, **read repair** pushes that freshest value back to the replicas
  that returned older versions.

Nothing forces the ``R`` replies of a read to intersect the ``W`` acks of the
latest write — with ``R + W <= N``, or with lossy links and per-request
timeouts, reads can return stale values.  Those are precisely the histories
whose staleness the k-AV algorithms quantify.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from .events import EventLoop
from .network import Network
from .replica import Replica, StoredVersion

__all__ = ["QuorumConfig", "Coordinator", "CoordinatorStats"]


@dataclass(frozen=True)
class QuorumConfig:
    """Replication and quorum parameters of the store.

    ``N`` is the replication factor, ``R``/``W`` the read/write quorum sizes.
    The classic strong setting has ``R + W > N``; sloppy configurations
    (``R + W <= N``) trade consistency for latency and availability, which is
    what the k-atomicity audit experiments explore.
    """

    num_replicas: int = 3
    read_quorum: int = 1
    write_quorum: int = 2
    read_repair: bool = False
    #: Per-request timeout; a request that has not reached quorum by then
    #: completes with the replies it has (reads) or retries (writes), which
    #: mirrors the behaviour of production sloppy-quorum stores.
    request_timeout_ms: float = 50.0

    def __post_init__(self):
        if self.num_replicas < 1:
            raise SimulationError("num_replicas must be positive")
        if not 1 <= self.read_quorum <= self.num_replicas:
            raise SimulationError("read_quorum must lie in [1, num_replicas]")
        if not 1 <= self.write_quorum <= self.num_replicas:
            raise SimulationError("write_quorum must lie in [1, num_replicas]")
        if self.request_timeout_ms <= 0:
            raise SimulationError("request_timeout_ms must be positive")

    @property
    def is_strict(self) -> bool:
        """True iff read and write quorums are guaranteed to intersect."""
        return self.read_quorum + self.write_quorum > self.num_replicas

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``"N=3 R=1 W=2 (sloppy)"``."""
        kind = "strict" if self.is_strict else "sloppy"
        return (
            f"N={self.num_replicas} R={self.read_quorum} W={self.write_quorum} ({kind})"
        )


@dataclass
class CoordinatorStats:
    """Counters shared by all coordinators of a store."""

    writes_started: int = 0
    writes_completed: int = 0
    writes_timed_out: int = 0
    reads_started: int = 0
    reads_completed: int = 0
    reads_timed_out: int = 0
    read_repairs_sent: int = 0


class Coordinator:
    """Executes quorum reads and writes on behalf of one client."""

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        network: Network,
        replicas: Sequence[Replica],
        config: QuorumConfig,
        stats: Optional[CoordinatorStats] = None,
    ):
        self.name = name
        self.loop = loop
        self.network = network
        self.replicas = list(replicas)
        self.config = config
        self.stats = stats if stats is not None else CoordinatorStats()
        self._version_seq = itertools.count()

    # ------------------------------------------------------------------
    def next_version(self) -> Tuple:
        """A monotonically increasing, globally unique write version.

        Versions order by (issue time, coordinator name, local sequence), the
        standard last-writer-wins timestamp of Dynamo-style stores.
        """
        return (self.loop.now, self.name, next(self._version_seq))

    # ------------------------------------------------------------------
    def write(
        self,
        key: Hashable,
        value: Hashable,
        callback: Callable[[bool], None],
        *,
        version: Optional[Tuple] = None,
    ) -> None:
        """Perform a quorum write; ``callback(ok)`` fires on completion.

        ``ok`` is True when ``W`` acknowledgements arrived before the request
        timeout; otherwise the write is reported as failed (the value may
        still be partially replicated — exactly like a real store).
        """
        self.stats.writes_started += 1
        version = self.next_version() if version is None else version
        acks: List[str] = []
        done = {"value": False}

        def finish(ok: bool) -> None:
            if done["value"]:
                return
            done["value"] = True
            timeout_event.cancel()
            if ok:
                self.stats.writes_completed += 1
            else:
                self.stats.writes_timed_out += 1
            callback(ok)

        def on_ack(replica_id: str) -> None:
            if done["value"]:
                return
            acks.append(replica_id)
            if len(acks) >= self.config.write_quorum:
                finish(True)

        timeout_event = self.loop.schedule(
            self.config.request_timeout_ms, lambda: finish(False)
        )

        for replica in self.replicas:
            self._send_write(replica, key, value, version, on_ack)

    def _send_write(
        self,
        replica: Replica,
        key: Hashable,
        value: Hashable,
        version: Tuple,
        on_ack: Callable[[str], None],
    ) -> None:
        def deliver():
            # The acknowledgement travels back over the network as well.
            replica.handle_write(
                key,
                value,
                version,
                lambda rid: self.network.send(replica.replica_id, self.name, on_ack, rid),
            )

        self.network.send(self.name, replica.replica_id, deliver)

    # ------------------------------------------------------------------
    def read(
        self,
        key: Hashable,
        callback: Callable[[Optional[Hashable], Optional[Tuple]], None],
    ) -> None:
        """Perform a quorum read; ``callback(value, version)`` on completion.

        The read completes when ``R`` replies have arrived (returning the
        highest-versioned value among them), or at the timeout with whatever
        replies exist (possibly ``(None, None)`` if none arrived — the caller
        records such reads as failed and excludes them from the history).
        """
        self.stats.reads_started += 1
        replies: Dict[str, Optional[StoredVersion]] = {}
        done = {"value": False}

        def finish(timed_out: bool) -> None:
            if done["value"]:
                return
            done["value"] = True
            timeout_event.cancel()
            freshest: Optional[StoredVersion] = None
            for stored in replies.values():
                if stored is None:
                    continue
                if freshest is None or stored.version > freshest.version:
                    freshest = stored
            if timed_out:
                self.stats.reads_timed_out += 1
            else:
                self.stats.reads_completed += 1
            if freshest is None:
                callback(None, None)
                return
            if self.config.read_repair:
                self._read_repair(key, freshest, replies)
            callback(freshest.value, freshest.version)

        def on_reply(replica_id: str, stored: Optional[StoredVersion]) -> None:
            if done["value"]:
                return
            replies[replica_id] = stored
            if len(replies) >= self.config.read_quorum:
                finish(False)

        timeout_event = self.loop.schedule(
            self.config.request_timeout_ms, lambda: finish(True)
        )

        for replica in self.replicas:
            self._send_read(replica, key, on_reply)

    def _send_read(
        self,
        replica: Replica,
        key: Hashable,
        on_reply: Callable[[str, Optional[StoredVersion]], None],
    ) -> None:
        def deliver():
            replica.handle_read(
                key,
                lambda rid, stored: self.network.send(
                    replica.replica_id, self.name, on_reply, rid, stored
                ),
            )

        self.network.send(self.name, replica.replica_id, deliver)

    def _read_repair(
        self,
        key: Hashable,
        freshest: StoredVersion,
        replies: Dict[str, Optional[StoredVersion]],
    ) -> None:
        """Push the freshest observed version to replicas that returned older ones."""
        stale_ids = {
            rid
            for rid, stored in replies.items()
            if stored is None or stored.version < freshest.version
        }
        for replica in self.replicas:
            if replica.replica_id in stale_ids:
                self.stats.read_repairs_sent += 1
                self._send_write(
                    replica, key, freshest.value, freshest.version, lambda rid: None
                )
