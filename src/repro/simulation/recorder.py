"""History recorder: turns client-observed invocations/responses into histories.

The recorder captures exactly what an external consistency auditor can see —
for each completed operation: its type, the key, the value written or
returned, and the invocation/response timestamps on the global simulated
clock (optionally perturbed by a bounded clock error, modelling imperfect
TrueTime-style timestamping).  Operations that never complete (quorum never
reached before the workload ends) are excluded, mirroring how real audits
treat in-flight operations.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from ..core.builder import TraceBuilder
from ..core.history import MultiHistory
from ..core.operation import Operation, OpType
from .clock import ClockModel
from .events import EventLoop

__all__ = ["PendingOperation", "HistoryRecorder"]


@dataclass
class PendingOperation:
    """An invocation awaiting its response."""

    token: int
    op_type: OpType
    key: Hashable
    client: Hashable
    start: float
    value: Optional[Hashable] = None


class HistoryRecorder:
    """Records completed operations and assembles a :class:`MultiHistory`.

    Parameters
    ----------
    loop:
        The simulation event loop (source of timestamps).
    clock_error_ms:
        Half-width of a uniform timestamp error applied independently to each
        recorded start/finish, modelling bounded clock uncertainty.  The
        default 0.0 gives perfect timestamps (the paper's assumption); small
        positive values let experiments probe sensitivity to clock error.
    rng:
        Random stream for the clock error (required when it is non-zero).
    clock:
        Optional per-client :class:`~repro.simulation.clock.ClockModel`
        (skew and drift); applied before the uniform jitter, using the
        client that issued the operation.  ``None`` keeps the global clock.
    """

    def __init__(
        self,
        loop: EventLoop,
        *,
        clock_error_ms: float = 0.0,
        rng: Optional[random.Random] = None,
        clock: Optional["ClockModel"] = None,
    ):
        self.loop = loop
        self.clock_error_ms = clock_error_ms
        self.rng = rng if rng is not None else random.Random(0)
        self.clock = clock
        self._tokens = itertools.count()
        self._pending: Dict[int, PendingOperation] = {}
        # Completed operations stream into the trace builder, which buckets
        # them per register as they arrive — the same ingestion surface the
        # sharded verification engine consumes, so a recorded trace is ready
        # for per-register verification without any regrouping pass.
        self._trace = TraceBuilder()
        self._failed = 0
        # Completion-order subscribers (e.g. a LiveAuditor): each completed
        # operation is delivered to every listener the moment it is recorded,
        # which is what lets verdicts exist while the simulation still runs.
        self._listeners: List[Callable[[Operation], None]] = []

    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[Operation], None]) -> None:
        """Subscribe a callable to every subsequently recorded operation.

        Listeners receive completed operations in completion order, exactly
        as they enter the trace — the stream shape the online verification
        stack (:mod:`repro.engine.streaming`) consumes.
        """
        self._listeners.append(listener)

    def _record(self, op: Operation) -> None:
        self._trace.append(op)
        for listener in self._listeners:
            listener(op)

    # ------------------------------------------------------------------
    def _stamp(self, t: float, client: Hashable = None) -> float:
        if self.clock is not None:
            t = self.clock.stamp(client, t)
        if self.clock_error_ms <= 0:
            return t
        return t + self.rng.uniform(-self.clock_error_ms, self.clock_error_ms)

    # ------------------------------------------------------------------
    def begin_write(self, client: Hashable, key: Hashable, value: Hashable) -> int:
        """Record a write invocation; returns a token for :meth:`complete`."""
        token = next(self._tokens)
        self._pending[token] = PendingOperation(
            token=token,
            op_type=OpType.WRITE,
            key=key,
            client=client,
            start=self._stamp(self.loop.now, client),
            value=value,
        )
        return token

    def begin_read(self, client: Hashable, key: Hashable) -> int:
        """Record a read invocation; returns a token for :meth:`complete`."""
        token = next(self._tokens)
        self._pending[token] = PendingOperation(
            token=token,
            op_type=OpType.READ,
            key=key,
            client=client,
            start=self._stamp(self.loop.now, client),
        )
        return token

    def complete(self, token: int, *, value: Optional[Hashable] = None, ok: bool = True) -> None:
        """Record the response for a pending operation.

        For reads, ``value`` is the value returned by the store.  Setting
        ``ok=False`` (timeout, no reply) drops the operation from the history
        and counts it as failed.
        """
        pending = self._pending.pop(token, None)
        if pending is None:
            return
        if not ok:
            self._failed += 1
            return
        finish = self._stamp(self.loop.now, pending.client)
        if finish <= pending.start:
            finish = pending.start + 1e-6
        if pending.op_type is OpType.WRITE:
            op_value = pending.value
        else:
            op_value = value
        self._record(
            Operation(
                op_type=pending.op_type,
                value=op_value,
                start=pending.start,
                finish=finish,
                key=pending.key,
                client=pending.client,
            )
        )

    def record_instant_write(self, client: Hashable, key: Hashable, value: Hashable,
                             start: float, finish: float) -> None:
        """Record a write with explicit timestamps (used for seed writes)."""
        self._record(
            Operation(
                op_type=OpType.WRITE,
                value=value,
                start=start,
                finish=finish,
                key=key,
                client=client,
            )
        )

    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """Number of operations recorded so far."""
        return self._trace.op_count

    @property
    def failed_count(self) -> int:
        """Number of operations that completed unsuccessfully (excluded)."""
        return self._failed

    @property
    def pending_count(self) -> int:
        """Number of invocations still awaiting a response."""
        return len(self._pending)

    def trace_builder(self) -> TraceBuilder:
        """The live per-register trace builder (the engine consumes it as-is)."""
        return self._trace

    def multi_history(self) -> MultiHistory:
        """Assemble the per-register histories of all completed operations."""
        return self._trace.build()

    def operations(self) -> List[Operation]:
        """All completed operations in completion order.

        Operations are created at completion time with monotonically
        increasing ids, so sorting the per-register buckets by id recovers
        the global completion order.
        """
        return sorted(self._trace.iter_operations(), key=lambda op: op.op_id)
