"""Fault injection for the store simulator.

A :class:`FaultSchedule` is a declarative list of events — replica crashes
and recoveries, network partitions and heals — applied to a running
simulation at fixed simulated times.  Fault injection is how the audit
experiments explore the regimes where sloppy quorums visibly diverge from
atomicity: a crashed replica or a partition makes it far more likely that a
read quorum misses the latest write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from .events import EventLoop
from .network import Network
from .replica import Replica

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "crash_window",
    "partition_window",
    "split_brain_window",
]


class FaultKind:
    """String constants naming the supported fault actions."""

    CRASH = "crash"
    RECOVER = "recover"
    PARTITION = "partition"
    HEAL = "heal"
    SPLIT_BRAIN = "split_brain"
    HEAL_GROUPS = "heal_groups"

    ALL = (CRASH, RECOVER, PARTITION, HEAL, SPLIT_BRAIN, HEAL_GROUPS)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``target`` names a replica for crash/recover, or a pair of endpoint names
    for partition/heal.
    """

    time_ms: float
    kind: str
    target: Tuple

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise SimulationError(f"unknown fault kind {self.kind!r}")
        if self.time_ms < 0:
            raise SimulationError("fault time must be non-negative")


@dataclass
class FaultSchedule:
    """A set of fault events to apply to a simulation run."""

    events: List[FaultEvent] = field(default_factory=list)

    def add_crash(self, replica_id: str, at_ms: float) -> "FaultSchedule":
        """Crash ``replica_id`` at the given simulated time."""
        self.events.append(FaultEvent(at_ms, FaultKind.CRASH, (replica_id,)))
        return self

    def add_recover(self, replica_id: str, at_ms: float) -> "FaultSchedule":
        """Recover ``replica_id`` at the given simulated time."""
        self.events.append(FaultEvent(at_ms, FaultKind.RECOVER, (replica_id,)))
        return self

    def add_partition(self, a: str, b: str, at_ms: float) -> "FaultSchedule":
        """Partition endpoints ``a`` and ``b`` at the given time."""
        self.events.append(FaultEvent(at_ms, FaultKind.PARTITION, (a, b)))
        return self

    def add_heal(self, a: str, b: str, at_ms: float) -> "FaultSchedule":
        """Heal a previously installed partition."""
        self.events.append(FaultEvent(at_ms, FaultKind.HEAL, (a, b)))
        return self

    def add_split_brain(
        self, groups: Sequence[Sequence[str]], at_ms: float
    ) -> "FaultSchedule":
        """Split the cluster into isolated groups at the given time."""
        frozen = tuple(tuple(group) for group in groups)
        if len(frozen) < 2:
            raise SimulationError("a split-brain needs at least two groups")
        self.events.append(FaultEvent(at_ms, FaultKind.SPLIT_BRAIN, frozen))
        return self

    def add_heal_groups(
        self, groups: Sequence[Sequence[str]], at_ms: float
    ) -> "FaultSchedule":
        """Heal a split-brain previously installed with :meth:`add_split_brain`."""
        frozen = tuple(tuple(group) for group in groups)
        self.events.append(FaultEvent(at_ms, FaultKind.HEAL_GROUPS, frozen))
        return self

    def install(self, loop: EventLoop, network: Network, replicas: Dict[str, Replica]) -> None:
        """Schedule every fault event on the given simulation."""
        for event in sorted(self.events, key=lambda e: e.time_ms):
            if event.kind in (FaultKind.CRASH, FaultKind.RECOVER):
                (replica_id,) = event.target
                replica = replicas.get(replica_id)
                if replica is None:
                    raise SimulationError(f"fault targets unknown replica {replica_id!r}")
                action = replica.crash if event.kind == FaultKind.CRASH else replica.recover
                loop.schedule_at(event.time_ms, action)
            elif event.kind in (FaultKind.SPLIT_BRAIN, FaultKind.HEAL_GROUPS):
                # Group members may be any endpoint name — replicas *and*
                # client coordinators — exactly like pairwise partitions.
                action = (
                    network.partition_groups
                    if event.kind == FaultKind.SPLIT_BRAIN
                    else network.heal_groups
                )
                loop.schedule_at(event.time_ms, action, event.target)
            else:
                a, b = event.target
                if event.kind == FaultKind.PARTITION:
                    loop.schedule_at(event.time_ms, network.partition, a, b)
                else:
                    loop.schedule_at(event.time_ms, network.heal, a, b)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def from_plan(
        cls,
        plan,
        *,
        replica_ids: Sequence[str],
        client_ids: Sequence[str] = (),
        horizon_ms: float = 1000.0,
    ) -> "FaultSchedule":
        """Build a schedule from the simulation clauses of a fault plan.

        Each clause may pin its targets and times explicitly in ``params``;
        anything left unspecified is drawn from the clause's deterministic
        random stream (:meth:`repro.chaos.plan.FaultPlan.rng_for`), so the
        same plan always yields the same schedule over the same cluster.
        ``horizon_ms`` bounds the random fault windows — pick roughly the
        expected simulated duration of the run.  ``client_ids`` (the
        coordinator endpoint names, ``client-N`` in the store) lets a random
        split-brain cut clients off from the far side's replicas — without
        them a split only separates replica-to-replica repair traffic.
        """
        from ..chaos.plan import DOMAIN_SIMULATION

        replica_ids = list(replica_ids)
        client_ids = list(client_ids)
        if not replica_ids:
            raise SimulationError("from_plan needs at least one replica id")
        schedule = cls()
        for index, clause in plan.clauses_for(DOMAIN_SIMULATION):
            rng = plan.rng_for(index)
            start = float(
                clause.param("at_ms", rng.uniform(0.0, horizon_ms * 0.5))
            )
            duration = float(
                clause.param("duration_ms", rng.uniform(horizon_ms * 0.1, horizon_ms * 0.4))
            )
            if duration <= 0:
                raise SimulationError("fault duration_ms must be positive")
            if clause.kind == "crash":
                replica = clause.param("replica") or rng.choice(replica_ids)
                schedule.add_crash(str(replica), start)
                schedule.add_recover(str(replica), start + duration)
            elif clause.kind == "partition":
                a = clause.param("a")
                b = clause.param("b")
                if a is None or b is None:
                    if len(replica_ids) < 2:
                        raise SimulationError("a partition needs two replicas")
                    a, b = rng.sample(replica_ids, 2)
                schedule.add_partition(str(a), str(b), start)
                schedule.add_heal(str(a), str(b), start + duration)
            elif clause.kind == "split_brain":
                groups = clause.param("groups")
                if groups is None:
                    if len(replica_ids) < 2:
                        raise SimulationError("a split-brain needs two replicas")
                    shuffled = list(replica_ids)
                    rng.shuffle(shuffled)
                    cut = rng.randint(1, len(shuffled) - 1)
                    groups = [shuffled[:cut], shuffled[cut:]]
                    # Strand each client on one random side of the split.
                    for client in client_ids:
                        groups[rng.randrange(2)].append(client)
                frozen = tuple(tuple(str(m) for m in group) for group in groups)
                schedule.add_split_brain(frozen, start)
                schedule.add_heal_groups(frozen, start + duration)
            else:  # pragma: no cover - registry and this dispatch move together
                raise SimulationError(
                    f"simulation clause {clause.kind!r} is not supported here"
                )
        return schedule


def crash_window(replica_id: str, start_ms: float, end_ms: float) -> FaultSchedule:
    """A schedule that crashes a replica for the window ``[start, end]``."""
    if end_ms <= start_ms:
        raise SimulationError("crash window must have positive length")
    schedule = FaultSchedule()
    schedule.add_crash(replica_id, start_ms)
    schedule.add_recover(replica_id, end_ms)
    return schedule


def partition_window(a: str, b: str, start_ms: float, end_ms: float) -> FaultSchedule:
    """A schedule that partitions two endpoints for the window ``[start, end]``."""
    if end_ms <= start_ms:
        raise SimulationError("partition window must have positive length")
    schedule = FaultSchedule()
    schedule.add_partition(a, b, start_ms)
    schedule.add_heal(a, b, end_ms)
    return schedule


def split_brain_window(
    groups: Sequence[Sequence[str]], start_ms: float, end_ms: float
) -> FaultSchedule:
    """A schedule holding a split-brain open for the window ``[start, end]``."""
    if end_ms <= start_ms:
        raise SimulationError("split-brain window must have positive length")
    schedule = FaultSchedule()
    schedule.add_split_brain(groups, start_ms)
    schedule.add_heal_groups(groups, end_ms)
    return schedule
