"""Fault injection for the store simulator.

A :class:`FaultSchedule` is a declarative list of events — replica crashes
and recoveries, network partitions and heals — applied to a running
simulation at fixed simulated times.  Fault injection is how the audit
experiments explore the regimes where sloppy quorums visibly diverge from
atomicity: a crashed replica or a partition makes it far more likely that a
read quorum misses the latest write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from .events import EventLoop
from .network import Network
from .replica import Replica

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "crash_window", "partition_window"]


class FaultKind:
    """String constants naming the supported fault actions."""

    CRASH = "crash"
    RECOVER = "recover"
    PARTITION = "partition"
    HEAL = "heal"

    ALL = (CRASH, RECOVER, PARTITION, HEAL)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``target`` names a replica for crash/recover, or a pair of endpoint names
    for partition/heal.
    """

    time_ms: float
    kind: str
    target: Tuple

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise SimulationError(f"unknown fault kind {self.kind!r}")
        if self.time_ms < 0:
            raise SimulationError("fault time must be non-negative")


@dataclass
class FaultSchedule:
    """A set of fault events to apply to a simulation run."""

    events: List[FaultEvent] = field(default_factory=list)

    def add_crash(self, replica_id: str, at_ms: float) -> "FaultSchedule":
        """Crash ``replica_id`` at the given simulated time."""
        self.events.append(FaultEvent(at_ms, FaultKind.CRASH, (replica_id,)))
        return self

    def add_recover(self, replica_id: str, at_ms: float) -> "FaultSchedule":
        """Recover ``replica_id`` at the given simulated time."""
        self.events.append(FaultEvent(at_ms, FaultKind.RECOVER, (replica_id,)))
        return self

    def add_partition(self, a: str, b: str, at_ms: float) -> "FaultSchedule":
        """Partition endpoints ``a`` and ``b`` at the given time."""
        self.events.append(FaultEvent(at_ms, FaultKind.PARTITION, (a, b)))
        return self

    def add_heal(self, a: str, b: str, at_ms: float) -> "FaultSchedule":
        """Heal a previously installed partition."""
        self.events.append(FaultEvent(at_ms, FaultKind.HEAL, (a, b)))
        return self

    def install(self, loop: EventLoop, network: Network, replicas: Dict[str, Replica]) -> None:
        """Schedule every fault event on the given simulation."""
        for event in sorted(self.events, key=lambda e: e.time_ms):
            if event.kind in (FaultKind.CRASH, FaultKind.RECOVER):
                (replica_id,) = event.target
                replica = replicas.get(replica_id)
                if replica is None:
                    raise SimulationError(f"fault targets unknown replica {replica_id!r}")
                action = replica.crash if event.kind == FaultKind.CRASH else replica.recover
                loop.schedule_at(event.time_ms, action)
            else:
                a, b = event.target
                if event.kind == FaultKind.PARTITION:
                    loop.schedule_at(event.time_ms, network.partition, a, b)
                else:
                    loop.schedule_at(event.time_ms, network.heal, a, b)

    def __len__(self) -> int:
        return len(self.events)


def crash_window(replica_id: str, start_ms: float, end_ms: float) -> FaultSchedule:
    """A schedule that crashes a replica for the window ``[start, end]``."""
    if end_ms <= start_ms:
        raise SimulationError("crash window must have positive length")
    schedule = FaultSchedule()
    schedule.add_crash(replica_id, start_ms)
    schedule.add_recover(replica_id, end_ms)
    return schedule


def partition_window(a: str, b: str, start_ms: float, end_ms: float) -> FaultSchedule:
    """A schedule that partitions two endpoints for the window ``[start, end]``."""
    if end_ms <= start_ms:
        raise SimulationError("partition window must have positive length")
    schedule = FaultSchedule()
    schedule.add_partition(a, b, start_ms)
    schedule.add_heal(a, b, end_ms)
    return schedule
