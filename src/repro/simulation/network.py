"""Network model: message latency distributions, loss, and partitions.

The paper's motivating systems are geo-replicated stores whose consistency
behaviour is driven by message delay variance: a write coordinator may return
after ``W`` acknowledgements while the remaining replicas are still catching
up, so a subsequent read that contacts a disjoint set of replicas observes a
stale value.  The :class:`Network` class models exactly that: every message
between two endpoints is delivered after a sampled latency, possibly dropped,
and possibly blocked by an active partition.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Sequence, Set, Tuple

from ..core.errors import SimulationError
from .events import EventLoop

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "Network",
    "NetworkStats",
]


class LatencyModel:
    """Base class for one-way message latency distributions (milliseconds)."""

    def sample(self, rng: random.Random) -> float:
        """Draw a single one-way latency."""
        raise NotImplementedError

    def mean(self) -> float:
        """The distribution mean, used for sanity checks and reporting."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Every message takes exactly ``latency_ms``."""

    latency_ms: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return self.latency_ms

    def mean(self) -> float:
        return self.latency_ms


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Latency uniform in ``[low_ms, high_ms]``."""

    low_ms: float = 0.5
    high_ms: float = 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def mean(self) -> float:
        return (self.low_ms + self.high_ms) / 2.0


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponential latency with the given mean plus a propagation floor."""

    mean_ms: float = 2.0
    floor_ms: float = 0.2

    def sample(self, rng: random.Random) -> float:
        return self.floor_ms + rng.expovariate(1.0 / self.mean_ms)

    def mean(self) -> float:
        return self.floor_ms + self.mean_ms


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normal latency — heavy-tailed, the classic datacenter RPC shape."""

    median_ms: float = 1.5
    sigma: float = 0.6

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median_ms), self.sigma)

    def mean(self) -> float:
        return self.median_ms * math.exp(self.sigma ** 2 / 2.0)


@dataclass
class NetworkStats:
    """Counters the network keeps while a simulation runs."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    blocked_by_partition: int = 0


class Network:
    """Delivers messages between named endpoints over the shared event loop.

    Parameters
    ----------
    loop:
        The simulation's event loop.
    latency:
        The one-way latency distribution.
    rng:
        Random stream used for latency samples and drop decisions.
    drop_probability:
        Probability that any given message is silently lost.
    """

    def __init__(
        self,
        loop: EventLoop,
        latency: LatencyModel,
        rng: random.Random,
        *,
        drop_probability: float = 0.0,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise SimulationError("drop_probability must lie in [0, 1)")
        self.loop = loop
        self.latency = latency
        self.rng = rng
        self.drop_probability = drop_probability
        self.stats = NetworkStats()
        self._partitioned: Set[Tuple[Hashable, Hashable]] = set()

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: Hashable, b: Hashable) -> None:
        """Block all traffic between endpoints ``a`` and ``b`` (both ways)."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: Hashable, b: Hashable) -> None:
        """Remove a partition previously installed with :meth:`partition`."""
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def partition_groups(self, groups: Sequence[Sequence[Hashable]]) -> None:
        """Install a split-brain: endpoints in different groups cannot talk.

        Traffic *within* each group still flows — the classic long-fork
        topology where two sides of a cluster both keep serving.  Endpoints
        not named in any group are unaffected.
        """
        flat = [member for group in groups for member in group]
        if len(set(flat)) != len(flat):
            raise SimulationError("split-brain groups must be disjoint")
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1 :]:
                for a in group_a:
                    for b in group_b:
                        self.partition(a, b)

    def heal_groups(self, groups: Sequence[Sequence[Hashable]]) -> None:
        """Remove a split-brain installed with :meth:`partition_groups`."""
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1 :]:
                for a in group_a:
                    for b in group_b:
                        self.heal(a, b)

    def heal_all(self) -> None:
        """Drop every active partition at once."""
        self._partitioned.clear()

    def is_partitioned(self, a: Hashable, b: Hashable) -> bool:
        """True iff traffic between ``a`` and ``b`` is currently blocked."""
        return (a, b) in self._partitioned

    # ------------------------------------------------------------------
    def send(
        self,
        src: Hashable,
        dst: Hashable,
        deliver: Callable,
        *args,
    ) -> None:
        """Send a message: ``deliver(*args)`` runs at the destination later.

        The message is dropped silently with ``drop_probability`` or when the
        two endpoints are partitioned — exactly like a lost datagram; the
        coordinator protocols are responsible for coping (quorums, timeouts).
        """
        self.stats.sent += 1
        if self.is_partitioned(src, dst):
            self.stats.blocked_by_partition += 1
            return
        if self.drop_probability > 0 and self.rng.random() < self.drop_probability:
            self.stats.dropped += 1
            return
        delay = max(0.0, self.latency.sample(self.rng))

        def _deliver():
            self.stats.delivered += 1
            deliver(*args)

        self.loop.schedule(delay, _deliver)
