"""Per-client clock models: skew and drift against the global simulated clock.

The paper's algorithms assume all timestamps come from one global clock
(Section II).  Real collectors timestamp at many machines whose clocks are
offset (skew) and tick at slightly different rates (drift); this module
models exactly that so experiments can quantify how sensitive the verdicts
are to the global-clock assumption (see
``experiments/clock_skew_sensitivity.toml``).

A :class:`SkewedClocks` model assigns each client a fixed offset drawn
uniformly from ``[-max_skew_ms, +max_skew_ms]`` and a rate error drawn from
``[-drift_ppm, +drift_ppm]`` parts-per-million, both sampled deterministically
from ``(seed, client)`` — the same client always gets the same clock no
matter the observation order, so a model instance can stamp a live
simulation (:class:`~repro.simulation.recorder.HistoryRecorder`) and re-stamp
an already recorded trace (:func:`repro.workloads.chaos.apply_clock_skew`)
identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from ..core.errors import SimulationError

__all__ = ["ClockModel", "PerfectClocks", "SkewedClocks"]


class ClockModel:
    """Base class: maps a (client, true time) pair to an observed timestamp."""

    def offset(self, client: Hashable, t: float) -> float:
        """The observed-minus-true clock error for ``client`` at time ``t``."""
        raise NotImplementedError

    def stamp(self, client: Hashable, t: float) -> float:
        """The timestamp ``client`` records for true time ``t``."""
        return t + self.offset(client, t)


class PerfectClocks(ClockModel):
    """The paper's assumption: every client reads the one global clock."""

    def offset(self, client: Hashable, t: float) -> float:
        return 0.0


@dataclass(frozen=True)
class SkewedClocks(ClockModel):
    """Fixed per-client offset plus linear drift.

    Parameters
    ----------
    max_skew_ms:
        Half-width of the uniform per-client constant offset.
    drift_ppm:
        Half-width of the uniform per-client rate error, in parts per
        million: a client with drift ``d`` observes ``t * (1 + d * 1e-6)``.
    seed:
        Anchors the per-client parameter draws; the same ``(seed, client)``
        always yields the same clock.
    """

    max_skew_ms: float = 0.0
    drift_ppm: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.max_skew_ms < 0:
            raise SimulationError("max_skew_ms must be non-negative")
        if self.drift_ppm < 0:
            raise SimulationError("drift_ppm must be non-negative")
        object.__setattr__(self, "_params", {})

    def params_for(self, client: Hashable) -> Tuple[float, float]:
        """The (offset_ms, drift_ppm) pair of one client, sampled lazily."""
        cache: Dict[Hashable, Tuple[float, float]] = self._params
        found = cache.get(client)
        if found is None:
            rng = random.Random(f"{self.seed}:clock:{client!r}")
            found = (
                rng.uniform(-self.max_skew_ms, self.max_skew_ms),
                rng.uniform(-self.drift_ppm, self.drift_ppm),
            )
            cache[client] = found
        return found

    def offset(self, client: Hashable, t: float) -> float:
        skew, drift = self.params_for(client)
        return skew + t * drift * 1e-6
