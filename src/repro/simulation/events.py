"""Discrete-event simulation core.

A minimal but complete event loop: callbacks are scheduled at absolute
simulated times (or relative delays), executed in timestamp order with a
deterministic FIFO tie-break, and may schedule further events.  All other
simulator components (network, replicas, coordinators, clients, fault
injector) share one :class:`EventLoop` instance, so a whole cluster run is a
single-threaded, perfectly reproducible computation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..core.errors import SimulationError

__all__ = ["EventLoop", "Event"]


class Event:
    """A scheduled callback.  Exposes :meth:`cancel` for timeouts."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:g} {name} cancelled={self.cancelled}>"


class EventLoop:
    """A deterministic discrete-event scheduler.

    Simulated time is a float in milliseconds (the unit only matters for
    interpreting latency-model parameters).  Events scheduled for the same
    timestamp run in scheduling order.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self._now:g}, asked {time:g})"
            )
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` is reached).

        Returns the number of events executed by this call.  ``max_events``
        guards against runaway simulations (e.g. a client that keeps
        rescheduling itself); exceeding it raises
        :class:`~repro.core.errors.SimulationError`.
        """
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                if self._queue and any(not e.cancelled for e in self._queue):
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events} with work remaining"
                    )
                break
        return executed

    def run_until(self, time: float) -> int:
        """Run events with timestamps up to ``time`` (inclusive)."""
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed
