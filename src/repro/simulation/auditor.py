"""Live consistency auditing of a running simulation.

The paper's framing is operational: an auditor watches an Internet-scale
store and tells the operator how far from atomic it is, so the consistency
tuning knobs can be adjusted.  :class:`LiveAuditor` realises that loop inside
the simulator: it subscribes to the :class:`~repro.simulation.recorder.HistoryRecorder`
completion stream, cuts it into windows, drives a bank of per-register
incremental checkers (one per audited staleness bound), and keeps a rolling
:class:`~repro.analysis.spectrum.OnlineSpectrum` — all *while the simulated
store is still serving its workload*, so mid-run verdicts exist long before
the trace is complete.

Typical use::

    auditor = LiveAuditor(window=WindowPolicy.count(64))
    store = SloppyQuorumStore(config, seed=7)
    result = store.run(workload, auditor=auditor)

    auditor.samples                # mid-run verdict stream, in audit order
    auditor.spectrum_snapshot()    # rolling staleness spectrum
    auditor.final_results(k=2)     # end-of-run verdicts (== batch verdicts)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..algorithms.online import (
    DEFAULT_CADENCE_GROWTH,
    DEFAULT_CHECK_INTERVAL,
    Checker,
    checker_for,
)
from ..analysis.spectrum import OnlineSpectrum, StalenessSpectrum
from ..core.errors import SimulationError
from ..core.operation import Operation
from ..core.result import StreamVerdict, VerificationResult
from ..core.windows import Window, WindowAssembler, WindowPolicy

__all__ = ["AuditSample", "LiveAuditor"]


@dataclass(frozen=True)
class AuditSample:
    """One rolling verdict emitted while the simulation was still running."""

    window_index: int
    #: Simulated time of the latest operation folded into the verdict.
    sim_time_ms: float
    key: Hashable
    k: int
    verdict: StreamVerdict

    def describe(self) -> str:
        """Terminal-friendly one-liner for live audit logs."""
        mark = "yes" if self.verdict else "NO "
        strength = "final" if self.verdict.final else "provisional"
        return (
            f"t={self.sim_time_ms:8.1f}ms window={self.window_index:<3} "
            f"{self.key!r}: {self.k}-atomic {mark} ({strength})"
        )


class LiveAuditor:
    """Rolling per-register k-atomicity verdicts for a running store.

    Parameters
    ----------
    ks:
        The staleness bounds to audit concurrently (default ``(1, 2)``, which
        is what feeds the online staleness spectrum: linearizable vs 2-atomic
        vs worse).
    window:
        Window policy cutting the completion stream (default: tumbling
        windows of 32 operations — small enough for mid-run verdicts on
        laptop-scale simulations).
    algorithm:
        Checker selection per bound, forwarded to
        :func:`repro.algorithms.online.checker_for`.
    check_interval, cadence_growth:
        Authoritative re-check cadence of the underlying checkers.
    """

    def __init__(
        self,
        *,
        ks: Sequence[int] = (1, 2),
        window: WindowPolicy = WindowPolicy.count(32),
        algorithm: str = "auto",
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        cadence_growth: float = DEFAULT_CADENCE_GROWTH,
    ):
        if not ks:
            raise SimulationError("LiveAuditor needs at least one staleness bound")
        self.ks: Tuple[int, ...] = tuple(dict.fromkeys(ks))
        self.window = window
        self.algorithm = algorithm
        self.check_interval = check_interval
        self.cadence_growth = cadence_growth
        self._assembler = WindowAssembler(window)
        self._checkers: Dict[int, Dict[Hashable, Checker]] = {k: {} for k in self.ks}
        self._key_order: List[Hashable] = []
        self._ops_per_key: Dict[Hashable, int] = {}
        self._spectrum = OnlineSpectrum()
        self._samples: List[AuditSample] = []
        self._windows_closed = 0
        self._finalized: Optional[Dict[int, Dict[Hashable, VerificationResult]]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, recorder) -> "LiveAuditor":
        """Subscribe to a :class:`HistoryRecorder`'s completion stream."""
        recorder.add_listener(self.observe)
        return self

    def observe(self, op: Operation) -> None:
        """Ingest one completed operation (the recorder listener callback)."""
        if self._finalized is not None:
            raise SimulationError("LiveAuditor already finalized")
        self._ops_per_key[op.key] = self._ops_per_key.get(op.key, 0) + 1
        window = self._assembler.feed(op)
        if window is not None:
            self._close_window(window)

    # ------------------------------------------------------------------
    # Rolling state
    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[AuditSample]:
        """Every rolling verdict emitted so far, in emission order."""
        return list(self._samples)

    @property
    def windows_closed(self) -> int:
        """Windows processed so far."""
        return self._windows_closed

    @property
    def ops_observed(self) -> int:
        """Completed operations ingested so far."""
        return sum(self._ops_per_key.values())

    def rolling_verdict(self, key: Hashable, k: int) -> Optional[StreamVerdict]:
        """The register's current verdict for bound ``k`` (``None`` if unseen)."""
        checker = self._checkers.get(k, {}).get(key)
        if checker is None:
            return None
        return checker.check_now()

    def spectrum_snapshot(self) -> StalenessSpectrum:
        """Freeze the rolling online spectrum into a batch spectrum object."""
        return self._spectrum.snapshot()

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self) -> Dict[int, Dict[Hashable, VerificationResult]]:
        """Flush the open window and finish every checker.

        Returns ``{k: {register: final VerificationResult}}``; the final
        verdicts equal batch verification of the recorded trace (rolling
        checkers re-verify their complete buffer on finish).  Idempotent.
        """
        if self._finalized is not None:
            return self._finalized
        tail = self._assembler.flush()
        if tail is not None:
            self._close_window(tail)
        results: Dict[int, Dict[Hashable, VerificationResult]] = {}
        for k in self.ks:
            results[k] = {
                key: self._checkers[k][key].finish() for key in self._key_order
            }
        # Fold the final verdicts into the spectrum: rolling verdicts only
        # cover the resolved prefix, whereas finish() also accounts for reads
        # whose dictating write never arrived, so the snapshot now equals the
        # batch spectrum's bucketing of the recorded trace.
        for key in self._key_order:
            final_verdicts = {
                k: StreamVerdict(
                    result=results[k][key],
                    ops_seen=self._ops_per_key.get(key, 0),
                    final=True,
                )
                for k in self.ks
            }
            self._spectrum.observe(
                key,
                one_atomic=final_verdicts.get(1),
                two_atomic=final_verdicts.get(2),
                num_ops=self._ops_per_key.get(key, 0),
            )
        self._finalized = results
        return results

    def final_results(self, k: int) -> Dict[Hashable, VerificationResult]:
        """Final per-register verdicts for one audited bound (finalizes)."""
        return dict(self.finalize()[k])

    def summary(self) -> str:
        """One-line human-readable summary of the audit so far."""
        spectrum = self.spectrum_snapshot()
        counts = ", ".join(
            f"{bucket.value}: {count}" for bucket, count in sorted(
                spectrum.counts().items(), key=lambda item: item[0].value
            )
        )
        state = "final" if self._finalized is not None else "rolling"
        return (
            f"live audit ({state}): {self.ops_observed} ops over "
            f"{len(self._key_order)} registers in {self._windows_closed} windows"
            + (f" — {counts}" if counts else "")
        )

    # ------------------------------------------------------------------
    def _close_window(self, window: Window) -> None:
        self._windows_closed += 1
        by_key: Dict[Hashable, List[Operation]] = {}
        for op in window.fresh_ops:
            by_key.setdefault(op.key, []).append(op)
        for key, ops in by_key.items():
            if key not in self._key_order:
                self._key_order.append(key)
            verdicts: Dict[int, StreamVerdict] = {}
            for k in self.ks:
                checker = self._checkers[k].get(key)
                if checker is None:
                    checker = self._checkers[k][key] = checker_for(
                        k,
                        algorithm=self.algorithm,
                        check_interval=self.check_interval,
                        cadence_growth=self.cadence_growth,
                    )
                for op in ops:
                    checker.feed(op)
                verdict = checker.check_now()
                verdicts[k] = verdict
                self._samples.append(
                    AuditSample(
                        window_index=window.index,
                        sim_time_ms=window.t_high,
                        key=key,
                        k=k,
                        verdict=verdict,
                    )
                )
            self._spectrum.observe(
                key,
                one_atomic=verdicts.get(1),
                two_atomic=verdicts.get(2),
                num_ops=self._ops_per_key.get(key, 0),
            )
