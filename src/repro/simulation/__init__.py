"""Discrete-event simulation of a Dynamo-style sloppy-quorum store.

The paper motivates k-atomicity with Internet-scale stores that use non-strict
("sloppy") quorums; this package provides a faithful, laptop-scale stand-in:
a deterministic discrete-event simulator with configurable replication factor,
read/write quorum sizes, latency distributions, message loss, replica crashes,
network partitions and read repair.  The recorded histories feed directly
into the verification algorithms, reproducing the audit workflow the paper's
introduction and conclusion describe.
"""

from .auditor import AuditSample, LiveAuditor
from .client import Client
from .clock import ClockModel, PerfectClocks, SkewedClocks
from .coordinator import Coordinator, CoordinatorStats, QuorumConfig
from .events import Event, EventLoop
from .faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    crash_window,
    partition_window,
    split_brain_window,
)
from .network import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    Network,
    NetworkStats,
    UniformLatency,
)
from .recorder import HistoryRecorder
from .replica import Replica, ReplicaStats, StoredVersion
from .store import RunResult, SloppyQuorumStore, StoreConfig

__all__ = [
    "AuditSample",
    "Client",
    "ClockModel",
    "Coordinator",
    "CoordinatorStats",
    "Event",
    "EventLoop",
    "ExponentialLatency",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FixedLatency",
    "HistoryRecorder",
    "LatencyModel",
    "LiveAuditor",
    "LogNormalLatency",
    "Network",
    "NetworkStats",
    "PerfectClocks",
    "QuorumConfig",
    "Replica",
    "ReplicaStats",
    "RunResult",
    "SkewedClocks",
    "SloppyQuorumStore",
    "StoreConfig",
    "StoredVersion",
    "UniformLatency",
    "crash_window",
    "partition_window",
    "split_brain_window",
]
