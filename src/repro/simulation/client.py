"""Closed-loop clients driving the simulated store.

Each client issues one operation at a time: it picks a key from the
workload's key distribution, flips a read/write coin, calls its coordinator,
and — once the response arrives and is recorded — waits an exponential think
time before issuing the next operation.  Clients write globally unique values
(``"c<client>-<seq>"``), satisfying the uniquely-valued-writes assumption the
verification algorithms rely on (Section II-C).
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from ..workloads.spec import WorkloadSpec
from .coordinator import Coordinator
from .events import EventLoop
from .recorder import HistoryRecorder

__all__ = ["Client"]


class Client:
    """A closed-loop client bound to one coordinator."""

    def __init__(
        self,
        client_id: int,
        loop: EventLoop,
        coordinator: Coordinator,
        recorder: HistoryRecorder,
        spec: WorkloadSpec,
    ):
        self.client_id = client_id
        self.loop = loop
        self.coordinator = coordinator
        self.recorder = recorder
        self.spec = spec
        self.rng: random.Random = spec.client_rng(client_id)
        self.remaining = spec.operations_per_client
        self._write_seq = 0
        self.finished = False

    # ------------------------------------------------------------------
    def start(self, initial_delay_ms: Optional[float] = None) -> None:
        """Schedule the client's first operation.

        A small random initial delay de-synchronises the clients so they do
        not all fire at simulated time zero.
        """
        if initial_delay_ms is None:
            initial_delay_ms = self.rng.uniform(0.0, self.spec.mean_think_time_ms)
        self.loop.schedule(initial_delay_ms, self._issue_next)

    # ------------------------------------------------------------------
    def _think_time(self) -> float:
        mean = self.spec.mean_think_time_ms
        if mean <= 0:
            return 0.0
        return self.rng.expovariate(1.0 / mean)

    def _next_value(self) -> str:
        value = f"c{self.client_id}-{self._write_seq}"
        self._write_seq += 1
        return value

    def _issue_next(self) -> None:
        if self.remaining <= 0:
            self.finished = True
            return
        self.remaining -= 1
        key = self.spec.key_selector.select(self.rng)
        if self.rng.random() < self.spec.write_ratio:
            self._issue_write(key)
        else:
            self._issue_read(key)

    def _issue_write(self, key: Hashable) -> None:
        value = self._next_value()
        token = self.recorder.begin_write(self.client_id, key, value)

        def on_done(ok: bool) -> None:
            self.recorder.complete(token, ok=ok)
            self.loop.schedule(self._think_time(), self._issue_next)

        self.coordinator.write(key, value, on_done)

    def _issue_read(self, key: Hashable) -> None:
        token = self.recorder.begin_read(self.client_id, key)

        def on_done(value, version) -> None:
            ok = value is not None
            self.recorder.complete(token, value=value, ok=ok)
            self.loop.schedule(self._think_time(), self._issue_next)

        self.coordinator.read(key, on_done)
