"""The simulated sloppy-quorum replicated store, end to end.

:class:`SloppyQuorumStore` wires together the event loop, network, replicas,
per-client coordinators, the fault injector and the history recorder, runs a
client workload to completion, and returns the recorded multi-register
history together with run statistics.  This is the substitute for the
Internet-scale stores (Dynamo-style systems) that motivate the paper: the
verification algorithms only ever see the recorded history, so any system
producing the same interface exercises the same code paths.

Typical use::

    from repro.simulation import SloppyQuorumStore, StoreConfig
    from repro.workloads import WorkloadSpec, ZipfianKeys

    config = StoreConfig(quorum=QuorumConfig(num_replicas=5, read_quorum=1, write_quorum=2))
    store = SloppyQuorumStore(config, seed=7)
    result = store.run(WorkloadSpec(num_clients=16, operations_per_client=100,
                                    key_selector=ZipfianKeys(num_keys=10)))
    trace = result.history          # a MultiHistory, one History per key
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import SimulationError
from ..core.history import MultiHistory
from ..workloads.spec import WorkloadSpec
from .auditor import LiveAuditor
from .client import Client
from .clock import ClockModel
from .coordinator import Coordinator, CoordinatorStats, QuorumConfig
from .events import EventLoop
from .faults import FaultSchedule
from .network import ExponentialLatency, LatencyModel, Network, NetworkStats
from .recorder import HistoryRecorder
from .replica import Replica

__all__ = ["StoreConfig", "RunResult", "SloppyQuorumStore"]


@dataclass(frozen=True)
class StoreConfig:
    """Complete configuration of a simulated store."""

    quorum: QuorumConfig = field(default_factory=QuorumConfig)
    latency: LatencyModel = field(default_factory=ExponentialLatency)
    drop_probability: float = 0.0
    replica_apply_delay_ms: float = 0.0
    #: Bounded uniform error added to recorded timestamps (0 = perfect clocks,
    #: the paper's assumption backed by TrueTime-style infrastructure).
    clock_error_ms: float = 0.0
    #: Optional per-client clock model (skew + drift); ``None`` keeps the
    #: global simulated clock.  See :mod:`repro.simulation.clock`.
    clock: Optional[ClockModel] = None
    #: Hard cap on simulated events, guarding against runaway configurations.
    max_events: int = 2_000_000


@dataclass
class RunResult:
    """Everything a store run produces."""

    history: MultiHistory
    config: StoreConfig
    workload: WorkloadSpec
    simulated_duration_ms: float
    completed_operations: int
    failed_operations: int
    network: NetworkStats
    coordinator: CoordinatorStats

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        return (
            f"{self.config.quorum.describe()}: {self.completed_operations} ops "
            f"({self.failed_operations} failed) over {len(self.history)} keys in "
            f"{self.simulated_duration_ms:.1f} simulated ms"
        )


class SloppyQuorumStore:
    """A reproducible, single-process simulation of a replicated KV store."""

    def __init__(self, config: Optional[StoreConfig] = None, *, seed: int = 0):
        self.config = config if config is not None else StoreConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadSpec,
        *,
        faults: Optional[FaultSchedule] = None,
        auditor: Optional[LiveAuditor] = None,
    ) -> RunResult:
        """Execute ``workload`` against a fresh cluster and record its history.

        Every run builds a brand-new cluster (replicas, network, clients) from
        the store seed and the workload seed, so results are deterministic and
        independent across runs.

        When a :class:`~repro.simulation.auditor.LiveAuditor` is given it is
        bound to the history recorder before any operation completes, so it
        observes the full completion stream and emits rolling per-register
        verdicts *during* the run; it is finalized (checkers finished, final
        verdicts computed) before this method returns.
        """
        config = self.config
        loop = EventLoop()
        rng = random.Random(f"{self.seed}-{workload.seed}")
        network = Network(
            loop, config.latency, rng, drop_probability=config.drop_probability
        )
        recorder = HistoryRecorder(
            loop,
            clock_error_ms=config.clock_error_ms,
            rng=random.Random(f"{self.seed}-clock"),
            clock=config.clock,
        )
        if auditor is not None:
            auditor.bind(recorder)

        replicas: Dict[str, Replica] = {}
        for i in range(config.quorum.num_replicas):
            replica_id = f"replica-{i}"
            replicas[replica_id] = Replica(
                replica_id, loop, apply_delay_ms=config.replica_apply_delay_ms
            )

        coordinator_stats = CoordinatorStats()
        clients: List[Client] = []
        for client_id in range(workload.num_clients):
            coordinator = Coordinator(
                name=f"client-{client_id}",
                loop=loop,
                network=network,
                replicas=list(replicas.values()),
                config=config.quorum,
                stats=coordinator_stats,
            )
            clients.append(Client(client_id, loop, coordinator, recorder, workload))

        self._seed_registers(workload, replicas, recorder)

        if faults is not None:
            faults.install(loop, network, replicas)

        for client in clients:
            client.start()

        loop.run(max_events=config.max_events)

        if auditor is not None:
            auditor.finalize()
        history = recorder.multi_history()
        return RunResult(
            history=history,
            config=config,
            workload=workload,
            simulated_duration_ms=loop.now,
            completed_operations=recorder.completed_count,
            failed_operations=recorder.failed_count,
            network=network.stats,
            coordinator=coordinator_stats,
        )

    # ------------------------------------------------------------------
    def _seed_registers(
        self,
        workload: WorkloadSpec,
        replicas: Dict[str, Replica],
        recorder: HistoryRecorder,
    ) -> None:
        """Install an initial value for every key on every replica.

        The seed writes are recorded in the history (with a tiny interval just
        before the workload starts) so that reads served before the first
        client write still have a dictating write — otherwise the history
        would contain Section II-C anomalies by construction rather than by
        system behaviour.
        """
        keys = workload.key_selector.keys()
        for index, key in enumerate(keys):
            value = f"seed-{key}"
            version = (-1.0, "seed", index)
            for replica in replicas.values():
                replica.install(key, value, version)
            start = -1.0 + index * 1e-6
            recorder.record_instant_write("seed", key, value, start, start + 1e-7)
