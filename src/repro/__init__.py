"""repro — k-atomicity verification for replicated storage histories.

A faithful, production-oriented reproduction of

    Wojciech Golab, Jeremy Hurwitz, Xiaozhou (Steve) Li.
    "On the k-Atomicity-Verification Problem."  ICDCS 2013.

The library provides:

* the operation/history model of the paper (Section II) with anomaly
  detection and normalisation,
* the **LBT** and **FZF** 2-atomicity-verification algorithms (Sections III
  and IV), a Gibbons–Korach 1-AV baseline, and an exact oracle for any ``k``,
* the **weighted k-AV** problem and its NP-completeness reduction from bin
  packing (Section V),
* a Dynamo-style sloppy-quorum store simulator, workload generators and
  analysis tools for auditing the consistency that such systems actually
  deliver — the motivating use case of the paper,
* an **online verification** stack: incremental checkers
  (:mod:`repro.algorithms.online`), stream windowing
  (:mod:`repro.core.windows`), a streaming engine
  (:mod:`repro.engine.streaming`) and live simulation auditing
  (:class:`repro.simulation.LiveAuditor`), so verdicts exist while
  operations are still arriving,
* an **audit service** (:mod:`repro.service`): an asyncio server
  multiplexing many concurrent trace sessions with bounded-queue
  backpressure, checkpoint/resume via the checkers'
  ``snapshot()``/``restore()`` state API, and a remote-verification client
  (``repro serve`` / ``repro verify --remote``),
* **durable state stores** (:mod:`repro.state`): pluggable
  ``(namespace, key) -> bytes`` backends — fsync-ed file-per-key, WAL-mode
  SQLite, log-structured footer-indexed segments with segment-level
  eviction — behind one interface, carrying session checkpoints, the
  worker pool's failover journal and spilled window timelines
  (``repro serve --state-backend``),
* **foreign-trace interop** (:mod:`repro.io`): Jepsen/Knossos event
  histories and Porcupine operation logs behind one format registry, so
  every entry point accepts ``--format jepsen|porcupine|jsonl|csv``
  uniformly,
* an **experiment harness** (:mod:`repro.experiments`): declarative
  TOML/JSON grids over workload/algorithm/engine knobs that regenerate the
  paper's evaluation (per-k staleness spectra, runtime scaling) as
  JSON/CSV/Markdown reports (``repro experiment run``).

Quickstart
----------
>>> from repro import History, read, write, verify
>>> h = History([
...     write("a", 0.0, 1.0),
...     write("b", 2.0, 3.0),
...     read("a", 4.0, 5.0),
... ])
>>> bool(verify(h, 1)), bool(verify(h, 2))
(False, True)
"""

from .core import (
    History,
    HistoryBuilder,
    MinimalKBound,
    MultiHistory,
    Operation,
    OpType,
    TraceBuilder,
    VerificationResult,
    find_anomalies,
    minimal_k,
    minimal_k_bound,
    normalize,
    read,
    verify,
    verify_trace,
    write,
)
from .algorithms import (
    verify_1atomic,
    verify_2atomic,
    verify_2atomic_fzf,
    verify_k_atomic_exact,
    verify_weighted_k_atomic,
)
from .engine import Engine, StreamingEngine

#: Single source of truth for the package version: ``pyproject.toml`` reads
#: it via ``[tool.setuptools.dynamic]`` and the CLI exposes it as
#: ``repro --version``.  Bump it here and nowhere else.
__version__ = "1.9.0"

__all__ = [
    "Engine",
    "History",
    "StreamingEngine",
    "HistoryBuilder",
    "MinimalKBound",
    "MultiHistory",
    "Operation",
    "OpType",
    "TraceBuilder",
    "VerificationResult",
    "__version__",
    "find_anomalies",
    "minimal_k",
    "minimal_k_bound",
    "normalize",
    "read",
    "verify",
    "verify_1atomic",
    "verify_2atomic",
    "verify_2atomic_fzf",
    "verify_k_atomic_exact",
    "verify_trace",
    "verify_weighted_k_atomic",
    "write",
]
