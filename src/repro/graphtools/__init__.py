"""Graph tools for the Section VI related-work connection (graph bandwidth)."""

from .bandwidth import (
    bandwidth_at_most,
    bandwidth_lower_bound,
    cluster_graph,
    exact_bandwidth,
    interval_graph,
)

__all__ = [
    "bandwidth_at_most",
    "bandwidth_lower_bound",
    "cluster_graph",
    "exact_bandwidth",
    "interval_graph",
]
