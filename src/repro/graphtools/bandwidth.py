"""Graph-bandwidth tools (the related-work connection of Section VI).

The paper relates k-AV to the graph bandwidth problem (GBW): arrange the
vertices of a graph on a line so that adjacent vertices are at most ``k``
apart.  GBW is NP-complete in general, polynomial for fixed ``k`` (Saxe), and
efficiently solvable on interval graphs (Kleitman–Vohra) — but, as Section VI
notes, neither special case transfers to k-AV.  This module provides the
machinery needed to explore that relationship empirically:

* :func:`cluster_graph` — the natural graph associated with a history
  (vertices are operations, edges join each write to its dictated reads);
* :func:`interval_graph` — the interval graph of operation overlap;
* :func:`bandwidth_at_most` / :func:`exact_bandwidth` — exact bandwidth
  decision/optimisation by branch-and-bound (small graphs only; the problem
  is NP-complete, which is rather the point);
* :func:`bandwidth_lower_bound` — the classic density lower bound.

The E10 ablation benchmark uses these to show that a small bandwidth of the
cluster graph neither implies nor is implied by a small k for the history.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.history import History

__all__ = [
    "cluster_graph",
    "interval_graph",
    "bandwidth_lower_bound",
    "bandwidth_at_most",
    "exact_bandwidth",
]


def cluster_graph(history: History) -> "nx.Graph":
    """The write/dictated-read graph of a history.

    Vertices are operation ids; an edge joins every write to each of its
    dictated reads.  In a k-atomic total order, the endpoints of each edge are
    separated by at most ``k - 1`` *writes* — which resembles, but is not the
    same as, a bandwidth-``k`` layout (bandwidth counts all vertices).
    """
    graph = nx.Graph()
    for op in history.operations:
        graph.add_node(op.op_id, kind="write" if op.is_write else "read", value=op.value)
    for w in history.writes:
        for r in history.dictated_reads(w):
            graph.add_edge(w.op_id, r.op_id)
    return graph


def interval_graph(history: History) -> "nx.Graph":
    """The interval graph of operation overlap (vertices = operations)."""
    graph = nx.Graph()
    ops = list(history.operations)
    for op in ops:
        graph.add_node(op.op_id)
    for i, a in enumerate(ops):
        for b in ops[i + 1:]:
            if a.concurrent_with(b):
                graph.add_edge(a.op_id, b.op_id)
    return graph


def bandwidth_lower_bound(graph: "nx.Graph") -> int:
    """The density lower bound ``max over connected subgraphs of (n-1)/diameter``.

    We use the standard cheap variant: ``ceil((degree_max) / 2)`` combined with
    the connected-component size bound, which is enough to prune the
    branch-and-bound on the small graphs used in the ablation.
    """
    if graph.number_of_nodes() <= 1:
        return 0
    max_degree = max(dict(graph.degree()).values()) if graph.number_of_edges() else 0
    bound = (max_degree + 1) // 2
    return max(1 if graph.number_of_edges() else 0, bound)


def _extends_ok(layout: List, position: Dict, graph: "nx.Graph", k: int, remaining: int) -> bool:
    """Prune: a placed vertex with unplaced neighbours must still have room."""
    n_placed = len(layout)
    for idx, vertex in enumerate(layout):
        slack = k - (n_placed - 1 - idx)
        if slack < 0:
            unplaced_neighbours = any(nb not in position for nb in graph.neighbors(vertex))
            if unplaced_neighbours:
                return False
    return True


def bandwidth_at_most(graph: "nx.Graph", k: int) -> Optional[List]:
    """Decide whether the graph has bandwidth at most ``k``.

    Returns a linear layout (list of vertices) witnessing bandwidth ``<= k``
    or ``None``.  Exponential-time branch and bound; intended for the small
    graphs of the ablation experiments and the test-suite.
    """
    if k < 0:
        return None
    vertices = list(graph.nodes())
    n = len(vertices)
    if n == 0:
        return []
    position: Dict = {}
    layout: List = []
    failed = set()

    def place(depth: int) -> bool:
        if depth == n:
            return True
        state = frozenset(layout[-(k + 1):]) if k else frozenset(layout[-1:])
        key = (depth, frozenset(position), )
        if key in failed:
            return False
        for v in vertices:
            if v in position:
                continue
            ok = True
            for nb in graph.neighbors(v):
                if nb in position and depth - position[nb] > k:
                    ok = False
                    break
            if not ok:
                continue
            # Any already-placed vertex that still has unplaced neighbours must
            # be within distance k of the *next* position as well.
            for placed_v, placed_pos in position.items():
                if depth - placed_pos >= k:
                    if any(nb not in position and nb != v for nb in graph.neighbors(placed_v)):
                        ok = False
                        break
            if not ok:
                continue
            position[v] = depth
            layout.append(v)
            if place(depth + 1):
                return True
            layout.pop()
            del position[v]
        failed.add(key)
        return False

    if place(0):
        return list(layout)
    return None


def exact_bandwidth(graph: "nx.Graph") -> int:
    """The exact bandwidth of a (small) graph, by increasing-``k`` search."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0
    k = bandwidth_lower_bound(graph)
    while k < n:
        if bandwidth_at_most(graph, k) is not None:
            return k
        k += 1
    return n - 1
