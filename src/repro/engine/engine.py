"""The sharded verification engine.

Pipeline (each stage pluggable):

1. **Ingestion** — the trace arrives as a :class:`~repro.core.history.MultiHistory`,
   a streaming :class:`~repro.core.builder.TraceBuilder`, or a raw iterable of
   operations; it is normalised into per-register work without building any
   global index.
2. **Sharding** — a :mod:`partitioner <repro.engine.partition>` groups
   registers into shard tasks.
3. **Execution** — an :mod:`executor <repro.engine.executors>` runs the shard
   tasks serially, on a thread pool, or on a process pool; each shard verifies
   its registers with the unified :func:`repro.core.api.verify` entry point.
4. **Aggregation** — shard results stream back in completion order and are
   merged into a :class:`~repro.analysis.report.TraceVerificationReport`,
   optionally short-circuiting on the first failing register.

Correctness rests on the paper's locality theorem (Section II-B): a
multi-register trace is k-atomic iff every per-register projection is, so the
per-register verdicts are independent and any partitioning/scheduling of
registers yields the same aggregate answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

from ..core.builder import TraceBuilder
from ..core.errors import VerificationError
from ..core.history import History, MultiHistory
from ..core.operation import Operation
from ..core.result import VerificationResult
from ..analysis.report import ShardStats, TraceVerificationReport
from .executors import ShardExecutor, default_jobs, get_executor
from .partition import Partitioner, get_partitioner
from .tiering import TierDecision, TierPolicy, TierStats, get_tier_policy

__all__ = [
    "ShardTask",
    "EncodedShardTask",
    "RcolShardTask",
    "ShardOutcome",
    "Engine",
    "DEFAULT_MAX_EXACT_OPS",
]

# Re-exported so the engine can be configured without importing core.api.
from ..core.api import DEFAULT_MAX_EXACT_OPS
from .codec import decode_shard_items, encode_shard_items

TraceLike = Union[MultiHistory, TraceBuilder, Iterable[Operation]]


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: a group of per-register histories plus verify options.

    Everything here pickles by value — algorithm dispatch crosses the process
    boundary as a *name*, resolved against the registry inside the worker —
    so the same task object serves all executors.
    """

    shard_id: int
    items: Tuple[Tuple[Hashable, History], ...]
    k: int
    algorithm: str
    preprocess: bool
    max_exact_ops: int
    columnar: Optional[bool] = None
    kernel: Optional[str] = None
    tier: Optional[TierPolicy] = None

    @property
    def num_ops(self) -> int:
        """Total operations across the shard's registers."""
        return sum(len(h) for _, h in self.items)

    def encode(self) -> "EncodedShardTask":
        """Re-pack the shard with its histories as compact column buffers."""
        return EncodedShardTask(
            shard_id=self.shard_id,
            payload=encode_shard_items(self.items),
            num_ops=self.num_ops,
            k=self.k,
            algorithm=self.algorithm,
            preprocess=self.preprocess,
            max_exact_ops=self.max_exact_ops,
            columnar=self.columnar,
            kernel=self.kernel,
            tier=self.tier,
        )


@dataclass(frozen=True)
class EncodedShardTask:
    """A shard task whose histories travel as compact column buffers.

    Created by :meth:`ShardTask.encode` for executors that cross the process
    boundary: the payload pickles to a fraction of the object graph's size
    (raw timestamp/flag/id columns plus small interning tables instead of one
    pickled dataclass per operation) and decodes through the trusted
    constructors, skipping re-validation of invariants that held on the
    submitting side.
    """

    shard_id: int
    payload: bytes
    num_ops: int
    k: int
    algorithm: str
    preprocess: bool
    max_exact_ops: int
    columnar: Optional[bool] = None
    kernel: Optional[str] = None
    tier: Optional[TierPolicy] = None

    def decode_items(self) -> Tuple[Tuple[Hashable, History], ...]:
        """Rebuild the ``(key, History)`` pairs inside the worker."""
        return tuple(decode_shard_items(self.payload))


@dataclass(frozen=True)
class RcolShardTask:
    """A shard of registers to verify straight from an ``.rcol`` trace file.

    Instead of carrying histories (or column buffers), the task carries the
    *file path* plus the register keys assigned to this shard: each worker
    memory-maps the file independently and ingests only its own registers'
    columns, so a multi-million-operation trace is verified without any
    process ever materialising it — the out-of-core path.  Pickles trivially
    (a path and a key tuple), so process-pool executors need no IPC encoding.
    """

    shard_id: int
    path: str
    keys: Tuple[Hashable, ...]
    num_ops: int
    k: int
    algorithm: str
    preprocess: bool
    max_exact_ops: int
    columnar: Optional[bool] = None
    kernel: Optional[str] = None
    tier: Optional[TierPolicy] = None

    def effective_kernel(self) -> Optional[str]:
        """The kernel request to forward, folding in the legacy flag."""
        if self.kernel is not None or self.columnar is None:
            return self.kernel
        return "columnar" if self.columnar else "object"


@dataclass(frozen=True)
class ShardOutcome:
    """The results of one executed shard, with timing."""

    shard_id: int
    results: Tuple[Tuple[Hashable, VerificationResult], ...]
    num_ops: int
    elapsed_s: float
    #: Per-register tier routes when the shard ran under a tier policy.
    tier_decisions: Tuple[TierDecision, ...] = ()

    @property
    def has_failure(self) -> bool:
        """True iff any register in the shard failed verification."""
        return any(not r for _, r in self.results)


def _run_rcol_shard(task: RcolShardTask) -> ShardOutcome:
    """Verify one :class:`RcolShardTask` by lazy per-register ingestion."""
    from ..core import vector
    from ..io.rcol import RcolFile

    t0 = time.perf_counter()
    kernel = task.effective_kernel()
    results = []
    decisions: List[TierDecision] = []
    with RcolFile(task.path) as rf:
        for key in task.keys:
            col = rf.load_columnar(key)
            if task.tier is not None and task.tier.active:
                result, decision = task.tier.verify_columnar_with_decision(
                    col,
                    task.k,
                    key=str(key),
                    algorithm=task.algorithm,
                    preprocess=task.preprocess,
                    max_exact_ops=task.max_exact_ops,
                    kernel=kernel,
                    decode_witness=False,
                )
                decisions.append(decision)
            else:
                result = vector.verify_columnar(
                    col,
                    task.k,
                    algorithm=task.algorithm,
                    preprocess=task.preprocess,
                    max_exact_ops=task.max_exact_ops,
                    kernel=kernel,
                    decode_witness=False,
                )
            results.append((key, result))
    return ShardOutcome(
        shard_id=task.shard_id,
        results=tuple(results),
        num_ops=task.num_ops,
        elapsed_s=time.perf_counter() - t0,
        tier_decisions=tuple(decisions),
    )


def run_shard(
    task: Union[ShardTask, EncodedShardTask, RcolShardTask]
) -> ShardOutcome:
    """Verify every register of one shard (module-level: picklable).

    Worker processes receive this function by qualified name and the task by
    value; the algorithm is resolved from the registry *here*, inside the
    worker, never shipped as a function object.  Column-encoded tasks are
    decoded here too, on the worker side of the process boundary, and
    ``.rcol`` shards are memory-mapped here, inside the worker that owns them.
    """
    from ..core.api import verify  # local import keeps worker start-up lean

    if isinstance(task, RcolShardTask):
        return _run_rcol_shard(task)
    t0 = time.perf_counter()
    items = task.decode_items() if isinstance(task, EncodedShardTask) else task.items
    results: List[Tuple[Hashable, VerificationResult]] = []
    decisions: List[TierDecision] = []
    for key, history in items:
        if task.tier is not None and task.tier.active:
            result, decision = task.tier.verify_with_decision(
                history,
                task.k,
                key=str(key),
                algorithm=task.algorithm,
                preprocess=task.preprocess,
                max_exact_ops=task.max_exact_ops,
                columnar=task.columnar,
                kernel=task.kernel,
            )
            decisions.append(decision)
        else:
            result = verify(
                history,
                task.k,
                algorithm=task.algorithm,
                preprocess=task.preprocess,
                max_exact_ops=task.max_exact_ops,
                columnar=task.columnar,
                kernel=task.kernel,
            )
        results.append((key, result))
    return ShardOutcome(
        shard_id=task.shard_id,
        results=tuple(results),
        num_ops=task.num_ops,
        elapsed_s=time.perf_counter() - t0,
        tier_decisions=tuple(decisions),
    )


class Engine:
    """Sharded, parallel k-atomicity verification of multi-register traces.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"threads"`` or ``"processes"`` — or a
        :class:`~repro.engine.executors.ShardExecutor` instance.
    jobs:
        Worker count for pool executors (default: available CPUs; always 1
        for the serial executor unless given explicitly).
    partitioner:
        ``"hash"``, ``"round-robin"`` or ``"size-balanced"`` (default) — or a
        :class:`~repro.engine.partition.Partitioner` instance.
    shards_per_job:
        Shards created per worker.  Values above 1 (default 2) let completion
        order smooth out imbalance that the partitioner could not predict.
    algorithm, preprocess, max_exact_ops:
        Forwarded to :func:`repro.core.api.verify` for every register.
    columnar:
        Forwarded to :func:`repro.core.api.verify`: force (``True``), forbid
        (``False``) or defer to the process default (``None``) on the
        columnar kernels.  Carried inside the shard task so worker processes
        honour it too.
    kernel:
        Kernel tier (``"object"``, ``"columnar"``, ``"numpy"``) forwarded to
        :func:`repro.core.api.verify`; ``None`` picks the fastest enabled
        tier.  Carried inside the shard task like ``columnar``.
    tier:
        Adaptive tier policy (:mod:`repro.engine.tiering`): ``None`` or
        ``"exact"`` (default, every register pays the authoritative
        checker), ``"screen"`` (cheap-ladder screening with sound
        escalation) or ``"auto"`` (adds feature gating and cost-model knob
        picks), or a :class:`~repro.engine.tiering.TierPolicy` instance.
        Unknown names raise.  Escalation decisions surface in the report's
        ``tier_stats``/``tier_decisions`` so skipped exact checks are never
        silent.
    compact_ipc:
        When true (default), executors that cross the process boundary ship
        shards as compact column buffers (:mod:`repro.engine.codec`) instead
        of pickled operation object graphs.  In-process executors always use
        the histories directly.
    fail_fast:
        When true, stop dispatching after the first shard containing a
        failing register; unverified registers are reported as skipped.

    Example
    -------
    >>> from repro import Engine
    >>> from repro.core.builder import TraceBuilder
    >>> from repro.core.operation import read, write
    >>> builder = TraceBuilder([
    ...     write("a", 0.0, 1.0, key="x"), read("a", 2.0, 3.0, key="x"),
    ...     write("b", 0.0, 1.0, key="y"), read("b", 2.0, 3.0, key="y"),
    ... ])
    >>> report = Engine().verify_trace(builder, 1)
    >>> report.is_k_atomic, sorted(report.results)
    (True, ['x', 'y'])
    """

    def __init__(
        self,
        *,
        executor: Union[str, ShardExecutor] = "serial",
        jobs: Optional[int] = None,
        partitioner: Union[str, Partitioner] = "size-balanced",
        shards_per_job: int = 2,
        algorithm: str = "auto",
        preprocess: bool = True,
        max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
        columnar: Optional[bool] = None,
        kernel: Optional[str] = None,
        tier: "Union[None, str, TierPolicy]" = None,
        compact_ipc: bool = True,
        fail_fast: bool = False,
    ):
        self.executor = get_executor(executor) if isinstance(executor, str) else executor
        self.partitioner = (
            get_partitioner(partitioner) if isinstance(partitioner, str) else partitioner
        )
        if jobs is not None and jobs < 1:
            raise VerificationError(f"jobs must be >= 1, got {jobs}")
        if shards_per_job < 1:
            raise VerificationError(f"shards_per_job must be >= 1, got {shards_per_job}")
        self.jobs = jobs if jobs is not None else (
            1 if self.executor.name == "serial" else default_jobs()
        )
        self.shards_per_job = shards_per_job
        self.algorithm = algorithm
        self.preprocess = preprocess
        self.max_exact_ops = max_exact_ops
        self.columnar = columnar
        self.kernel = kernel
        self.tier = get_tier_policy(tier)  # raises on unknown names
        self.tier_name = self.tier.name if self.tier is not None else "exact"
        self.compact_ipc = compact_ipc
        self.fail_fast = fail_fast

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @staticmethod
    def _as_register_histories(trace: TraceLike) -> "List[Tuple[Hashable, History]]":
        """Normalise any accepted trace shape into ``(key, History)`` pairs."""
        if isinstance(trace, MultiHistory):
            return [(key, trace[key]) for key in trace.keys()]
        if isinstance(trace, History):
            return [(trace.key, trace)]
        if not isinstance(trace, TraceBuilder):
            trace = TraceBuilder(trace)  # raw operation stream
        return [(key, trace.history(key)) for key in trace.keys()]

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def plan(self, registers: "List[Tuple[Hashable, History]]", k: int) -> List[ShardTask]:
        """Partition registers into shard tasks (exposed for inspection)."""
        sized = [(key, len(history)) for key, history in registers]
        num_shards = max(1, min(len(sized), self.jobs * self.shards_per_job))
        assignment = self.partitioner.partition(sized, num_shards)
        by_key = dict(registers)
        tasks: List[ShardTask] = []
        for keys in assignment:
            if not keys:
                continue
            tasks.append(
                ShardTask(
                    shard_id=len(tasks),
                    items=tuple((key, by_key[key]) for key in keys),
                    k=k,
                    algorithm=self.algorithm,
                    preprocess=self.preprocess,
                    max_exact_ops=self.max_exact_ops,
                    columnar=self.columnar,
                    kernel=self.kernel,
                    tier=self.tier,
                )
            )
        return tasks

    # ------------------------------------------------------------------
    # Execution + aggregation
    # ------------------------------------------------------------------
    def verify_file(
        self, path, k: int, *, fmt: Optional[str] = None
    ) -> TraceVerificationReport:
        """Verify a trace file in any registered format.

        ``fmt`` names a format from the registry (``"jsonl"``, ``"csv"``,
        ``"jepsen"``, ``"porcupine"``, ...); ``None`` sniffs the extension.
        Row formats are streamed straight into per-register buckets — foreign
        event histories included — and verified like any other trace.
        Memory-mapped ``.rcol`` traces take the out-of-core route instead:
        shard tasks carry only the path and register keys, and workers map
        their registers' columns lazily (no full materialisation).
        """
        from ..io.registry import resolve_format, stream_trace  # io builds on the engine's inputs

        if resolve_format(path, fmt).name == "rcol":
            return self._verify_rcol_file(path, k)
        return self.verify_trace(TraceBuilder(stream_trace(path, fmt)), k)

    def _verify_rcol_file(self, path, k: int) -> TraceVerificationReport:
        """Verify an ``.rcol`` trace out-of-core: shards carry the file path
        and register keys, and each worker memory-maps only its share."""
        from ..io.rcol import RcolFile

        rf = RcolFile(path)
        sized = rf.register_sizes()
        rf.close()
        key_order = [key for key, _ in sized]
        size_of = dict(sized)
        num_shards = max(1, min(len(sized), self.jobs * self.shards_per_job))
        assignment = self.partitioner.partition(sized, num_shards) if sized else []
        tasks: List[RcolShardTask] = []
        for keys in assignment:
            if not keys:
                continue
            tasks.append(
                RcolShardTask(
                    shard_id=len(tasks),
                    path=str(path),
                    keys=tuple(keys),
                    num_ops=sum(size_of[key] for key in keys),
                    k=k,
                    algorithm=self.algorithm,
                    preprocess=self.preprocess,
                    max_exact_ops=self.max_exact_ops,
                    columnar=self.columnar,
                    kernel=self.kernel,
                    tier=self.tier,
                )
            )
        return self._execute(tasks, key_order, k)

    def verify_trace(self, trace: TraceLike, k: int) -> TraceVerificationReport:
        """Verify every register of ``trace`` and aggregate the results."""
        registers = self._as_register_histories(trace)
        key_order = [key for key, _ in registers]
        tasks: List[Union[ShardTask, EncodedShardTask]] = list(self.plan(registers, k))
        if self.compact_ipc and self.executor.crosses_process_boundary:
            tasks = [task.encode() for task in tasks]
        return self._execute(tasks, key_order, k)

    def _execute(self, tasks, key_order, k: int) -> TraceVerificationReport:
        """Run planned shard tasks and merge their outcomes into a report."""
        merged: Dict[Hashable, VerificationResult] = {}
        stats: List[ShardStats] = []
        tier_stats = TierStats() if self.tier is not None else None
        tier_decisions: Dict[str, TierDecision] = {}
        t0 = time.perf_counter()
        outcome_stream = self.executor.run(run_shard, tasks, self.jobs)
        try:
            for outcome in outcome_stream:
                merged.update(outcome.results)
                stats.append(
                    ShardStats(
                        shard_id=outcome.shard_id,
                        num_registers=len(outcome.results),
                        num_ops=outcome.num_ops,
                        elapsed_s=outcome.elapsed_s,
                    )
                )
                if tier_stats is not None:
                    for decision in outcome.tier_decisions:
                        tier_stats.record(decision)
                        tier_decisions[decision.key] = decision
                if self.fail_fast and outcome.has_failure:
                    break
        finally:
            outcome_stream.close()
        elapsed = time.perf_counter() - t0

        results = {key: merged[key] for key in key_order if key in merged}
        skipped = tuple(key for key in key_order if key not in merged)
        return TraceVerificationReport(
            k=k,
            results=results,
            executor=self.executor.name,
            partitioner=self.partitioner.name,
            jobs=self.jobs,
            num_shards=len(tasks),
            shard_stats=tuple(stats),
            elapsed_s=elapsed,
            skipped_keys=skipped,
            tier=self.tier_name,
            tier_stats=tier_stats.to_dict() if tier_stats is not None else {},
            tier_decisions=tier_decisions,
        )
