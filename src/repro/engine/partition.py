"""Register-to-shard partitioning strategies.

The locality theorem (Section II-B) makes the register the natural unit of
parallel verification: per-register histories are verified independently and
a trace's verdict is the conjunction of its registers' verdicts.  A
*partitioner* groups registers into shards — the work units handed to an
executor — trading off balance, determinism and placement stability:

* ``hash`` — stable hashing of the register key (CRC-32 of its ``repr``):
  for a *fixed shard count*, a register's placement depends only on its own
  key, never on what else is in the trace (note the engine derives the shard
  count from ``jobs`` and the register count, so pin those — or call
  :meth:`HashPartitioner.shard_of` directly — when placement must be stable
  across runs).
* ``round-robin`` — registers are dealt to shards in first-appearance order;
  preserves the seed verification order inside each shard and is the default
  for the serial executor.
* ``size-balanced`` — greedy longest-processing-time assignment by operation
  count, which minimises the makespan when register sizes are skewed (e.g.
  Zipfian workloads, where the hottest register dominates).

All partitioners are deterministic: no ``PYTHONHASHSEED`` dependence, no
randomness.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Dict, Hashable, List, Sequence, Tuple

from ..core.errors import VerificationError

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RoundRobinPartitioner",
    "SizeBalancedPartitioner",
    "PARTITIONERS",
    "get_partitioner",
]


class Partitioner:
    """Base class: assigns register keys to ``num_shards`` shards."""

    #: Registry name; subclasses override.
    name = "base"

    def partition(
        self, sized_keys: Sequence[Tuple[Hashable, int]], num_shards: int
    ) -> List[List[Hashable]]:
        """Group registers into at most ``num_shards`` shards.

        Parameters
        ----------
        sized_keys:
            ``(key, operation_count)`` pairs in first-appearance order.
        num_shards:
            Upper bound on the number of shards; empty shards are dropped by
            the caller, so fewer may be used.

        Returns
        -------
        A list of ``num_shards`` key lists (some possibly empty).
        """
        raise NotImplementedError

    @staticmethod
    def _check(num_shards: int) -> None:
        if num_shards < 1:
            raise VerificationError(f"num_shards must be >= 1, got {num_shards}")


class HashPartitioner(Partitioner):
    """Key-determined placement: ``crc32(repr(key)) % num_shards``."""

    name = "hash"

    @staticmethod
    def shard_of(key: Hashable, num_shards: int) -> int:
        """The shard index of ``key`` — stable across runs and processes."""
        return zlib.crc32(repr(key).encode("utf-8")) % num_shards

    def partition(self, sized_keys, num_shards):
        self._check(num_shards)
        shards: List[List[Hashable]] = [[] for _ in range(num_shards)]
        for key, _size in sized_keys:
            shards[self.shard_of(key, num_shards)].append(key)
        return shards


class RoundRobinPartitioner(Partitioner):
    """Deal registers to shards in first-appearance order."""

    name = "round-robin"

    def partition(self, sized_keys, num_shards):
        self._check(num_shards)
        shards: List[List[Hashable]] = [[] for _ in range(num_shards)]
        for i, (key, _size) in enumerate(sized_keys):
            shards[i % num_shards].append(key)
        return shards


class SizeBalancedPartitioner(Partitioner):
    """Greedy LPT bin packing on operation counts.

    Registers are assigned largest-first to the currently least-loaded shard,
    the classic 4/3-approximation to minimum makespan.  Ties (equal sizes,
    equal loads) break on first-appearance order, keeping the assignment
    deterministic.
    """

    name = "size-balanced"

    def partition(self, sized_keys, num_shards):
        self._check(num_shards)
        shards: List[List[Hashable]] = [[] for _ in range(num_shards)]
        # (size descending, appearance order ascending) — deterministic LPT.
        order = sorted(
            range(len(sized_keys)), key=lambda i: (-sized_keys[i][1], i)
        )
        heap: List[Tuple[int, int]] = [(0, s) for s in range(num_shards)]
        heapq.heapify(heap)
        for i in order:
            key, size = sized_keys[i]
            load, shard = heapq.heappop(heap)
            shards[shard].append(key)
            heapq.heappush(heap, (load + size, shard))
        return shards


PARTITIONERS: Dict[str, Partitioner] = {
    p.name: p for p in (HashPartitioner(), RoundRobinPartitioner(), SizeBalancedPartitioner())
}


def get_partitioner(name: str) -> Partitioner:
    """Look up a partitioner by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in PARTITIONERS:
        raise VerificationError(
            f"unknown partitioner {name!r}; available: {', '.join(sorted(PARTITIONERS))}"
        )
    return PARTITIONERS[key]
