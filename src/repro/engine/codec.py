"""Compact binary codec for shard payloads crossing the process boundary.

The process-pool executor used to pickle whole ``ShardTask`` object graphs:
every :class:`~repro.core.operation.Operation` became a pickled dataclass
(type tag, per-field entries, memo bookkeeping), costing well over a hundred
bytes per operation and a lot of pickler time on both sides.

This codec ships *columns* instead.  Each register history is converted to
its columnar encoding (:meth:`~repro.core.columnar.ColumnarHistory.to_columns`
— raw ``array`` buffers plus the small interning side tables) and the whole
shard is pickled as a flat list of those tuples: roughly 40–50 bytes per
operation, with the per-operation Python object overhead gone entirely.  The
worker rebuilds each history through the trusted constructors — skipping
re-validation of invariants that held when the columns were produced — and
the decoded history arrives with its columnar encoding already cached, so the
verifier's fast path starts without re-encoding.
"""

from __future__ import annotations

import pickle
from typing import Hashable, List, Sequence, Tuple

from ..core.columnar import ColumnarHistory, columnar_of
from ..core.history import History

__all__ = ["encode_shard_items", "decode_shard_items"]

#: Bump when the column layout changes incompatibly.
_CODEC_VERSION = 1


def encode_shard_items(
    items: Sequence[Tuple[Hashable, History]]
) -> bytes:
    """Serialise ``(key, History)`` pairs as compact column buffers."""
    payload = [
        (key, columnar_of(history).to_columns()) for key, history in items
    ]
    return pickle.dumps((_CODEC_VERSION, payload), protocol=pickle.HIGHEST_PROTOCOL)


def decode_shard_items(blob: bytes) -> List[Tuple[Hashable, History]]:
    """Rebuild the ``(key, History)`` pairs encoded by :func:`encode_shard_items`.

    Each history comes back with its columnar encoding pre-cached, so the
    verifiers' fast path needs no re-encoding inside the worker.
    """
    version, payload = pickle.loads(blob)
    if version != _CODEC_VERSION:
        raise ValueError(
            f"unsupported shard codec version {version!r} (expected {_CODEC_VERSION})"
        )
    return [
        (key, ColumnarHistory.from_columns(columns).to_history())
        for key, columns in payload
    ]
