"""Compact binary codec for shard payloads crossing the process boundary.

The process-pool executor used to pickle whole ``ShardTask`` object graphs:
every :class:`~repro.core.operation.Operation` became a pickled dataclass
(type tag, per-field entries, memo bookkeeping), costing well over a hundred
bytes per operation and a lot of pickler time on both sides.

This codec ships *columns* instead.  Each register history is converted to
its columnar encoding (:meth:`~repro.core.columnar.ColumnarHistory.to_columns`
— raw ``array`` buffers plus the small interning side tables) and the whole
shard is pickled as a flat list of those tuples: roughly 40–50 bytes per
operation, with the per-operation Python object overhead gone entirely.  The
worker rebuilds each history through the trusted constructors — skipping
re-validation of invariants that held when the columns were produced — and
the decoded history arrives with its columnar encoding already cached, so the
verifier's fast path starts without re-encoding.
"""

from __future__ import annotations

import pickle
from array import array
from typing import Hashable, List, Sequence, Tuple

from ..core.columnar import ColumnarHistory, columnar_of
from ..core.history import History
from ..core.operation import Operation, OpType, trusted_operation

__all__ = [
    "encode_shard_items",
    "decode_shard_items",
    "encode_feed_batches",
    "decode_feed_batches",
]

#: Bump when the column layout changes incompatibly.
_CODEC_VERSION = 1

#: Separate version for the stream-order feed-batch layout below.
_BATCH_CODEC_VERSION = 1


def encode_shard_items(
    items: Sequence[Tuple[Hashable, History]]
) -> bytes:
    """Serialise ``(key, History)`` pairs as compact column buffers."""
    payload = [
        (key, columnar_of(history).to_columns()) for key, history in items
    ]
    return pickle.dumps((_CODEC_VERSION, payload), protocol=pickle.HIGHEST_PROTOCOL)


def decode_shard_items(blob: bytes) -> List[Tuple[Hashable, History]]:
    """Rebuild the ``(key, History)`` pairs encoded by :func:`encode_shard_items`.

    Each history comes back with its columnar encoding pre-cached, so the
    verifiers' fast path needs no re-encoding inside the worker.
    """
    version, payload = pickle.loads(blob)
    if version != _CODEC_VERSION:
        raise ValueError(
            f"unsupported shard codec version {version!r} (expected {_CODEC_VERSION})"
        )
    return [
        (key, ColumnarHistory.from_columns(columns).to_history())
        for key, columns in payload
    ]


# ----------------------------------------------------------------------
# Feed batches: stream-order operation sequences for the worker pool
# ----------------------------------------------------------------------
# The shard-item codec above ships *whole register histories* in canonical
# (start, finish, id) order — right for batch shard tasks, wrong for the
# audit pool, whose incremental checkers must see each register's operations
# in *stream* order with their original op ids (verdict parity with the
# single-process path is id- and order-sensitive).  A feed batch therefore
# keeps the operations exactly as fed and columnarises them positionally:
# type flags, timestamp arrays, id arrays, interned values/clients, with the
# uniform columns (all-1 weights, no clients, the batch-wide register key)
# collapsed to single values.  Same wire economics as the shard codec
# (~35-40 B/op), no canonicalisation.


def _encode_ops(ops: Sequence[Operation]) -> Tuple:
    is_write = bytearray(len(ops))
    start = array("d")
    finish = array("d")
    op_ids = array("q")
    value_ids = array("i")
    weights = array("q")
    values: List[Hashable] = []
    value_index: dict = {}
    clients: List[Hashable] = []
    client_index: dict = {}
    client_ids = array("i")
    any_client = False
    any_weight = False
    for i, op in enumerate(ops):
        if op.is_write:
            is_write[i] = 1
        start.append(op.start)
        finish.append(op.finish)
        op_ids.append(op.op_id)
        weights.append(op.weight)
        if op.weight != 1:
            any_weight = True
        value_id = value_index.get(op.value)
        if value_id is None:
            value_id = value_index[op.value] = len(values)
            values.append(op.value)
        value_ids.append(value_id)
        if op.client is None:
            client_ids.append(-1)
        else:
            any_client = True
            client_id = client_index.get(op.client)
            if client_id is None:
                client_id = client_index[op.client] = len(clients)
                clients.append(op.client)
            client_ids.append(client_id)
    return (
        len(ops),
        bytes(is_write),
        start.tobytes(),
        finish.tobytes(),
        op_ids.tobytes(),
        value_ids.tobytes(),
        values,
        None if not any_client else (client_ids.tobytes(), clients),
        None if not any_weight else weights.tobytes(),
    )


def _decode_ops(columns: Tuple, key: Hashable) -> List[Operation]:
    n, is_write, start_b, finish_b, op_ids_b, value_ids_b, values, client_cols, weights_b = columns
    start = array("d")
    start.frombytes(start_b)
    finish = array("d")
    finish.frombytes(finish_b)
    op_ids = array("q")
    op_ids.frombytes(op_ids_b)
    value_ids = array("i")
    value_ids.frombytes(value_ids_b)
    if client_cols is not None:
        client_ids = array("i")
        client_ids.frombytes(client_cols[0])
        clients = client_cols[1]
    if weights_b is not None:
        weights = array("q")
        weights.frombytes(weights_b)
    ops: List[Operation] = []
    for i in range(n):
        client = None
        if client_cols is not None and client_ids[i] >= 0:
            client = clients[client_ids[i]]
        ops.append(
            trusted_operation(
                OpType.WRITE if is_write[i] else OpType.READ,
                values[value_ids[i]],
                start[i],
                finish[i],
                key=key,
                client=client,
                op_id=op_ids[i],
                weight=weights[i] if weights_b is not None else 1,
            )
        )
    return ops


def encode_feed_batches(
    batches: Sequence[Tuple[Hashable, Sequence[Operation]]]
) -> bytes:
    """Serialise ``(register_key, ops-in-stream-order)`` batches compactly.

    Each batch is one register's slice of a closed window, exactly as the
    event loop would have fed it to an in-process checker.  Operation order,
    ids, clients and weights survive the round trip bit-for-bit — the
    contract that makes pooled verdict streams identical to single-process
    ones.  Every operation in a batch must carry the batch's register key
    (the service groups by ``op.key``, so this holds by construction).
    """
    payload = [(key, _encode_ops(ops)) for key, ops in batches]
    return pickle.dumps(
        (_BATCH_CODEC_VERSION, payload), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_feed_batches(blob: bytes) -> List[Tuple[Hashable, List[Operation]]]:
    """Rebuild the ``(register_key, ops)`` batches from :func:`encode_feed_batches`."""
    version, payload = pickle.loads(blob)
    if version != _BATCH_CODEC_VERSION:
        raise ValueError(
            f"unsupported feed-batch codec version {version!r} "
            f"(expected {_BATCH_CODEC_VERSION})"
        )
    return [(key, _decode_ops(columns, key)) for key, columns in payload]
