"""The streaming verification engine (online mode).

Where :class:`repro.engine.engine.Engine` verifies a *complete* trace, the
streaming engine verifies an *operation stream*: operations are pumped
through the core windowing machinery (:mod:`repro.core.windows`) and every
closed window produces rolling per-register verdicts, merged into a
:class:`~repro.analysis.report.StreamVerificationReport` timeline.  Verdicts
exist *while the stream runs* — the live-audit posture of the paper's
introduction, where an operator watches consistency of a running store rather
than post-processing a finished trace.

Two modes:

* ``"rolling"`` (default) — each register owns a persistent incremental
  checker (:mod:`repro.algorithms.online`).  Window boundaries only set the
  verdict cadence; the final verdicts equal batch verification exactly, and
  memory grows with the stream (the checkers buffer for exactness).
* ``"windowed"`` — each window is verified *independently* with the batch
  engine: operation buffering is bounded by the window size at the price of
  exactness.  YES verdicts cover one window at a time (cross-window
  interleavings are unchecked; use a sliding overlap margin so zones spanning
  a boundary are seen whole by at least one window), while NO verdicts remain
  sound and final because every checked window — reads paired with their
  carried dictating writes — is a dictating-closed sub-history of the full
  trace.  Retained state is the per-register write cache used to pair stale
  reads with their dictating writes, which grows with the number of
  *distinct written values*, not with total stream length.

Both modes demultiplex the stream per register (k-atomicity is local,
Section II-B) and run per-register work through the existing shard executors.
Rolling mode requires a shared-memory executor (``serial`` or ``threads``)
because checker state persists across windows; windowed mode may also use
``processes`` since each window is a self-contained batch job.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..algorithms.online import (
    DEFAULT_CADENCE_GROWTH,
    DEFAULT_CHECK_INTERVAL,
    Checker,
    checker_for,
    restore_checker,
)
from ..core.api import DEFAULT_MAX_EXACT_OPS
from ..core.builder import TraceBuilder
from ..core.errors import VerificationError
from ..core.operation import Operation
from ..core.result import StreamVerdict, VerificationResult
from ..core.windows import Window, WindowAssembler, WindowPolicy
from ..analysis.report import StreamVerificationReport, WindowReport, WindowStats
from ..state.retention import TimelineRetention
from .engine import Engine
from .executors import ShardExecutor, default_jobs, get_executor
from .tiering import TierPolicy, TierStreamState, get_tier_policy

__all__ = ["StreamingEngine", "StreamSession", "DEFAULT_WINDOW"]

#: Default window policy: tumbling, 256 fresh operations per window.
DEFAULT_WINDOW = WindowPolicy.count(256)

#: Distinguishes the spilled-timeline key prefixes of concurrent streams
#: sharing one state store (several sessions in one server process).
_TIMELINE_SEQ = itertools.count()


class _RegisterCarry:
    """Per-register carry state for windowed mode.

    Keeps one write per distinct written value (so reads in later windows can
    be paired with their dictating write — the state that grows with distinct
    values, not stream length) and parks reads that completed before their
    dictating write arrived (a completion-ordered stream can deliver them out
    of dictation order) until the write shows up.
    """

    __slots__ = ("writes", "pending", "ops_admitted")

    def __init__(self) -> None:
        self.writes: Dict[Hashable, Operation] = {}
        self.pending: Dict[Hashable, List[Operation]] = {}
        self.ops_admitted = 0

    def admit(self, op: Operation) -> List[Operation]:
        """Record one fresh operation; returns the ops that became checkable."""
        self.ops_admitted += 1
        if op.is_write:
            self.writes[op.value] = op
            return [op] + self.pending.pop(op.value, [])
        if op.value in self.writes:
            return [op]
        self.pending.setdefault(op.value, []).append(op)
        return []

    @property
    def pending_count(self) -> int:
        return sum(len(reads) for reads in self.pending.values())


class StreamingEngine:
    """Windowed, online k-atomicity verification of operation streams.

    Parameters
    ----------
    window:
        The :class:`~repro.core.windows.WindowPolicy` cutting the stream
        (default: tumbling windows of 256 operations).
    mode:
        ``"rolling"`` (persistent incremental checkers, exact final verdicts)
        or ``"windowed"`` (independent per-window batch verification;
        buffering bounded by the window size, plus a per-register write cache
        that grows with distinct written values).
    algorithm:
        Algorithm selection forwarded to the checkers / the batch engine
        (``"auto"`` or a registry name).
    executor, jobs:
        Per-register work distribution within a window.  Rolling mode accepts
        ``"serial"``/``"threads"``; windowed mode additionally accepts
        ``"processes"``.
    check_interval, cadence_growth:
        Cadence of the incremental checkers' authoritative re-checks
        (rolling mode only; see :mod:`repro.algorithms.online`).
    check_per_window:
        Rolling mode only.  When true (default) every window close forces an
        authoritative re-check of each touched register, so window verdicts
        are exact for the stream so far — the live-monitoring posture, where
        stream arrival dominates cost anyway.  When false, window closes only
        :meth:`~repro.algorithms.online.Checker.peek` at the latest
        cadence-driven verdict (possibly one cadence gap stale), keeping
        total work at the geometric-cadence bound — the high-throughput
        replay posture.  Final verdicts are identical either way.
    max_exact_ops:
        Size guard for the exponential ``k >= 3`` fallback.

    Example
    -------
    >>> from repro.core.windows import WindowPolicy
    >>> from repro.core.operation import read, write
    >>> from repro.engine import StreamingEngine
    >>> ops = [write("a", 0.0, 1.0, key="x"), read("a", 2.0, 3.0, key="x"),
    ...        write("b", 4.0, 5.0, key="x"), read("b", 6.0, 7.0, key="x")]
    >>> engine = StreamingEngine(window=WindowPolicy.count(2))
    >>> report = engine.verify_stream(ops, 1)
    >>> report.num_windows, report.is_k_atomic
    (2, True)
    """

    def __init__(
        self,
        *,
        window: WindowPolicy = DEFAULT_WINDOW,
        mode: str = "rolling",
        algorithm: str = "auto",
        executor: str = "serial",
        jobs: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        cadence_growth: float = DEFAULT_CADENCE_GROWTH,
        check_per_window: bool = True,
        max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
        tier=None,
        state_store=None,
        retain_windows: Optional[int] = None,
    ):
        if mode not in ("rolling", "windowed"):
            raise VerificationError(
                f"streaming mode must be 'rolling' or 'windowed', got {mode!r}"
            )
        if retain_windows is not None and retain_windows < 1:
            raise VerificationError(
                f"retain_windows must be >= 1, got {retain_windows}"
            )
        self.window = window
        self.mode = mode
        self.algorithm = algorithm
        self.executor: ShardExecutor = (
            get_executor(executor) if isinstance(executor, str) else executor
        )
        if mode == "rolling" and self.executor.crosses_process_boundary:
            raise VerificationError(
                "rolling streaming mode keeps checker state in shared memory; "
                "use executor='serial' or 'threads' (or mode='windowed' for "
                "process-based windows)"
            )
        if jobs is not None and jobs < 1:
            raise VerificationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (
            1 if self.executor.name == "serial" else default_jobs()
        )
        self.check_interval = check_interval
        self.cadence_growth = cadence_growth
        self.check_per_window = check_per_window
        self.max_exact_ops = max_exact_ops
        #: Adaptive tier policy (:mod:`repro.engine.tiering`).  In rolling
        #: mode it decides per (register, window) whether the authoritative
        #: ``check_now`` runs or the O(1) ``peek`` screen suffices —
        #: NO-capable windows (checker alarms, anomalous reads, value lag
        #: >= k) always escalate, and ``finish()`` stays authoritative, so
        #: final verdicts are exact either way.  In windowed mode the policy
        #: rides the per-window batch engine.  ``None``/``"exact"`` disables.
        self.tier: Optional[TierPolicy] = get_tier_policy(tier)
        self.tier_name = self.tier.name if self.tier is not None else "exact"
        #: Optional :class:`repro.state.StateStore` + bound: when both are
        #: set, closed-window timelines keep only the ``retain_windows`` most
        #: recent reports hot and spill colder ones to the store, so
        #: long-running ``repro watch`` sessions hold a bounded working set.
        self.state_store = state_store
        self.retain_windows = retain_windows
        self._batch_engine = Engine(
            executor=self.executor,
            jobs=self.jobs,
            algorithm=algorithm,
            max_exact_ops=max_exact_ops,
            tier=self.tier,
        )

    # ------------------------------------------------------------------
    def _new_timeline(self) -> TimelineRetention:
        """A timeline container honouring this engine's retention policy."""
        if self.state_store is not None and self.retain_windows is not None:
            return TimelineRetention(
                self.state_store,
                self.retain_windows,
                prefix=f"stream-{next(_TIMELINE_SEQ)}",
            )
        return TimelineRetention()

    # ------------------------------------------------------------------
    def verify_stream(
        self,
        ops: Iterable[Operation],
        k: int,
        *,
        on_window: Optional[Callable[[WindowReport], None]] = None,
    ) -> StreamVerificationReport:
        """Pump a stream through windows and aggregate rolling verdicts.

        ``on_window`` is invoked with every :class:`WindowReport` the moment
        its window closes — this is the live-consumption hook the ``repro
        watch`` command prints from.  The returned report carries the full
        timeline plus the end-of-stream per-register verdicts.
        """
        if k < 1:
            raise VerificationError(f"k must be a positive integer, got {k!r}")
        t0 = time.perf_counter()
        timeline = self._new_timeline()
        checkers: Dict[Hashable, Checker] = {}
        carries: Dict[Hashable, _RegisterCarry] = {}
        latched: Dict[Hashable, VerificationResult] = {}
        key_order: List[Hashable] = []
        tier_state = (
            TierStreamState(self.tier, k)
            if self.tier is not None and self.mode == "rolling"
            else None
        )

        def handle(window: Window) -> None:
            if self.mode == "rolling":
                report = self._run_rolling_window(
                    window, k, checkers, key_order, tier_state=tier_state
                )
            else:
                report = self._run_windowed_window(window, k, carries, latched, key_order)
            timeline.append(report)
            if on_window is not None:
                on_window(report)

        assembler = WindowAssembler(self.window)
        for op in ops:
            window = assembler.feed(op)
            if window is not None:
                handle(window)
        tail = assembler.flush()
        if tail is not None:
            handle(tail)

        if self.mode == "rolling":
            results = {key: checkers[key].finish() for key in key_order}
        else:
            results = self._finalize_windowed(k, carries, latched, key_order, len(timeline))
        return StreamVerificationReport(
            k=k,
            mode=self.mode,
            window=self.window.describe(),
            results=results,
            timeline=tuple(timeline),
            executor=self.executor.name,
            jobs=self.jobs,
            elapsed_s=time.perf_counter() - t0,
            tier=self.tier_name,
        )

    def verify_file(
        self,
        path,
        k: int,
        *,
        fmt: Optional[str] = None,
        on_window: Optional[Callable[[WindowReport], None]] = None,
    ) -> StreamVerificationReport:
        """Stream a trace file in any registered format through the windows.

        The online counterpart of :meth:`Engine.verify_file`: ``fmt`` names a
        format from :mod:`repro.io.registry` (``None`` sniffs the extension),
        and the file's operations are pumped through :meth:`verify_stream`.
        """
        from ..io.registry import stream_trace

        return self.verify_stream(stream_trace(path, fmt), k, on_window=on_window)

    # ------------------------------------------------------------------
    # Sessions: push-driven, checkpointable streams
    # ------------------------------------------------------------------
    def open_session(self, k: int) -> "StreamSession":
        """Open a push-driven audit session over this engine's configuration.

        Where :meth:`verify_stream` *pulls* a complete iterable, a session is
        *pushed* one operation at a time by a long-lived caller (the audit
        service multiplexes many of them in one process) and can be
        checkpointed to disk mid-stream via :meth:`StreamSession.snapshot`.
        Rolling mode only: sessions exist for exactness and resumability,
        both properties of the persistent incremental checkers.
        """
        if self.mode != "rolling":
            raise VerificationError(
                "sessions require mode='rolling' (windowed mode keeps no "
                "resumable checker state)"
            )
        if k < 1:
            raise VerificationError(f"k must be a positive integer, got {k!r}")
        return StreamSession(self, k)

    def resume_session(self, state: dict) -> "StreamSession":
        """Rebuild a session from a :meth:`StreamSession.snapshot` mapping."""
        session = self.open_session(state["k"])
        session.restore(state)
        return session

    # ------------------------------------------------------------------
    # Rolling mode: persistent incremental checkers
    # ------------------------------------------------------------------
    def _make_checker(self, k: int) -> Checker:
        return checker_for(
            k,
            algorithm=self.algorithm,
            check_interval=self.check_interval,
            cadence_growth=self.cadence_growth,
            max_exact_ops=self.max_exact_ops,
        )

    def _run_rolling_window(
        self,
        window: Window,
        k: int,
        checkers: Dict[Hashable, Checker],
        key_order: List[Hashable],
        tier_state: Optional[TierStreamState] = None,
    ) -> WindowReport:
        t0 = time.perf_counter()
        by_key: Dict[Hashable, List[Operation]] = {}
        for op in window.fresh_ops:
            by_key.setdefault(op.key, []).append(op)
        for key in by_key:
            if key not in checkers:
                checkers[key] = self._make_checker(k)
                key_order.append(key)
            if tier_state is not None:
                tier_state._state_for(key)  # materialised on the main thread

        def feed_register(task: Tuple[Hashable, List[Operation]]):
            key, register_ops = task
            checker = checkers[key]
            for op in register_ops:
                checker.feed(op)
            if tier_state is None:
                verdict = (
                    checker.check_now() if self.check_per_window else checker.peek()
                )
                return key, verdict, None, ()
            # Tiered: the O(1) peek is the screen; the tier state decides
            # whether this (register, window) is NO-capable and must pay the
            # authoritative check.  A latched alarm in the peek counts too.
            quick = checker.peek()
            mode, triggers = tier_state.decide(
                key, register_ops, alarmed=not quick.result.is_k_atomic
            )
            verdict = checker.check_now() if mode == "check" else quick
            tier_state.note_verdict(key, verdict.result.is_k_atomic)
            return key, verdict, mode, triggers

        # Each register appears in exactly one task, so pool executors never
        # touch the same checker (or tier entry) from two workers in a window.
        verdicts: Dict[Hashable, StreamVerdict] = {}
        tiers: Dict[Hashable, str] = {}
        escalations: Dict[Hashable, Tuple[str, ...]] = {}
        outcome_stream = self.executor.run(feed_register, list(by_key.items()), self.jobs)
        try:
            for key, verdict, mode, triggers in outcome_stream:
                verdicts[key] = verdict
                if mode is not None:
                    tiers[key] = mode
                    if triggers:
                        escalations[key] = tuple(triggers)
        finally:
            outcome_stream.close()
        ordered = {key: verdicts[key] for key in by_key if key in verdicts}
        return WindowReport(
            stats=WindowStats(
                index=window.index,
                num_ops=window.num_fresh,
                num_registers=len(by_key),
                t_low=window.t_low,
                t_high=window.t_high,
                elapsed_s=time.perf_counter() - t0,
            ),
            verdicts=ordered,
            tiers={key: tiers[key] for key in by_key if key in tiers},
            escalations={
                key: escalations[key] for key in by_key if key in escalations
            },
        )

    # ------------------------------------------------------------------
    # Windowed mode: independent per-window batch verification
    # ------------------------------------------------------------------
    def _run_windowed_window(
        self,
        window: Window,
        k: int,
        carries: Dict[Hashable, _RegisterCarry],
        latched: Dict[Hashable, VerificationResult],
        key_order: List[Hashable],
    ) -> WindowReport:
        t0 = time.perf_counter()
        # Admit fresh operations; collect the checkable ops per register.
        checkable: Dict[Hashable, Dict[int, Operation]] = {}
        for op in window.fresh_ops:
            carry = carries.get(op.key)
            if carry is None:
                carry = carries[op.key] = _RegisterCarry()
                key_order.append(op.key)
            for ready in carry.admit(op):
                checkable.setdefault(op.key, {})[ready.op_id] = ready
        # Replay the overlap margin (already admitted in an earlier window) so
        # boundary-spanning zones are seen whole at least once.
        for op in window.ops[: window.carried]:
            carry = carries.get(op.key)
            if carry is not None and (op.is_write or op.value in carry.writes):
                checkable.setdefault(op.key, {}).setdefault(op.op_id, op)
        # Pair every read with its dictating write so a window never reports a
        # spurious Section II-C anomaly for a write that simply arrived in an
        # earlier window.  The injected writes keep their original timestamps,
        # which makes each checked window a dictating-closed sub-history of
        # the full trace — the property that makes its NO verdicts final.
        builder = TraceBuilder()
        for key, ops_by_id in checkable.items():
            writes_cache = carries[key].writes
            injected: Dict[int, Operation] = dict(ops_by_id)
            for op in ops_by_id.values():
                if op.is_read:
                    write = writes_cache[op.value]
                    injected.setdefault(write.op_id, write)
            builder.extend(injected.values())

        verdicts: Dict[Hashable, StreamVerdict] = {}
        if len(builder):
            report = self._batch_engine.verify_trace(builder, k)
            for key, result in report.results.items():
                final = not result
                if final and key not in latched:
                    latched[key] = result
                # ops_seen is the register's cumulative stream count, matching
                # what rolling-mode checkers report for the same stream.
                verdicts[key] = StreamVerdict(
                    result=result, ops_seen=carries[key].ops_admitted, final=final
                )
        return WindowReport(
            stats=WindowStats(
                index=window.index,
                num_ops=window.num_fresh,
                num_registers=len(verdicts),
                t_low=window.t_low,
                t_high=window.t_high,
                elapsed_s=time.perf_counter() - t0,
            ),
            verdicts=verdicts,
        )

    def _finalize_windowed(
        self,
        k: int,
        carries: Dict[Hashable, _RegisterCarry],
        latched: Dict[Hashable, VerificationResult],
        key_order: List[Hashable],
        num_windows: int,
    ) -> Dict[Hashable, VerificationResult]:
        results: Dict[Hashable, VerificationResult] = {}
        for key in key_order:
            if key in latched:
                results[key] = latched[key]
                continue
            pending = carries[key].pending_count
            if pending:
                results[key] = VerificationResult.no(
                    k,
                    "windowed",
                    reason=f"{pending} reads returned values no write in the "
                    "stream ever assigned (Section II-C anomaly)",
                )
            else:
                results[key] = VerificationResult.yes(
                    k,
                    "windowed",
                    reason=f"every one of {num_windows} windows verified YES "
                    "(windowed approximation: cross-window interleavings are "
                    "not checked; rolling mode gives exact verdicts)",
                )
        return results


class StreamSession:
    """One push-driven, checkpointable rolling-mode audit stream.

    Obtained from :meth:`StreamingEngine.open_session`.  The caller feeds
    operations one at a time; every window the feed closes comes back as a
    :class:`~repro.analysis.report.WindowReport`, and :meth:`finish` returns
    the same :class:`~repro.analysis.report.StreamVerificationReport` a
    :meth:`StreamingEngine.verify_stream` call over the identical stream
    would have produced.

    :meth:`snapshot` captures everything the stream position depends on —
    the open window's buffer, each register's checker state (cadence
    position, monitor indexes, latched verdicts), the closed-window timeline
    — as one picklable mapping, and :meth:`restore` rehydrates it, so a
    session checkpointed at operation *i* and resumed in a fresh process
    emits, for the remaining operations, the *identical* verdict sequence an
    uninterrupted session would have: the state is saved verbatim, never
    approximated by replay.
    """

    def __init__(self, engine: StreamingEngine, k: int):
        self.engine = engine
        self.k = k
        self._assembler = WindowAssembler(engine.window)
        self._checkers: Dict[Hashable, Checker] = {}
        self._key_order: List[Hashable] = []
        self._tier_state = (
            TierStreamState(engine.tier, k) if engine.tier is not None else None
        )
        self._timeline = engine._new_timeline()
        self._ops_fed = 0
        self._elapsed_prior = 0.0
        self._t0 = time.perf_counter()
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def ops_fed(self) -> int:
        """Operations fed into the session (open window included)."""
        return self._ops_fed

    @property
    def num_windows(self) -> int:
        """Windows closed so far."""
        return len(self._timeline)

    @property
    def num_registers(self) -> int:
        """Registers that have reached a closed window."""
        return len(self._checkers)

    @property
    def timeline(self) -> Tuple[WindowReport, ...]:
        """The closed-window reports, in stream order."""
        return tuple(self._timeline)

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has sealed the session."""
        return self._finished

    # ------------------------------------------------------------------
    def feed(self, op: Operation) -> Optional[WindowReport]:
        """Ingest one operation; returns the report of the window it closed."""
        if self._finished:
            raise VerificationError(
                "session already finished; open a new session for a new stream"
            )
        self._ops_fed += 1
        window = self._assembler.feed(op)
        if window is None:
            return None
        return self._handle(window)

    def finish(self) -> StreamVerificationReport:
        """Seal the stream and return the full report (batch-equal verdicts)."""
        if self._finished:
            raise VerificationError("session already finished")
        tail = self._assembler.flush()
        if tail is not None:
            self._handle(tail)
        self._finished = True
        results = {key: self._checkers[key].finish() for key in self._key_order}
        return StreamVerificationReport(
            k=self.k,
            mode=self.engine.mode,
            window=self.engine.window.describe(),
            results=results,
            timeline=tuple(self._timeline),
            executor=self.engine.executor.name,
            jobs=self.engine.jobs,
            elapsed_s=self._elapsed(),
            tier=self.engine.tier_name,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the complete session state as one picklable mapping."""
        return {
            "k": self.k,
            "algorithm": self.engine.algorithm,
            "window": (
                self.engine.window.mode,
                self.engine.window.size,
                self.engine.window.overlap,
            ),
            "assembler": self._assembler.snapshot(),
            "checkers": [
                (key, self._checkers[key].snapshot()) for key in self._key_order
            ],
            "timeline": list(self._timeline),
            "ops_fed": self._ops_fed,
            "elapsed_s": self._elapsed(),
            "finished": self._finished,
            # Tier escalation state rides along only when tiering is active,
            # keeping default snapshots byte-identical to pre-tiering builds.
            **(
                {"tier": self._tier_state.snapshot()}
                if self._tier_state is not None
                else {}
            ),
        }

    def restore(self, state: dict) -> None:
        """Rehydrate the state captured by :meth:`snapshot`."""
        if state["k"] != self.k:
            raise VerificationError(
                f"snapshot verifies k={state['k']}; this session is for k={self.k}"
            )
        if state["algorithm"] != self.engine.algorithm:
            raise VerificationError(
                f"snapshot used algorithm={state['algorithm']!r}; this engine "
                f"is configured with {self.engine.algorithm!r}"
            )
        self._assembler.restore(state["assembler"])
        self._checkers = {}
        self._key_order = []
        for key, checker_state in state["checkers"]:
            self._checkers[key] = restore_checker(checker_state)
            self._key_order.append(key)
        if self.engine.tier is not None:
            # A pre-tiering snapshot simply restarts the escalation state —
            # conservative (extra authoritative checks), never unsound.
            self._tier_state = (
                TierStreamState.restore(self.engine.tier, state["tier"])
                if "tier" in state
                else TierStreamState(self.engine.tier, self.k)
            )
        self._timeline = self.engine._new_timeline()
        self._timeline.extend(state["timeline"])
        self._ops_fed = state["ops_fed"]
        self._elapsed_prior = state["elapsed_s"]
        self._t0 = time.perf_counter()
        self._finished = state["finished"]
        # The open window's buffered operations have not reached any checker
        # yet, so their (foreign) op_ids are guarded here rather than by
        # Checker.restore.
        from ..core.operation import ensure_op_ids_above

        ensure_op_ids_above(
            max((op.op_id for op in state["assembler"]["buffer"]), default=-1)
        )

    # ------------------------------------------------------------------
    def _handle(self, window: Window) -> WindowReport:
        report = self.engine._run_rolling_window(
            window, self.k, self._checkers, self._key_order,
            tier_state=self._tier_state,
        )
        self._timeline.append(report)
        return report

    def _elapsed(self) -> float:
        return self._elapsed_prior + (time.perf_counter() - self._t0)
