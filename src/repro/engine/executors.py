"""Pluggable shard executors: serial, thread pool, process pool.

An executor turns a list of shard tasks into a stream of shard results.  All
three implementations share one contract (:meth:`ShardExecutor.run`): they
yield results *as they complete*, which is what lets the engine short-circuit
on the first failing register without waiting for the remaining shards.

* ``serial`` — runs shards inline, in order; zero overhead, exact seed
  semantics.  The default.
* ``threads`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  The
  verifiers are pure Python, so threads mostly help when verification
  overlaps I/O (or on GIL-free builds); it is also the cheap way to test
  executor plumbing.
* ``processes`` — a :class:`~concurrent.futures.ProcessPoolExecutor`; the
  multi-core path.  Shard tasks carry algorithm *names*, never function
  objects, so everything crossing the process boundary is picklable (see
  :mod:`repro.algorithms.registry`).

When the generator returned by :meth:`run` is closed early (engine
short-circuit), pool executors cancel all not-yet-started shards; shards
already running finish but their results are discarded.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Callable, Dict, Iterator, Sequence, TypeVar

from ..core.errors import VerificationError

__all__ = [
    "ShardExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "get_executor",
    "default_jobs",
]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Default worker count: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class ShardExecutor:
    """Base class for shard executors."""

    #: Registry name; subclasses override.
    name = "base"
    #: Whether separate worker processes are involved (tasks must pickle).
    crosses_process_boundary = False

    def run(
        self, fn: Callable[[T], R], tasks: Sequence[T], jobs: int
    ) -> Iterator[R]:
        """Yield ``fn(task)`` results in *completion* order.

        Exceptions raised by ``fn`` propagate to the consumer.  Closing the
        returned generator cancels outstanding work (best effort).
        """
        raise NotImplementedError


class SerialExecutor(ShardExecutor):
    """Run shards inline, in submission order."""

    name = "serial"

    def run(self, fn, tasks, jobs):
        for task in tasks:
            yield fn(task)


class _PoolExecutor(ShardExecutor):
    """Shared machinery for thread/process pools."""

    def _make_pool(self, jobs: int) -> Executor:
        raise NotImplementedError

    def run(self, fn, tasks, jobs):
        if jobs < 1:
            raise VerificationError(f"jobs must be >= 1, got {jobs}")
        pool = self._make_pool(min(jobs, max(1, len(tasks))))
        try:
            pending = {pool.submit(fn, task) for task in tasks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        finally:
            for future in pending:
                future.cancel()
            pool.shutdown(wait=True)


class ThreadExecutor(_PoolExecutor):
    """Thread-pool executor (shared interpreter, shared memory)."""

    name = "threads"

    def _make_pool(self, jobs):
        return ThreadPoolExecutor(max_workers=jobs, thread_name_prefix="repro-shard")


class ProcessExecutor(_PoolExecutor):
    """Process-pool executor (true multi-core parallelism)."""

    name = "processes"
    crosses_process_boundary = True

    def _make_pool(self, jobs):
        return ProcessPoolExecutor(max_workers=jobs)


EXECUTORS: Dict[str, ShardExecutor] = {
    e.name: e for e in (SerialExecutor(), ThreadExecutor(), ProcessExecutor())
}


def get_executor(name: str) -> ShardExecutor:
    """Look up an executor by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in EXECUTORS:
        raise VerificationError(
            f"unknown executor {name!r}; available: {', '.join(sorted(EXECUTORS))}"
        )
    return EXECUTORS[key]
