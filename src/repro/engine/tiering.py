"""Adaptive tiered verification: screen cheap, escalate only when suspicious.

The paper's checkers span orders of magnitude in cost — the online GK peek
runs at about a microsecond per operation while the exact oracle is
combinatorial — yet a static configuration makes every window pay for
whichever checker the caller picked.  This module closes ROADMAP item 3 with
a *tier ladder* built on one soundness fact:

    **k-monotonicity** (Section II): if a history is j-atomic for some
    j <= k then it is k-atomic.  A cheap verifier run at a *smaller*
    staleness bound can therefore prove a YES for the real ``k`` — but
    never a NO.

The ladder screens each register with the cheapest rung first and walks up
only on refusal:

* ``screen`` — verify at k' = 1 (GK, near-linear).  YES here is YES at any k.
* ``confirm`` — for k >= 3, verify at k' = 2 (FZF / LBT, O(n log n)).
* ``exact`` — the authoritative checker for the requested ``k``.

Every NO verdict comes from the ``exact`` rung (a screen's NO only triggers
escalation), so a tiered run's failures — verdict, reason, witness — are
*identical* to an exact-only run; only sound YES shortcuts differ, and those
carry a valid witness (a j-atomic total order satisfies the k-atomic
freshness constraint for every k >= j).  ``tests/test_tiering.py`` pins this
equivalence differentially.

Escalation is additionally *feature gated*: registers whose trace features
already smell of staleness (anomalous reads, value lag >= k, dense interval
overlap) skip the screens and go straight to exact, so the screen cost is
never wasted on windows that were going to escalate anyway.  The features
are deliberately invariant under the metamorphic symmetries (time shift and
positive scale, client/value rename) so tier decisions are reproducible
properties of the trace shape, not of its encoding.

A :class:`CostModel` — linear per-rung cost curves calibrated from observed
trace stats — picks the kernel, executor, k-sweep range and window size for
the ``auto`` policy.  The ``tiering`` experiment kind fits and validates the
model against measured runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import VerificationError
from ..core.history import History
from ..core.operation import Operation
from ..core.preprocess import find_anomalies
from ..core.result import VerificationResult

__all__ = [
    "TIER_NAMES",
    "TraceFeatures",
    "TierDecision",
    "TierStats",
    "CostModel",
    "TierPolicy",
    "TierStreamState",
    "get_tier_policy",
]

#: The registered tier policy names, in escalating order of adaptivity.
#: ``exact`` is the pre-tiering behaviour (every register pays the
#: authoritative checker), ``screen`` always tries the cheap ladder first,
#: and ``auto`` adds feature gating plus cost-model knob selection.
TIER_NAMES: Tuple[str, ...] = ("exact", "screen", "auto")

#: Names of the ladder rungs, cheapest first.
TIER_RUNGS: Tuple[str, ...] = ("screen", "confirm", "exact")


# ----------------------------------------------------------------------
# Trace features
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceFeatures:
    """Cheap summary statistics of a (single-register) history.

    Escalation gates use only the *transform-invariant* features —
    ``anomaly_score``, ``max_value_lag`` and ``overlap_density`` survive
    time shifts, positive time scaling and client/value renames — so tier
    decisions are metamorphically stable.  ``op_rate`` and ``duration`` are
    *not* invariant and feed only the cost model's knob picks (kernel,
    executor, window size), which never change a verdict.
    """

    num_ops: int
    num_writes: int
    num_reads: int
    #: Wall-clock span of the trace (finish of last op minus start of first).
    duration: float
    #: Operations per second over the span; 0 for degenerate spans.
    op_rate: float
    #: Fraction of start-ordered adjacent operation pairs whose intervals
    #: overlap — the concurrency density that drives zone complexity.
    overlap_density: float
    #: Fraction of reads that are Section II-C anomalies (no dictating
    #: write, or the read precedes its write).  Any anomaly forces NO.
    anomaly_score: float
    #: Maximum "writes-behind" distance of any read: how many *completed*
    #: fresher writes the read skipped.  A lag >= k rules out k-atomicity
    #: along the precedence order and is the strongest escalation signal.
    max_value_lag: int

    @classmethod
    def from_history(cls, history: History) -> "TraceFeatures":
        """Extract features from a single-register :class:`History`."""
        ops = history.operations
        n = len(ops)
        if n == 0:
            return cls(0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0)
        writes = history.writes
        reads = history.reads
        lo, hi = history.span()
        duration = max(0.0, hi - lo)
        rate = (n / duration) if duration > 0 else 0.0

        by_start = sorted(ops, key=lambda op: (op.start, op.finish))
        overlaps = sum(
            1 for prev, nxt in zip(by_start, by_start[1:]) if nxt.start < prev.finish
        )
        density = overlaps / (n - 1) if n > 1 else 0.0

        anomalies = len(find_anomalies(history)) if reads else 0
        score = anomalies / len(reads) if reads else 0.0

        return cls(
            num_ops=n,
            num_writes=len(writes),
            num_reads=len(reads),
            duration=duration,
            op_rate=rate,
            overlap_density=density,
            anomaly_score=score,
            max_value_lag=_max_value_lag(history),
        )


def _max_value_lag(history: History) -> int:
    """Largest number of completed fresher writes skipped by any read.

    Writes are ranked by finish time (start as tie-break); a read of value
    ``v`` lags by the number of writes that wholly precede the read
    (``finish < read.start``) yet rank strictly fresher than ``v``'s write.
    Comparisons only — invariant under time shift/scale and renames.
    """
    writes = sorted(history.writes, key=lambda w: (w.finish, w.start))
    rank = {w: i for i, w in enumerate(writes)}
    worst = 0
    for r in history.reads:
        w = history.dictating_write(r)
        if w is None:
            continue
        base = rank[w]
        lag = sum(
            1
            for other in writes[base + 1 :]
            if other.finish < r.start
        )
        if lag > worst:
            worst = lag
    return worst


# ----------------------------------------------------------------------
# Decisions and aggregate stats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TierDecision:
    """The route one register (or one register-window) took through the ladder.

    ``tier`` names the rung that produced the verdict; ``escalated`` is true
    when a cheaper rung was consulted (or gated away) first; ``triggers``
    records *why* — feature gates and screen alarms — so a skipped exact
    check is never silent.
    """

    key: str
    tier: str
    escalated: bool
    triggers: Tuple[str, ...] = ()
    screen_k: Optional[int] = None

    def describe(self) -> str:
        extra = f" [{', '.join(self.triggers)}]" if self.triggers else ""
        return f"{self.key}: {self.tier}{extra}"


@dataclass
class TierStats:
    """Aggregate tier hit-rates over a run (mutable accumulator)."""

    screened: int = 0  #: registers/windows settled by a sub-k rung
    escalated: int = 0  #: routed to the exact rung after a screen or gate
    exact: int = 0  #: total units that paid the exact checker
    total: int = 0
    trigger_counts: Dict[str, int] = field(default_factory=dict)

    def record(self, decision: TierDecision) -> None:
        self.total += 1
        if decision.tier == "exact":
            self.exact += 1
            if decision.escalated:
                self.escalated += 1
        else:
            self.screened += 1
        for trig in decision.triggers:
            self.trigger_counts[trig] = self.trigger_counts.get(trig, 0) + 1

    def merge(self, other: "TierStats") -> None:
        self.screened += other.screened
        self.escalated += other.escalated
        self.exact += other.exact
        self.total += other.total
        for trig, count in other.trigger_counts.items():
            self.trigger_counts[trig] = self.trigger_counts.get(trig, 0) + count

    @property
    def escalation_rate(self) -> float:
        """Fraction of units that paid the exact checker."""
        return (self.exact / self.total) if self.total else 0.0

    @property
    def screen_rate(self) -> float:
        """Fraction of units settled without the exact checker."""
        return (self.screened / self.total) if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "screened": self.screened,
            "escalated": self.escalated,
            "exact": self.exact,
            "total": self.total,
            "escalation_rate": round(self.escalation_rate, 6),
            "screen_rate": round(self.screen_rate, 6),
            "triggers": dict(sorted(self.trigger_counts.items())),
        }

    def summary(self) -> str:
        return (
            f"tiering: {self.screened}/{self.total} screened, "
            f"{self.exact} exact ({self.escalated} escalated, "
            f"rate {self.escalation_rate:.0%})"
        )


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
#: Baked-in per-operation cost curves (intercept seconds, seconds/op),
#: seeded from the committed benchmark baselines on the reference runner
#: (bench_online_latency.json, bench_columnar.json).  ``calibrate`` or the
#: ``tiering`` experiment kind refit them to the current machine.
_DEFAULT_COEFFS: Dict[str, Tuple[float, float]] = {
    "screen:object": (2.0e-5, 9.0e-7),
    "screen:columnar": (3.0e-5, 4.0e-7),
    "screen:numpy": (1.2e-4, 6.0e-8),
    "confirm:object": (3.0e-5, 2.2e-6),
    "confirm:columnar": (4.0e-5, 9.0e-7),
    "confirm:numpy": (1.5e-4, 1.0e-7),
    "exact:object": (3.0e-5, 2.5e-6),
    "exact:columnar": (4.0e-5, 1.0e-6),
    "exact:numpy": (1.5e-4, 1.2e-7),
}


@dataclass
class CostModel:
    """Linear cost curves ``cost(rung, kernel, n) = a + b*n`` plus knob picks.

    The model is deliberately tiny — two coefficients per (rung, kernel)
    pair — because the verifiers it prices are near-linear in practice
    (Sections III-IV) and a model cheap enough to evaluate per window must
    not itself become a tier.  ``fit`` refits from ``(stage, n, seconds)``
    samples by least squares; the ``tiering`` experiment kind reports the
    relative fit error so a drifting model is visible.
    """

    coeffs: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: dict(_DEFAULT_COEFFS)
    )
    #: Overlap density at or above which ``auto`` escalates straight to exact.
    overlap_threshold: float = 0.85
    #: Streaming: force an authoritative check every this many windows per
    #: register even with no trigger, bounding peek staleness.
    confirm_interval: int = 8
    #: Per-window check budget (seconds) used by :meth:`choose_window`.
    window_budget_s: float = 0.040
    #: Mean relative error per stage of the last :meth:`fit`/:meth:`calibrate`
    #: (diagnostic only — excluded from :meth:`to_dict`).
    fit_errors: Dict[str, float] = field(default_factory=dict)

    # -- prediction ----------------------------------------------------
    def predict(self, rung: str, kernel: str, num_ops: int) -> float:
        """Predicted seconds to run ``rung`` with ``kernel`` on ``num_ops``."""
        a, b = self.coeffs.get(f"{rung}:{kernel}", self.coeffs["exact:object"])
        return a + b * max(0, num_ops)

    def fit(self, samples: Iterable[Tuple[str, int, float]]) -> Dict[str, float]:
        """Least-squares refit from ``(stage, num_ops, seconds)`` samples.

        Returns the per-stage mean relative error of the *refit* model so
        callers (the experiment harness) can validate the linear form.
        """
        grouped: Dict[str, List[Tuple[int, float]]] = {}
        for stage, n, secs in samples:
            grouped.setdefault(stage, []).append((n, secs))
        errors: Dict[str, float] = {}
        for stage, points in grouped.items():
            if len(points) < 2:
                continue
            xs = [float(n) for n, _ in points]
            ys = [max(0.0, s) for _, s in points]
            mx = sum(xs) / len(xs)
            my = sum(ys) / len(ys)
            var = sum((x - mx) ** 2 for x in xs)
            slope = (
                sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / var
                if var > 0
                else 0.0
            )
            slope = max(0.0, slope)
            intercept = max(0.0, my - slope * mx)
            self.coeffs[stage] = (intercept, slope)
            rel = [
                abs((intercept + slope * x) - y) / y
                for x, y in zip(xs, ys)
                if y > 0
            ]
            errors[stage] = sum(rel) / len(rel) if rel else 0.0
        self.fit_errors = dict(errors)
        return errors

    # -- knob selection ------------------------------------------------
    def choose_kernel(self, num_ops: int) -> str:
        """Cheapest kernel tier for a register of ``num_ops`` operations."""
        from ..core import vector  # local import: numpy availability probe

        candidates = ["object", "columnar"]
        if vector.NUMPY_AVAILABLE:
            candidates.append("numpy")
        return min(candidates, key=lambda k: self.predict("screen", k, num_ops))

    def choose_executor(self, total_ops: int, num_registers: int) -> str:
        """Executor for a batch run: stay serial until fan-out pays.

        Process pools cost milliseconds of spawn/IPC per shard; threads are
        cheaper but still lose on small traces.  The thresholds compare the
        predicted serial screen cost against those fixed overheads.
        """
        kernel = self.choose_kernel(max(1, total_ops // max(1, num_registers)))
        serial_cost = self.predict("screen", kernel, total_ops)
        if num_registers >= 4 and serial_cost > 0.25:
            return "process"
        if num_registers >= 2 and serial_cost > 0.020:
            return "thread"
        return "serial"

    def choose_window(self, op_rate: float) -> int:
        """Streaming window size whose check cost fits the window budget."""
        kernel = self.choose_kernel(4096)
        a, b = self.coeffs.get(
            f"exact:{kernel}", self.coeffs["exact:object"]
        )
        if b <= 0:
            return 4096
        size = int((self.window_budget_s - a) / b)
        return max(16, min(65536, size))

    def choose_k_sweep(self, features: TraceFeatures, k: int) -> Tuple[int, ...]:
        """The k values worth sweeping for a staleness spectrum of this trace.

        The observed value lag bounds the interesting range from below:
        every k <= max_value_lag is certainly NO, so the sweep starts where
        the answer can change.
        """
        lo = min(k, features.max_value_lag + 1) if features.max_value_lag else 1
        return tuple(range(max(1, lo), k + 1))

    # -- calibration ---------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        histories: Mapping[str, History],
        *,
        probe_ops: int = 512,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "CostModel":
        """Fit a model by timing the real rungs on slices of ``histories``.

        Probes are capped at ``probe_ops`` operations per register so
        calibration stays far cheaper than the verification it prices.
        """
        from ..core.api import verify  # local: avoid import cycle

        model = cls()
        samples: List[Tuple[str, int, float]] = []
        rungs = (("screen", 1), ("confirm", 2), ("exact", 2))
        for history in list(histories.values())[:4]:
            ops = history.operations
            if not ops:
                continue
            for frac in (0.25, 0.5, 1.0):
                n = min(probe_ops, max(4, int(len(ops) * frac)))
                slice_h = History(list(ops[:n]), key=history.key)
                for rung, probe_k in rungs:
                    for kernel in ("object", "columnar", "numpy"):
                        stage = f"{rung}:{kernel}"
                        try:
                            t0 = clock()
                            verify(slice_h, probe_k, kernel=kernel)
                            samples.append((stage, n, clock() - t0))
                        except VerificationError:
                            continue
        model.fit(samples)
        return model

    # -- (de)serialisation --------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "coeffs": {stage: list(ab) for stage, ab in sorted(self.coeffs.items())},
            "overlap_threshold": self.overlap_threshold,
            "confirm_interval": self.confirm_interval,
            "window_budget_s": self.window_budget_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostModel":
        return cls(
            coeffs={
                stage: (float(a), float(b))
                for stage, (a, b) in dict(payload.get("coeffs", {})).items()
            }
            or dict(_DEFAULT_COEFFS),
            overlap_threshold=float(payload.get("overlap_threshold", 0.85)),
            confirm_interval=int(payload.get("confirm_interval", 8)),
            window_budget_s=float(payload.get("window_budget_s", 0.040)),
        )


# ----------------------------------------------------------------------
# The policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TierPolicy:
    """Routes registers/windows through the checker ladder.

    Frozen so it can ride inside the frozen engine task dataclasses and
    cross process boundaries by ordinary pickling.
    """

    name: str
    #: When false the policy is a passthrough: every unit pays exact.
    screen: bool = True
    #: When true, suspicious features skip the screens entirely (``auto``).
    feature_gated: bool = False
    cost_model: CostModel = field(default_factory=CostModel)

    # -- batch ---------------------------------------------------------
    def gate_triggers(self, features: TraceFeatures, k: int) -> Tuple[str, ...]:
        """Transform-invariant reasons to distrust the cheap rungs."""
        triggers: List[str] = []
        if features.anomaly_score > 0:
            triggers.append("anomaly")
        if features.max_value_lag >= k:
            triggers.append("value-lag")
        if features.overlap_density >= self.cost_model.overlap_threshold:
            triggers.append("overlap-density")
        return tuple(triggers)

    def verify_with_decision(
        self,
        history: History,
        k: int,
        *,
        key: str = "",
        algorithm: str = "auto",
        preprocess: bool = True,
        max_exact_ops: int = 40,
        columnar: Optional[bool] = None,
        kernel: Optional[str] = None,
    ) -> Tuple[VerificationResult, TierDecision]:
        """Verify one register through the ladder.

        Soundness: a sub-k rung may only *confirm* (its YES is YES for ``k``
        by k-monotonicity, witness included); any refusal falls through to
        the exact rung, whose result is returned untouched — so NO verdicts,
        reasons and witnesses match an exact-only run exactly.
        """
        from ..core.api import verify  # local: avoid import cycle

        def exact_run() -> VerificationResult:
            return verify(
                history,
                k,
                algorithm=algorithm,
                preprocess=preprocess,
                max_exact_ops=max_exact_ops,
                columnar=columnar,
                kernel=kernel,
            )

        name = key or (history.key or "")
        if not self.screen or k <= 1 or history.is_empty:
            return exact_run(), TierDecision(name, "exact", escalated=False)
        if kernel is None and columnar is None and self.feature_gated:
            # Cost-model kernel pick: object beats the vectorized tiers on
            # tiny registers (fixed numpy overhead), numpy wins at scale.
            kernel = self.cost_model.choose_kernel(len(history.operations))

        triggers: List[str] = []
        if self.feature_gated:
            gates = self.gate_triggers(TraceFeatures.from_history(history), k)
            if gates:
                return exact_run(), TierDecision(
                    name, "exact", escalated=True, triggers=gates
                )

        ladder: List[Tuple[int, str]] = [(1, "screen")]
        if k >= 3:
            ladder.append((2, "confirm"))
        for screen_k, rung in ladder:
            try:
                screened = verify(
                    history,
                    screen_k,
                    algorithm="auto",
                    preprocess=preprocess,
                    max_exact_ops=max_exact_ops,
                    columnar=columnar,
                    kernel=kernel,
                )
            except VerificationError:
                triggers.append(f"{rung}-error")
                break
            if screened.is_k_atomic:
                # k-monotonicity: screened.witness is a screen_k-atomic total
                # order, hence k-atomic; re-badge the result for the real k.
                result = VerificationResult.yes(
                    k,
                    screened.algorithm,
                    witness=screened.witness,
                    reason=(
                        f"{screen_k}-atomic per {screened.algorithm}; "
                        f"k-monotonicity implies {k}-atomic"
                    ),
                    stats={**screened.stats, "tier": rung, "screen_k": screen_k},
                )
                return result, TierDecision(
                    name,
                    rung,
                    escalated=False,
                    triggers=tuple(triggers),
                    screen_k=screen_k,
                )
            triggers.append(f"{rung}-alarm")
        return exact_run(), TierDecision(
            name, "exact", escalated=True, triggers=tuple(triggers)
        )

    def verify_columnar_with_decision(
        self,
        col: Any,
        k: int,
        *,
        key: str = "",
        algorithm: str = "auto",
        preprocess: bool = True,
        max_exact_ops: int = 40,
        kernel: Optional[str] = None,
        decode_witness: bool = True,
    ) -> Tuple[VerificationResult, TierDecision]:
        """The ladder on a :class:`~repro.core.columnar.ColumnarHistory`.

        Used by the out-of-core (``.rcol``) shard path, which never
        materialises object histories.  Feature gating uses the memoized
        columnar anomaly scan only; the screens themselves provide the rest
        of the escalation signal (a screen NO always escalates).
        """
        from ..core import vector  # local: avoid import cycle

        def exact_run() -> VerificationResult:
            return vector.verify_columnar(
                col,
                k,
                algorithm=algorithm,
                preprocess=preprocess,
                max_exact_ops=max_exact_ops,
                kernel=kernel,
                decode_witness=decode_witness,
            )

        name = key or getattr(col, "key", "") or ""
        if not self.screen or k <= 1 or getattr(col, "n", 0) == 0:
            return exact_run(), TierDecision(name, "exact", escalated=False)
        if self.feature_gated and col.has_anomalies():
            return exact_run(), TierDecision(
                name, "exact", escalated=True, triggers=("anomaly",)
            )
        triggers: List[str] = []
        ladder: List[Tuple[int, str]] = [(1, "screen")]
        if k >= 3:
            ladder.append((2, "confirm"))
        for screen_k, rung in ladder:
            try:
                screened = vector.verify_columnar(
                    col,
                    screen_k,
                    algorithm="auto",
                    preprocess=preprocess,
                    max_exact_ops=max_exact_ops,
                    kernel=kernel,
                    decode_witness=decode_witness,
                )
            except VerificationError:
                triggers.append(f"{rung}-error")
                break
            if screened.is_k_atomic:
                result = VerificationResult.yes(
                    k,
                    screened.algorithm,
                    witness=screened.witness,
                    reason=(
                        f"{screen_k}-atomic per {screened.algorithm}; "
                        f"k-monotonicity implies {k}-atomic"
                    ),
                    stats={**screened.stats, "tier": rung, "screen_k": screen_k},
                )
                return result, TierDecision(
                    name,
                    rung,
                    escalated=False,
                    triggers=tuple(triggers),
                    screen_k=screen_k,
                )
            triggers.append(f"{rung}-alarm")
        return exact_run(), TierDecision(
            name, "exact", escalated=True, triggers=tuple(triggers)
        )

    @property
    def active(self) -> bool:
        """False for the ``exact`` passthrough policy."""
        return self.screen


#: Preset policies by name.  ``screen`` trusts the ladder on every register;
#: ``auto`` adds feature gating and cost-model knob selection.
_PRESETS: Dict[str, TierPolicy] = {
    "exact": TierPolicy(name="exact", screen=False, feature_gated=False),
    "screen": TierPolicy(name="screen", screen=True, feature_gated=False),
    "auto": TierPolicy(name="auto", screen=True, feature_gated=True),
}


def get_tier_policy(
    tier: Union[None, str, TierPolicy],
) -> Optional[TierPolicy]:
    """Resolve a tier argument to a policy (``None``/``"exact"`` -> ``None``).

    Unknown names raise :class:`VerificationError` listing the registered
    tiers — callers must not fall back silently.
    """
    if tier is None:
        return None
    if isinstance(tier, TierPolicy):
        return tier if tier.active else None
    name = str(tier).strip().lower()
    if name not in _PRESETS:
        raise VerificationError(
            f"unknown tier {tier!r}; available: {', '.join(TIER_NAMES)}"
        )
    policy = _PRESETS[name]
    return policy if policy.active else None


# ----------------------------------------------------------------------
# Streaming tier state
# ----------------------------------------------------------------------
class TierStreamState:
    """Per-register escalation state for the streaming/rolling engines.

    In streaming the cheap rung is the incremental checker's O(1)
    :meth:`peek` (possibly one cadence stale) and the exact rung is
    :meth:`check_now`.  This state watches each window's operations for the
    same invariant trigger features as the batch gate — plus the checker's
    own latched alarms — and decides per (register, window) whether the
    authoritative check must run.  The decision protocol is deliberately
    plain data (``"check"`` / ``"peek"``) so the worker pool can ship it
    per shard and journal it for replay.
    """

    def __init__(self, policy: TierPolicy, k: int) -> None:
        self.policy = policy
        self.k = max(1, k)
        #: key -> {"seq": next write seq, "values": {value: write seq},
        #:          "since": windows since last authoritative check,
        #:          "alarmed": a NO has been observed for this key}
        self._registers: Dict[str, Dict[str, Any]] = {}

    # -- bookkeeping ---------------------------------------------------
    def _state_for(self, key: str) -> Dict[str, Any]:
        state = self._registers.get(key)
        if state is None:
            state = {"seq": 0, "values": {}, "since": 0, "alarmed": False}
            self._registers[key] = state
        return state

    def decide(
        self,
        key: str,
        ops: Sequence[Operation],
        *,
        alarmed: bool = False,
    ) -> Tuple[str, Tuple[str, ...]]:
        """Consume one window's operations; return ``(mode, triggers)``.

        ``mode`` is ``"check"`` (run the authoritative checker now) or
        ``"peek"`` (the O(1) screen suffices).  Soundness: every feature
        that can make a NO possible — an anomalous read, a value lag >= k,
        a latched checker alarm — forces ``"check"``, so the screen is
        never trusted on its own for a NO-capable window.  ``alarmed`` is
        the caller's signal that the register's checker already latched a
        NO (e.g. from a free ``peek``).
        """
        state = self._state_for(key)
        triggers: List[str] = []
        if alarmed or state["alarmed"]:
            state["alarmed"] = True
            triggers.append("checker-alarm")
        values = state["values"]
        overlaps = 0
        prev_finish: Optional[float] = None
        saw_anomaly = False
        saw_lag = False
        for op in sorted(ops, key=lambda o: (o.start, o.finish)):
            if prev_finish is not None and op.start < prev_finish:
                overlaps += 1
            prev_finish = (
                op.finish if prev_finish is None else max(prev_finish, op.finish)
            )
            if op.is_write:
                values[op.value] = state["seq"]
                state["seq"] += 1
            else:
                seq = values.get(op.value)
                if seq is None:
                    saw_anomaly = True
                elif state["seq"] - 1 - seq >= self.k:
                    saw_lag = True
        if saw_anomaly:
            triggers.append("anomaly")
        if saw_lag:
            triggers.append("value-lag")
        if (
            self.policy.feature_gated
            and len(ops) > 1
            and overlaps / (len(ops) - 1) >= self.policy.cost_model.overlap_threshold
        ):
            triggers.append("overlap-density")
        state["since"] += 1
        if not triggers and state["since"] >= self.policy.cost_model.confirm_interval:
            triggers.append("periodic-confirm")
        if triggers:
            state["since"] = 0
            return "check", tuple(triggers)
        return "peek", ()

    def note_verdict(self, key: str, is_k_atomic: Optional[bool]) -> None:
        """Latch a register whose (authoritative or peeked) verdict was NO."""
        if is_k_atomic is False:
            self._state_for(key)["alarmed"] = True

    # -- checkpointing -------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data state for the engine's checkpoint payloads."""
        return {
            "policy": self.policy.name,
            "k": self.k,
            "registers": {
                key: {
                    "seq": st["seq"],
                    "values": list(st["values"].items()),
                    "since": st["since"],
                    "alarmed": st["alarmed"],
                }
                for key, st in self._registers.items()
            },
        }

    @classmethod
    def restore(
        cls, policy: TierPolicy, payload: Mapping[str, Any]
    ) -> "TierStreamState":
        state = cls(policy, int(payload.get("k", 1)))
        for key, st in dict(payload.get("registers", {})).items():
            state._registers[key] = {
                "seq": int(st["seq"]),
                "values": {value: int(seq) for value, seq in st["values"]},
                "since": int(st["since"]),
                "alarmed": bool(st["alarmed"]),
            }
        return state
