"""Sharded, parallel verification engine (ingestion → shard → execute → aggregate).

k-atomicity is local (Section II-B), so a multi-register trace can be
verified register-by-register, in parallel, with no coordination beyond the
final aggregation.  This package turns that theorem into an execution
pipeline; see :class:`Engine` for the entry point.
"""

from .codec import decode_shard_items, encode_shard_items
from .engine import (
    EncodedShardTask,
    Engine,
    RcolShardTask,
    ShardOutcome,
    ShardTask,
    run_shard,
)
from .streaming import DEFAULT_WINDOW, StreamingEngine
from .tiering import (
    TIER_NAMES,
    CostModel,
    TierDecision,
    TierPolicy,
    TierStats,
    TierStreamState,
    TraceFeatures,
    get_tier_policy,
)
from .executors import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
    default_jobs,
    get_executor,
)
from .partition import (
    PARTITIONERS,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    SizeBalancedPartitioner,
    get_partitioner,
)

__all__ = [
    "CostModel",
    "DEFAULT_WINDOW",
    "EXECUTORS",
    "EncodedShardTask",
    "RcolShardTask",
    "Engine",
    "HashPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "ProcessExecutor",
    "RoundRobinPartitioner",
    "SerialExecutor",
    "ShardExecutor",
    "ShardOutcome",
    "ShardTask",
    "SizeBalancedPartitioner",
    "StreamingEngine",
    "TIER_NAMES",
    "ThreadExecutor",
    "TierDecision",
    "TierPolicy",
    "TierStats",
    "TierStreamState",
    "TraceFeatures",
    "decode_shard_items",
    "default_jobs",
    "encode_shard_items",
    "get_executor",
    "get_partitioner",
    "get_tier_policy",
    "run_shard",
]
