"""Unified verification API.

This module is the front door of the library: given a history (or a
multi-register trace) and a staleness bound ``k``, it picks an appropriate
algorithm, applies the Section II-C preprocessing when requested, and returns
a :class:`~repro.core.result.VerificationResult`.

Algorithm selection (``algorithm="auto"``):

* ``k = 1`` → Gibbons–Korach zone conditions,
* ``k = 2`` → FZF (worst-case ``O(n log n)``); LBT can be requested by name,
* ``k >= 3`` → the exact exponential oracle (no polynomial algorithm is known;
  the paper leaves this case open), guarded by ``max_exact_ops``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..algorithms.registry import get_algorithm
from .errors import VerificationError
from .history import History, MultiHistory
from .preprocess import find_anomalies, normalize
from .result import VerificationResult

__all__ = [
    "verify",
    "verify_trace",
    "minimal_k",
    "minimal_k_bound",
    "MinimalKBound",
    "DEFAULT_MAX_EXACT_OPS",
]

#: Histories larger than this are refused by the exact oracle in "auto" mode
#: (the caller can always invoke the oracle directly, or raise the limit).
DEFAULT_MAX_EXACT_OPS = 40


def _select_algorithm(k: int, algorithm: str, history: History, max_exact_ops: int) -> str:
    if algorithm != "auto":
        return algorithm
    if k == 1:
        return "gk"
    if k == 2:
        return "fzf"
    if len(history) > max_exact_ops:
        raise VerificationError(
            f"k={k} requires the exact (exponential) oracle, but the history has "
            f"{len(history)} operations (> max_exact_ops={max_exact_ops}); "
            "no polynomial algorithm for k >= 3 is known (the paper leaves it open). "
            "Pass algorithm='exact' or raise max_exact_ops to force the search."
        )
    return "exact"


def verify(
    history: History,
    k: int,
    *,
    algorithm: str = "auto",
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    columnar: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> VerificationResult:
    """Decide whether ``history`` is k-atomic.

    Parameters
    ----------
    history:
        The single-register history to verify.
    k:
        The staleness bound (``k >= 1``).
    algorithm:
        ``"auto"`` (default) or one of the registered algorithm names
        (``"gk"``, ``"lbt"``, ``"lbt-reference"``, ``"fzf"``, ``"exact"``).
    preprocess:
        When true (default), anomalies yield an immediate NO verdict and the
        history is normalised (timestamp tie-breaking, write shortening)
        before verification, per Section II-C.
    max_exact_ops:
        Size guard for the automatic ``k >= 3`` fallback to the exponential
        oracle.
    columnar:
        Legacy kernel switch: ``True``/``False`` force or forbid the columnar
        (struct-of-arrays) kernels for algorithms that have them (GK and
        FZF).  Superseded by ``kernel``; ignored when ``kernel`` is given.
    kernel:
        Kernel tier for algorithms that have tiered implementations:
        ``"object"``, ``"columnar"`` or ``"numpy"`` (the vectorized kernels
        of :mod:`repro.core.vector`).  ``None`` (the default) picks the
        fastest enabled tier — ``numpy`` when numpy is importable.  All
        tiers produce identical results; the flag exists for benchmarks and
        cross-validation.

    Returns
    -------
    VerificationResult

    Example
    -------
    >>> from repro import History, read, write, verify
    >>> h = History([
    ...     write("a", 0.0, 1.0),
    ...     write("b", 2.0, 3.0),
    ...     read("a", 4.0, 5.0),      # stale by one write
    ... ])
    >>> bool(verify(h, 1)), bool(verify(h, 2))
    (False, True)
    >>> verify(h, 2).algorithm
    'FZF'
    """
    if k < 1:
        raise VerificationError(f"k must be a positive integer, got {k!r}")
    if preprocess and not history.is_empty:
        anomalies = find_anomalies(history)
        if anomalies:
            reasons = "; ".join(a.describe() for a in anomalies[:3])
            more = "" if len(anomalies) <= 3 else f" (+{len(anomalies) - 3} more)"
            return VerificationResult.no(
                k,
                "preprocess",
                reason=f"history contains anomalies that rule out k-atomicity: {reasons}{more}",
            )
        history = normalize(history)
    name = _select_algorithm(k, algorithm, history, max_exact_ops)
    spec = get_algorithm(name)
    if not spec.supports(k):
        raise VerificationError(
            f"algorithm {spec.name!r} cannot decide {k}-atomicity; "
            f"it supports k in {tuple(spec.supported_k)}"
        )
    return spec.run(history, k, columnar=columnar, kernel=kernel)


def verify_trace(
    trace: MultiHistory,
    k: int,
    *,
    algorithm: str = "auto",
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    executor: str = "serial",
    jobs: Optional[int] = None,
    columnar: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> Dict[Hashable, VerificationResult]:
    """Verify every per-register history of a multi-register trace.

    k-atomicity is a local property (Section II-B), so the trace is k-atomic
    iff every returned result is positive.  Verification is delegated to the
    sharded engine (:class:`repro.engine.Engine`); the default serial executor
    with a single round-robin shard reproduces the historical behaviour
    exactly — registers verified one by one, in trace order.  Pass
    ``executor="threads"``/``"processes"`` (and optionally ``jobs``) to verify
    registers in parallel, or use :class:`repro.engine.Engine` directly for
    the full report (per-shard timing, fail-fast, pluggable partitioning).
    """
    from ..engine import Engine  # local import; the engine builds on this module

    report = Engine(
        executor=executor,
        jobs=jobs,
        partitioner="round-robin" if executor == "serial" else "size-balanced",
        shards_per_job=1 if executor == "serial" else 2,
        algorithm=algorithm,
        preprocess=preprocess,
        max_exact_ops=max_exact_ops,
        columnar=columnar,
        kernel=kernel,
    ).verify_trace(trace, k)
    return dict(report.results)


@dataclass(frozen=True)
class MinimalKBound:
    """Structured answer to "what is the minimal staleness bound?".

    Attributes
    ----------
    k:
        The minimal staleness bound when :attr:`exact` is true; otherwise a
        certified *lower* bound (the history is not ``(k-1)``-atomic, but its
        true minimal bound may be larger).  ``None`` when the history contains
        anomalies, in which case no finite ``k`` exists.
    exact:
        Whether :attr:`k` is the exact minimal bound.
    reason:
        Human-readable explanation, non-empty whenever the answer is not an
        exact finite ``k``.
    """

    k: Optional[int]
    exact: bool
    reason: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.k is None:
            return "no finite k (anomalous)"
        return f"k = {self.k}" if self.exact else f"k >= {self.k}"


def minimal_k_bound(
    history: History,
    *,
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    max_k: Optional[int] = None,
) -> MinimalKBound:
    """Compute the minimal staleness bound, or a certified lower bound.

    This is the total (never-raising for large inputs) form of
    :func:`minimal_k`:

    * anomalous history → ``MinimalKBound(None, exact=True)`` — no finite
      ``k`` exists;
    * minimal bound 1 or 2 → exact, via the polynomial algorithms;
    * minimal bound >= 3 with at most ``max_exact_ops`` operations → exact,
      via binary search over the exponential oracle;
    * minimal bound >= 3 on a larger history → ``MinimalKBound(3,
      exact=False)``: a certified lower bound (the history is provably not
      2-atomic), with the exact search declined as infeasible.
    """
    if history.is_empty:
        return MinimalKBound(k=1, exact=True)
    if preprocess:
        if find_anomalies(history):
            return MinimalKBound(
                k=None,
                exact=True,
                reason="history contains anomalies; it is not k-atomic for any k",
            )
        history = normalize(history)
    if verify(history, 1, preprocess=False):
        return MinimalKBound(k=1, exact=True)
    if verify(history, 2, preprocess=False):
        return MinimalKBound(k=2, exact=True)
    if len(history) > max_exact_ops:
        return MinimalKBound(
            k=3,
            exact=False,
            reason=(
                f"history needs k >= 3 and has {len(history)} operations "
                f"(> max_exact_ops={max_exact_ops}); the exact search would be "
                "exponential and was not attempted"
            ),
        )
    upper = max_k if max_k is not None else max(1, len(history.writes))
    lo, hi = 3, upper
    if not verify(history, hi, algorithm="exact", preprocess=False):
        raise VerificationError(
            f"history unexpectedly not {hi}-atomic; was max_k set too low?"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if verify(history, mid, algorithm="exact", preprocess=False):
            hi = mid
        else:
            lo = mid + 1
    return MinimalKBound(k=lo, exact=True)


def minimal_k(
    history: History,
    *,
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    max_k: Optional[int] = None,
) -> Optional[int]:
    """Compute the smallest ``k`` for which ``history`` is k-atomic.

    Returns ``None`` when the history contains anomalies (no finite ``k``
    exists).  For ``k <= 2`` the polynomial algorithms are used; beyond that
    the exact oracle takes over.

    Raises
    ------
    VerificationError
        When the history needs ``k >= 3`` but has more than ``max_exact_ops``
        operations: the exact search would be exponential, so this function
        *does not return* in that case.  Callers that want a total answer —
        the certified lower bound ``k >= 3`` instead of an exception — should
        use :func:`minimal_k_bound`; callers that only need "1, 2, or more"
        can use :func:`repro.analysis.spectrum.staleness_bucket`.
    """
    bound = minimal_k_bound(
        history, preprocess=preprocess, max_exact_ops=max_exact_ops, max_k=max_k
    )
    if not bound.exact:
        raise VerificationError(bound.reason)
    return bound.k
