"""Unified verification API.

This module is the front door of the library: given a history (or a
multi-register trace) and a staleness bound ``k``, it picks an appropriate
algorithm, applies the Section II-C preprocessing when requested, and returns
a :class:`~repro.core.result.VerificationResult`.

Algorithm selection (``algorithm="auto"``):

* ``k = 1`` → Gibbons–Korach zone conditions,
* ``k = 2`` → FZF (worst-case ``O(n log n)``); LBT can be requested by name,
* ``k >= 3`` → the exact exponential oracle (no polynomial algorithm is known;
  the paper leaves this case open), guarded by ``max_exact_ops``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..algorithms.registry import get_algorithm
from .errors import VerificationError
from .history import History, MultiHistory
from .preprocess import find_anomalies, normalize
from .result import VerificationResult

__all__ = ["verify", "verify_trace", "minimal_k", "DEFAULT_MAX_EXACT_OPS"]

#: Histories larger than this are refused by the exact oracle in "auto" mode
#: (the caller can always invoke the oracle directly, or raise the limit).
DEFAULT_MAX_EXACT_OPS = 40


def _select_algorithm(k: int, algorithm: str, history: History, max_exact_ops: int) -> str:
    if algorithm != "auto":
        return algorithm
    if k == 1:
        return "gk"
    if k == 2:
        return "fzf"
    if len(history) > max_exact_ops:
        raise VerificationError(
            f"k={k} requires the exact (exponential) oracle, but the history has "
            f"{len(history)} operations (> max_exact_ops={max_exact_ops}); "
            "no polynomial algorithm for k >= 3 is known (the paper leaves it open). "
            "Pass algorithm='exact' or raise max_exact_ops to force the search."
        )
    return "exact"


def verify(
    history: History,
    k: int,
    *,
    algorithm: str = "auto",
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
) -> VerificationResult:
    """Decide whether ``history`` is k-atomic.

    Parameters
    ----------
    history:
        The single-register history to verify.
    k:
        The staleness bound (``k >= 1``).
    algorithm:
        ``"auto"`` (default) or one of the registered algorithm names
        (``"gk"``, ``"lbt"``, ``"lbt-reference"``, ``"fzf"``, ``"exact"``).
    preprocess:
        When true (default), anomalies yield an immediate NO verdict and the
        history is normalised (timestamp tie-breaking, write shortening)
        before verification, per Section II-C.
    max_exact_ops:
        Size guard for the automatic ``k >= 3`` fallback to the exponential
        oracle.

    Returns
    -------
    VerificationResult
    """
    if k < 1:
        raise VerificationError(f"k must be a positive integer, got {k!r}")
    if preprocess and not history.is_empty:
        anomalies = find_anomalies(history)
        if anomalies:
            reasons = "; ".join(a.describe() for a in anomalies[:3])
            more = "" if len(anomalies) <= 3 else f" (+{len(anomalies) - 3} more)"
            return VerificationResult.no(
                k,
                "preprocess",
                reason=f"history contains anomalies that rule out k-atomicity: {reasons}{more}",
            )
        history = normalize(history)
    name = _select_algorithm(k, algorithm, history, max_exact_ops)
    spec = get_algorithm(name)
    if not spec.supports(k):
        raise VerificationError(
            f"algorithm {spec.name!r} cannot decide {k}-atomicity; "
            f"it supports k in {tuple(spec.supported_k)}"
        )
    return spec.fn(history, k)


def verify_trace(
    trace: MultiHistory,
    k: int,
    *,
    algorithm: str = "auto",
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
) -> Dict[Hashable, VerificationResult]:
    """Verify every per-register history of a multi-register trace.

    k-atomicity is a local property (Section II-B), so the trace is k-atomic
    iff every returned result is positive.
    """
    return {
        key: verify(
            trace[key],
            k,
            algorithm=algorithm,
            preprocess=preprocess,
            max_exact_ops=max_exact_ops,
        )
        for key in trace.keys()
    }


def minimal_k(
    history: History,
    *,
    preprocess: bool = True,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    max_k: Optional[int] = None,
) -> Optional[int]:
    """Compute the smallest ``k`` for which ``history`` is k-atomic.

    Returns ``None`` when the history contains anomalies (no finite ``k``
    exists).  For ``k <= 2`` the polynomial algorithms are used; beyond that
    the exact oracle takes over, so for histories larger than
    ``max_exact_ops`` the function returns ``3`` as a *lower bound* flagged by
    raising :class:`~repro.core.errors.VerificationError` — callers that only
    need "1, 2, or more" should catch it or use
    :func:`repro.analysis.spectrum.staleness_bucket` instead.
    """
    if history.is_empty:
        return 1
    if preprocess:
        if find_anomalies(history):
            return None
        history = normalize(history)
    if verify(history, 1, preprocess=False):
        return 1
    if verify(history, 2, preprocess=False):
        return 2
    if len(history) > max_exact_ops:
        raise VerificationError(
            f"history needs k >= 3 and has {len(history)} operations "
            f"(> max_exact_ops={max_exact_ops}); the exact search would be exponential"
        )
    upper = max_k if max_k is not None else max(1, len(history.writes))
    lo, hi = 3, upper
    if not verify(history, hi, algorithm="exact", preprocess=False):
        raise VerificationError(
            f"history unexpectedly not {hi}-atomic; was max_k set too low?"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if verify(history, mid, algorithm="exact", preprocess=False):
            hi = mid
        else:
            lo = mid + 1
    return lo
