"""NumPy-vectorized kernel tier (the top of the ``object → columnar → numpy``
ladder).

The columnar kernels of :mod:`repro.core.columnar` removed the per-operation
attribute chases, but their sweeps are still Python ``for`` loops over
``array('d')`` columns — every comparison pays interpreter dispatch.  This
module ports the same kernels to vectorized numpy primitives (``lexsort``,
``searchsorted``, ``reduceat``, cumulative max, boolean masks):

* the Section II-C anomaly scan,
* cluster/zone table construction (:class:`ClusterTableNP`),
* the Gibbons–Korach forward-overlap and backward-in-forward sweeps,
* the FZF Stage-1 chunk decomposition (:class:`ChunkTableNP`) and the
  Stage-2/3 viability screen and witness stitching,
* the LBT setup columns (the epoch loops themselves are inherently
  sequential and unchanged).

Every kernel is an exact twin of its columnar counterpart — same verdicts,
same NO-reason strings, same witnesses, same stats — and the parity is
enforced by ``tests/test_columnar.py`` and the differential fuzz harness.
Rare irregular cases (non-trivial FZF chunks, timestamp ties during
normalisation) fall back to the columnar/object code paths, so vectorization
never changes an answer.

Kernel selection is tiered (:func:`resolve_kernel`): an explicit
``kernel=`` wins, then the legacy ``columnar`` boolean, then the process
defaults — ``numpy`` when importable and enabled, else ``columnar``, else
``object``.  numpy is an optional dependency at runtime: when it is missing,
:data:`NUMPY_AVAILABLE` is false, auto-selection skips the tier, and asking
for ``kernel="numpy"`` explicitly raises.

The module also provides the kernel-level entry point
:func:`verify_columnar`, which verifies a :class:`ColumnarHistory` *without
materialising Operation objects* — the hot path of the out-of-core ``.rcol``
backend (:mod:`repro.io.rcol`), including a vectorized replica of the
Section II-C normalisation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover
    np = None
    NUMPY_AVAILABLE = False

from .errors import VerificationError
from .result import VerificationResult

__all__ = [
    "NUMPY_AVAILABLE",
    "KERNELS",
    "available",
    "default_enabled",
    "set_default_enabled",
    "resolve_kernel",
    "ClusterTableNP",
    "ChunkTableNP",
    "cluster_table",
    "chunk_table",
    "has_anomalies",
    "gk_violation_np",
    "fzf_verdict_np",
    "gk_result_np",
    "fzf_result_np",
    "lbt_setup",
    "columnar_from_numpy",
    "verify_columnar",
]

#: The kernel tiers, slowest to fastest.
KERNELS = ("object", "columnar", "numpy")

# ----------------------------------------------------------------------
# Tier selection
# ----------------------------------------------------------------------
_DEFAULT_ENABLED = True


def available() -> bool:
    """Whether the numpy tier can run at all (numpy is importable)."""
    return NUMPY_AVAILABLE


def default_enabled() -> bool:
    """Whether auto-selection may pick the numpy tier."""
    return _DEFAULT_ENABLED


def set_default_enabled(enabled: bool) -> bool:
    """Set the process-wide numpy-tier default; returns the previous value.

    The columnar and object paths remain the reference implementations; this
    switch exists for benchmarks, parity tests and ``repro verify --kernel``.
    """
    global _DEFAULT_ENABLED
    previous = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)
    return previous


def resolve_kernel(
    kernel: Optional[str] = None, columnar_path: Optional[bool] = None
) -> str:
    """Resolve the kernel tier for one verifier call.

    Precedence: an explicit ``kernel`` name wins; else the legacy ``columnar``
    boolean maps ``True → "columnar"`` / ``False → "object"``; else the
    process defaults pick the fastest enabled tier (``numpy`` when importable
    and :func:`default_enabled`, else ``columnar`` when
    :func:`repro.core.columnar.default_enabled`, else ``object``).

    Asking for ``kernel="numpy"`` when numpy is not importable raises
    :class:`~repro.core.errors.VerificationError` — auto-selection never
    picks an unavailable tier, so the error only fires on explicit requests.
    """
    from . import columnar as _columnar

    if kernel is not None:
        key = str(kernel).strip().lower()
        if key not in KERNELS:
            raise VerificationError(
                f"unknown kernel {kernel!r}; available: {', '.join(KERNELS)}"
            )
        if key == "numpy" and not NUMPY_AVAILABLE:
            raise VerificationError(
                "kernel='numpy' was requested but numpy is not importable; "
                "install numpy or pick kernel='columnar'/'object'"
            )
        return key
    if columnar_path is not None:
        return "columnar" if columnar_path else "object"
    if not _columnar.default_enabled():
        return "object"
    if NUMPY_AVAILABLE and _DEFAULT_ENABLED:
        return "numpy"
    return "columnar"


# ----------------------------------------------------------------------
# Zero-copy column views and per-encoding derived state
# ----------------------------------------------------------------------
def _as_np(buf, dtype):
    """A zero-copy numpy view of a column (array/bytearray/ndarray/memmap)."""
    if isinstance(buf, np.ndarray):
        return buf if buf.dtype == dtype else buf.astype(dtype)
    return np.frombuffer(buf, dtype=dtype)


class _Columns:
    """Numpy views over a ColumnarHistory's kernel columns (zero-copy)."""

    __slots__ = (
        "start",
        "finish",
        "is_write",
        "value_id",
        "op_ids",
        "dictating",
        "write_ord",
        "writes",
        "reads",
    )

    def __init__(self, col):
        self.start = _as_np(col.start, np.float64)
        self.finish = _as_np(col.finish, np.float64)
        self.is_write = _as_np(col.is_write, np.uint8)
        self.value_id = _as_np(col.value_id, np.int32)
        self.op_ids = _as_np(col.op_ids, np.int64)
        self.dictating = _as_np(col.dictating, np.int32)
        self.write_ord = _as_np(col.write_ord, np.int32)
        self.writes = np.flatnonzero(self.is_write)
        self.reads = np.flatnonzero(self.is_write == 0)


class _VectorState:
    """Numpy-side derived structures, memoized on the encoding."""

    __slots__ = ("columns", "clusters", "chunks")

    def __init__(self):
        self.columns: Optional[_Columns] = None
        self.clusters: Optional["ClusterTableNP"] = None
        self.chunks: Optional["ChunkTableNP"] = None


def _state(col) -> _VectorState:
    vs = col._vector
    if vs is None:
        vs = col._vector = _VectorState()
    return vs


def _columns(col) -> _Columns:
    vs = _state(col)
    if vs.columns is None:
        vs.columns = _Columns(col)
    return vs.columns


class _SparseOps(dict):
    """Lazy decoded-operation cache that never allocates O(n) slots.

    ``ColumnarHistory._ops`` is a ``[None] * n`` list when built eagerly;
    memmap-backed encodings of multi-million-operation registers use this
    dict view instead, so decoding a handful of operations (a NO-reason, an
    anomaly description) does not cost a full-length list.
    """

    def __missing__(self, index):
        return None


# ----------------------------------------------------------------------
# Anomaly scan (Section II-C)
# ----------------------------------------------------------------------
def _scan_anomalies_np(col) -> bool:
    c = _columns(col)
    r = c.reads
    if not r.size:
        return False
    d = c.dictating[r]
    if bool((d < 0).any()):
        return True
    return bool((c.finish[r] < c.start[d]).any())


def has_anomalies(col) -> bool:
    """Vectorized twin of :meth:`ColumnarHistory.has_anomalies` (shared memo)."""
    if col._anomalous is None:
        col._anomalous = _scan_anomalies_np(col)
    return col._anomalous


# ----------------------------------------------------------------------
# Cluster/zone table (twin of columnar.ClusterArrays)
# ----------------------------------------------------------------------
class ClusterTableNP:
    """Struct-of-ndarray cluster table, sorted like ``build_clusters``.

    Same contents and sort order as :class:`repro.core.columnar.ClusterArrays`
    — ``(low, high, write op id)`` ascending — with the per-cluster read lists
    flattened into a CSR pair (``reads_sorted``/``reads_off``); cluster ``c``'s
    reads are ``reads_sorted[reads_off[c]:reads_off[c+1]]``, ascending.
    """

    __slots__ = (
        "num",
        "write",
        "min_finish",
        "max_start",
        "low",
        "high",
        "forward",
        "reads_sorted",
        "reads_off",
        "cluster_of_write_ord",
    )


def cluster_table(col) -> ClusterTableNP:
    """The numpy cluster table of the encoding (memoized)."""
    vs = _state(col)
    if vs.clusters is None:
        vs.clusters = _build_cluster_table(col)
    return vs.clusters


def _build_cluster_table(col) -> ClusterTableNP:
    c = _columns(col)
    writes = c.writes
    num = int(writes.size)
    min_finish = c.finish[writes].astype(np.float64)
    max_start = c.start[writes].astype(np.float64)
    reads = c.reads
    ordinal = None
    if reads.size:
        d = c.dictating[reads]
        neg = np.flatnonzero(d < 0)
        if neg.size:
            from .errors import HistoryError

            i = int(reads[int(neg[0])])
            raise HistoryError(
                f"read #{int(c.op_ids[i])} has no dictating write; normalise "
                "the history with repro.core.preprocess.normalize() first"
            )
        ordinal = c.write_ord[d].astype(np.int64)
        order_r = np.argsort(ordinal, kind="stable")
        sorted_ord = ordinal[order_r]
        grp = np.flatnonzero(
            np.concatenate(([True], sorted_ord[1:] != sorted_ord[:-1]))
        )
        uniq = sorted_ord[grp]
        gmin = np.minimum.reduceat(c.finish[reads[order_r]], grp)
        gmax = np.maximum.reduceat(c.start[reads[order_r]], grp)
        min_finish[uniq] = np.minimum(min_finish[uniq], gmin)
        max_start[uniq] = np.maximum(max_start[uniq], gmax)
    low = np.minimum(min_finish, max_start)
    high = np.maximum(min_finish, max_start)
    order_c = np.lexsort((c.op_ids[writes], high, low))
    inv = np.empty(num, dtype=np.int64)
    inv[order_c] = np.arange(num, dtype=np.int64)

    ct = ClusterTableNP()
    ct.num = num
    ct.write = writes[order_c]
    ct.min_finish = min_finish[order_c]
    ct.max_start = max_start[order_c]
    ct.low = low[order_c]
    ct.high = high[order_c]
    ct.forward = ct.min_finish < ct.max_start
    ct.cluster_of_write_ord = inv
    if reads.size:
        cl_of_read = inv[ordinal]
        # reads is ascending, so a stable sort by cluster keeps each group in
        # ascending op-index order — the object path's per-cluster read order.
        o2 = np.argsort(cl_of_read, kind="stable")
        ct.reads_sorted = reads[o2]
        counts = np.bincount(cl_of_read, minlength=num)
    else:
        ct.reads_sorted = np.empty(0, dtype=np.int64)
        counts = np.zeros(num, dtype=np.int64)
    ct.reads_off = np.concatenate(
        ([0], np.cumsum(counts, dtype=np.int64))
    )
    return ct


# ----------------------------------------------------------------------
# Gibbons–Korach sweeps
# ----------------------------------------------------------------------
def gk_violation_np(col) -> Optional[Tuple[str, int, int]]:
    """Vectorized twin of :func:`repro.core.columnar.gk_violation`.

    Returns ``(condition, cluster_a, cluster_b)`` with indices into the
    (identically sorted) cluster table, or ``None`` when 1-atomic.  The pair
    reported for each condition matches the columnar/object sweeps exactly.
    """
    ct = cluster_table(col)
    fidx = np.flatnonzero(ct.forward)
    if not fidx.size:
        return None
    fl = ct.low[fidx]
    fh = ct.high[fidx]
    running = np.maximum.accumulate(fh)
    if fidx.size > 1:
        # Condition 1: a forward zone starting at or before the running max
        # high endpoint of the earlier forward zones overlaps one of them.
        viol = np.flatnonzero(fl[1:] <= running[:-1])
        if viol.size:
            j = int(viol[0]) + 1
            # The loop's `prev` is the last position where the running max was
            # updated strictly before j (position 0 always updates it).
            upd = np.flatnonzero(
                np.concatenate(([True], fh[1:] > running[:-1]))
            )
            p = int(upd[np.searchsorted(upd, j) - 1])
            return ("forward-overlap", int(fidx[p]), int(fidx[j]))
    bidx = np.flatnonzero(~ct.forward)
    if bidx.size:
        # Condition 2: after condition 1 passes the forward zones are pairwise
        # disjoint and sorted, so their highs are strictly increasing and the
        # merge scan's persistent pointer is exactly a searchsorted.
        bl = ct.low[bidx]
        bh = ct.high[bidx]
        pos = np.searchsorted(fh, bl, side="left")
        safe = np.minimum(pos, fidx.size - 1)
        hit = (pos < fidx.size) & (fl[safe] <= bl) & (bh <= fh[safe])
        hits = np.flatnonzero(hit)
        if hits.size:
            j = int(hits[0])
            return ("backward-in-forward", int(fidx[int(pos[j])]), int(bidx[j]))
    return None


# ----------------------------------------------------------------------
# FZF Stage 1: chunk decomposition
# ----------------------------------------------------------------------
class ChunkTableNP:
    """Vectorized chunk decomposition (twin of ``chunk_decomposition``).

    ``fidx`` lists the forward-cluster indices in cluster order;
    ``chain_starts[i]`` is the offset in ``fidx`` where chunk ``i`` begins and
    ``chain_low``/``chain_high`` its continuous forward interval.  ``bidx``
    lists the backward-cluster indices and ``b_chunk`` the chunk each one
    belongs to (``-1`` = dangling).
    """

    __slots__ = ("fidx", "chain_starts", "chain_low", "chain_high", "bidx", "b_chunk")

    @property
    def num_chunks(self) -> int:
        return int(self.chain_starts.size)


def chunk_table(col) -> ChunkTableNP:
    """The numpy chunk decomposition of the encoding (memoized)."""
    vs = _state(col)
    if vs.chunks is None:
        vs.chunks = _build_chunk_table(col)
    return vs.chunks


def _build_chunk_table(col) -> ChunkTableNP:
    ct = cluster_table(col)
    ch = ChunkTableNP()
    ch.fidx = np.flatnonzero(ct.forward)
    ch.bidx = np.flatnonzero(~ct.forward)
    if ch.fidx.size:
        fl = ct.low[ch.fidx]
        fh = ct.high[ch.fidx]
        # Chain maxima increase chunk over chunk, so the within-chain running
        # max high endpoint equals the global one — a new chain starts exactly
        # where a forward zone clears the cumulative max.
        running = np.maximum.accumulate(fh)
        new_chain = np.concatenate(([True], fl[1:] > running[:-1]))
        ch.chain_starts = np.flatnonzero(new_chain)
        ch.chain_low = fl[ch.chain_starts]
        ch.chain_high = np.maximum.reduceat(fh, ch.chain_starts)
    else:
        ch.chain_starts = np.empty(0, dtype=np.int64)
        ch.chain_low = np.empty(0, dtype=np.float64)
        ch.chain_high = np.empty(0, dtype=np.float64)
    if ch.bidx.size and ch.chain_starts.size:
        bl = ct.low[ch.bidx]
        bh = ct.high[ch.bidx]
        pos = np.searchsorted(ch.chain_low, bl, side="right") - 1
        safe = np.maximum(pos, 0)
        ok = (pos >= 0) & (bh <= ch.chain_high[safe])
        ch.b_chunk = np.where(ok, pos, -1)
    else:
        ch.b_chunk = np.full(ch.bidx.size, -1, dtype=np.int64)
    return ch


# ----------------------------------------------------------------------
# FZF Stages 2/3
# ----------------------------------------------------------------------
def _csr_gather(values, starts, counts):
    """Concatenate ``values[starts[i]:starts[i]+counts[i]]`` slices."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=values.dtype)
    before = np.concatenate(([0], np.cumsum(counts)))[:-1]
    src = np.arange(total, dtype=np.int64) + np.repeat(starts - before, counts)
    return values[src]


def fzf_verdict_np(col):
    """Vectorized twin of :func:`repro.core.columnar.fzf_verdict`.

    Same verdict, reason string, stats and (op-index) witness.  Trivial
    chunks — a lone forward cluster, no backward clusters — and dangling
    clusters are handled entirely with array ops; the rare irregular chunks
    reuse the columnar candidate-order/viability machinery per chunk.
    """
    from .columnar import FZFOutcome, _candidate_orders_columnar, _check_viable_columnar

    ct = cluster_table(col)
    ch = chunk_table(col)
    nch = ch.num_chunks
    cs_ext = np.concatenate((ch.chain_starts, [ch.fidx.size]))
    nf = np.diff(cs_ext)
    dangling_mask = ch.b_chunk < 0
    num_dangling = int(dangling_mask.sum())
    if nch:
        nb = np.bincount(ch.b_chunk[~dangling_mask], minlength=nch)
    else:
        nb = np.zeros(0, dtype=np.int64)
    stats = {
        "chunks": nch,
        "dangling_clusters": num_dangling,
        "orders_tested": 0,
    }
    roff = ct.reads_off
    rsorted = ct.reads_sorted
    trivial = (nf == 1) & (nb == 0)
    nontrivial = np.flatnonzero(~trivial)

    if not nontrivial.size:
        # Fully regular history: every chunk is a lone forward cluster (one
        # candidate order, always viable).  Stitch the chunk and dangling
        # pieces — each "write, then its reads" — ordered by zone low
        # endpoint, ties resolved by insertion order exactly like the object
        # path's stable sort.
        piece_cl = np.concatenate(
            (ch.fidx[ch.chain_starts], ch.bidx[dangling_mask])
        )
        order = np.argsort(ct.low[piece_cl], kind="stable")
        pc = piece_cl[order]
        counts = roff[pc + 1] - roff[pc]
        total_reads = int(counts.sum())
        out = np.empty(int(pc.size) + total_reads, dtype=np.int64)
        piece_off = np.concatenate(([0], np.cumsum(counts + 1)))
        wpos = piece_off[:-1]
        out[wpos] = ct.write[pc]
        if total_reads:
            mask = np.ones(out.size, dtype=bool)
            mask[wpos] = False
            out[mask] = _csr_gather(rsorted, roff[pc], counts)
        stats["orders_tested"] = nch
        return FZFOutcome(True, out, "", stats)

    # Irregular history.  Chunks that are a pure forward *chain* (nf >= 2,
    # no backward clusters) are batch-checked against their first candidate
    # order — the chain order itself — with closed-form conditions
    # (:func:`_chain_order_check`); only chunks with backward clusters and
    # chains whose first order fails fall back to the per-chunk columnar
    # viability machinery, in chunk order so failure reporting and the
    # ``orders_tested`` accounting stay identical to the sequential path.
    def reads_list(c: int) -> List[int]:
        return rsorted[int(roff[c]) : int(roff[c + 1])].tolist()

    chain_mask = (nf >= 2) & (nb == 0)
    chain_pass, chain_ops_arr, chain_pid = _chain_order_check(col, ct, ch, chain_mask)

    # Chunks contributing exactly one tested order without Python work:
    # trivial chunks and batch-passed chains.
    auto = trivial | (chain_mask & chain_pass)
    auto_cum = np.concatenate(([0], np.cumsum(auto)))
    python_chunks = np.flatnonzero(~trivial & ~auto)
    extra_orders = 0
    fallback_ops: List[np.ndarray] = []
    fallback_pid: List[np.ndarray] = []
    for i in python_chunks.tolist():
        base = int(auto_cum[i]) + extra_orders
        f_cl = ch.fidx[int(cs_ext[i]) : int(cs_ext[i + 1])]
        b_cl = ch.bidx[ch.b_chunk == i]
        if b_cl.size >= 3:
            stats["orders_tested"] = base
            return FZFOutcome(
                False,
                None,
                (
                    f"chunk spanning [{float(ch.chain_low[i]):g}, "
                    f"{float(ch.chain_high[i]):g}] "
                    f"contains {int(b_cl.size)} backward clusters (>= 3), "
                    "so no viable write order exists (Lemma 4.3)"
                ),
                stats,
            )
        clusters = np.concatenate((f_cl, b_cl))
        counts = roff[clusters + 1] - roff[clusters]
        chunk_ops = np.sort(
            np.concatenate(
                (ct.write[clusters], _csr_gather(rsorted, roff[clusters], counts))
            )
        ).tolist()
        tf = tuple(int(w) for w in ct.write[f_cl])
        backward_writes = [int(w) for w in ct.write[b_cl]]
        reads_of_write = {int(ct.write[c]): reads_list(int(c)) for c in clusters}
        orders = _candidate_orders_columnar(tf, backward_writes)
        tested = 0
        if chain_mask[i]:
            # The chain order (orders[0]) already failed the batch check.
            orders = orders[1:]
            tested = 1
        chunk_witness: Optional[List[int]] = None
        for order in orders:
            tested += 1
            extended = _check_viable_columnar(col, order, chunk_ops, reads_of_write)
            if extended is not None:
                chunk_witness = [int(op) for op in extended]
                break
        if chunk_witness is None:
            stats["orders_tested"] = base + tested
            return FZFOutcome(
                False,
                None,
                (
                    f"no candidate write order is viable for the chunk spanning "
                    f"[{float(ch.chain_low[i]):g}, {float(ch.chain_high[i]):g}] "
                    f"({int(f_cl.size)} forward / "
                    f"{int(b_cl.size)} backward clusters)"
                ),
                stats,
            )
        extra_orders += tested
        fallback_ops.append(np.asarray(chunk_witness, dtype=np.int64))
        fallback_pid.append(np.full(len(chunk_witness), i, dtype=np.int64))

    # Assemble the witness: every chunk (and dangling cluster) is a "piece"
    # keyed by its zone low endpoint; pieces sort stably by that key with
    # insertion order chunks-then-dangling, exactly like the object path.
    tidx = np.flatnonzero(trivial)
    tcl = ch.fidx[ch.chain_starts[tidx]]
    tcounts = roff[tcl + 1] - roff[tcl]
    trivial_ops = np.empty(int(tcl.size) + int(tcounts.sum()), dtype=np.int64)
    toff = np.concatenate(([0], np.cumsum(tcounts + 1)))
    twpos = toff[:-1]
    trivial_ops[twpos] = ct.write[tcl]
    if trivial_ops.size > tcl.size:
        tmask = np.ones(trivial_ops.size, dtype=bool)
        tmask[twpos] = False
        trivial_ops[tmask] = _csr_gather(rsorted, roff[tcl], tcounts)
    trivial_pid = np.repeat(tidx, tcounts + 1)

    dcl = ch.bidx[dangling_mask]
    dcounts = roff[dcl + 1] - roff[dcl]
    dangling_ops = np.empty(int(dcl.size) + int(dcounts.sum()), dtype=np.int64)
    doff = np.concatenate(([0], np.cumsum(dcounts + 1)))
    dwpos = doff[:-1]
    dangling_ops[dwpos] = ct.write[dcl]
    if dangling_ops.size > dcl.size:
        dmask = np.ones(dangling_ops.size, dtype=bool)
        dmask[dwpos] = False
        dangling_ops[dmask] = _csr_gather(rsorted, roff[dcl], dcounts)
    dangling_pid = np.repeat(nch + np.arange(dcl.size, dtype=np.int64), dcounts + 1)

    all_ops = np.concatenate(
        [trivial_ops, chain_ops_arr, *fallback_ops, dangling_ops]
    )
    all_pid = np.concatenate(
        [trivial_pid, chain_pid, *fallback_pid, dangling_pid]
    )
    piece_low = np.concatenate((ch.chain_low, ct.low[dcl]))
    piece_rank = np.empty(piece_low.size, dtype=np.int64)
    piece_rank[np.argsort(piece_low, kind="stable")] = np.arange(piece_low.size)
    witness = all_ops[np.argsort(piece_rank[all_pid], kind="stable")]
    stats["orders_tested"] = int(auto_cum[-1]) + extra_orders
    return FZFOutcome(True, witness, "", stats)


def _segmented_suffix_min(values, off, lengths):
    """Per-segment suffix minimum of ``values`` (segments are contiguous).

    ``off``/``lengths`` delimit the segments.  Iterates over *positions*
    (bounded by the longest segment) when segments are short, over *segments*
    when a few long chains would make the position loop degenerate; both
    variants are exact.
    """
    out = values.copy()
    if not out.size:
        return out
    maxm = int(lengths.max())
    if maxm <= max(64, int(lengths.size)):
        for p in range(maxm - 2, -1, -1):
            idx = off[lengths > p + 1] + p
            out[idx] = np.minimum(out[idx], out[idx + 1])
    else:
        for t in range(int(lengths.size)):
            s, e = int(off[t]), int(off[t]) + int(lengths[t])
            out[s:e] = np.minimum.accumulate(out[s:e][::-1])[::-1]
    return out


def _chain_order_check(col, ct, ch, chain_mask):
    """Batched viability of the *chain order* for pure-forward chunks.

    For a chunk with forward clusters ``w_0..w_{m-1}`` (chain order) and no
    backward clusters, the first candidate order FZF tests is the chain
    itself, and the reverse-greedy viability check of
    :func:`~repro.core.columnar._check_viable_columnar` has a closed form.
    With ``sufmin[i] = min(finish[w_i..w_{m-1}])``:

    * a write ``w_j`` survives iff no later write's zone lets an operation
      start after ``w_j``'s finish — ``sufmin[j+1] >= start[w_j]``;
    * a read dictated by ``w_j`` survives iff it is claimed no later than
      step ``j+1`` — ``sufmin[j+2] >= start[r]``;
    * a surviving read lands in segment ``j+1`` iff ``finish[w_{j+1}] <
      start[r]`` (claimed by the successor's suffix scan as a
      predecessor-read), else in segment ``j``.

    Returns ``(chain_pass, ops, pid)``: a per-chunk pass mask plus the
    witness operations of every passing chunk in final piece order with
    their chunk ids (empty arrays when no chunk passes).
    """
    nch = ch.num_chunks
    chain_pass = np.zeros(nch, dtype=bool)
    empty = np.empty(0, dtype=np.int64)
    chain_ids = np.flatnonzero(chain_mask)
    if not chain_ids.size:
        return chain_pass, empty, empty
    cols = _columns(col)
    roff = ct.reads_off
    rsorted = ct.reads_sorted
    cs = ch.chain_starts

    m = np.diff(np.concatenate((cs, [ch.fidx.size])))[chain_ids]
    off = np.concatenate(([0], np.cumsum(m)))[:-1]
    total = int(m.sum())
    cl = _csr_gather(ch.fidx, cs[chain_ids], m)  # clusters, chain-concatenated
    wop = ct.write[cl]
    ws = cols.start[wop]
    wf = cols.finish[wop]
    sufmin = _segmented_suffix_min(wf, off, m)

    pos_in = np.arange(total, dtype=np.int64) - np.repeat(off, m)
    m_el = np.repeat(m, m)
    chain_of = np.repeat(np.arange(chain_ids.size, dtype=np.int64), m)
    fail = np.zeros(chain_ids.size, dtype=bool)

    # Write condition (positions with a successor).
    has_next = pos_in < m_el - 1
    idx = np.flatnonzero(has_next)
    bad_w = idx[sufmin[idx + 1] < ws[idx]]
    fail[chain_of[bad_w]] = True

    # Read conditions.
    counts = roff[cl + 1] - roff[cl]
    rops = _csr_gather(rsorted, roff[cl], counts)
    if rops.size:
        rstart = cols.start[rops]
        rj = np.repeat(pos_in, counts)
        rm = np.repeat(m_el, counts)
        rgpos = np.repeat(np.arange(total, dtype=np.int64), counts)
        rchain = np.repeat(chain_of, counts)
        deep = rj <= rm - 3  # a step >= j+2 exists
        safe2 = np.minimum(rgpos + 2, total - 1)
        bad_r = deep & (sufmin[safe2] < rstart)
        fail[rchain[bad_r]] = True

    chain_pass[chain_ids[~fail]] = True
    el_pass = ~fail[chain_of]
    if not el_pass.any():
        return chain_pass, empty, empty

    # Witness assembly for passing chains: reads go to segment j, or j+1
    # when the successor write finishes before they start; each segment is
    # its write followed by its reads ascending — i.e. order by
    # (chunk, segment, write-before-reads, op index).
    w_keep = np.flatnonzero(el_pass)
    parts_ops = [wop[w_keep]]
    parts_seg = [pos_in[w_keep]]
    parts_tag = [np.zeros(w_keep.size, dtype=np.int8)]
    parts_cid = [chain_of[w_keep]]
    if rops.size:
        r_keep = np.flatnonzero(np.repeat(el_pass, counts))
        if r_keep.size:
            rk_j = rj[r_keep]
            has_succ = rk_j <= rm[r_keep] - 2
            safe1 = np.minimum(rgpos[r_keep] + 1, total - 1)
            rseg = rk_j + (has_succ & (wf[safe1] < rstart[r_keep]))
            parts_ops.append(rops[r_keep])
            parts_seg.append(rseg)
            parts_tag.append(np.ones(r_keep.size, dtype=np.int8))
            parts_cid.append(rchain[r_keep])
    ops = np.concatenate(parts_ops)
    seg = np.concatenate(parts_seg)
    tag = np.concatenate(parts_tag)
    cid = np.concatenate(parts_cid)
    order = np.lexsort((ops, tag, seg, cid))
    return chain_pass, ops[order], chain_ids[cid[order]]


# ----------------------------------------------------------------------
# Result-level wrappers (identical strings/stats to gk.py / fzf.py)
# ----------------------------------------------------------------------
_GK = "GK"
_FZF = "FZF"


def gk_result_np(col) -> VerificationResult:
    """GK verdict over an encoding, vectorized end to end (non-empty input).

    Twin of :func:`repro.algorithms.gk._verify_1atomic_columnar`, with the
    NO-reason clusters decoded from the numpy table instead of the Python
    one (no O(n) object work on the NO path).
    """
    from .zones import Zone

    if has_anomalies(col):
        return VerificationResult.no(
            1, _GK, reason="history contains Section II-C anomalies"
        )
    violation = gk_violation_np(col)
    stats = {"clusters": col.num_writes}
    if violation is None:
        return VerificationResult.yes(
            1,
            _GK,
            reason="no overlapping forward zones and no backward zone inside a forward zone",
            stats=stats,
        )
    condition, a, b = violation
    ct = cluster_table(col)

    def zone(c: int) -> Zone:
        return Zone(
            min_finish=float(ct.min_finish[c]), max_start=float(ct.max_start[c])
        )

    def value(c: int) -> Hashable:
        return col.value_of(int(ct.write[c]))

    return VerificationResult.no(
        1,
        _GK,
        reason=(
            f"{condition}: cluster of value {value(a)!r} "
            f"(zone {zone(a)!r}) conflicts "
            f"with cluster of value {value(b)!r} "
            f"(zone {zone(b)!r})"
        ),
        stats=stats,
    )


def fzf_result_np(col, *, decode_witness: bool = True) -> VerificationResult:
    """FZF verdict over an encoding (non-empty, not pre-normalised input).

    With ``decode_witness=False`` the YES witness is left undecoded (``None``)
    so multi-million-operation memmap-backed registers never materialise
    Operation objects; verdict, reason and stats are unaffected.
    """
    if has_anomalies(col):
        return VerificationResult.no(
            2, _FZF, reason="history contains Section II-C anomalies"
        )
    outcome = fzf_verdict_np(col)
    if not outcome.ok:
        return VerificationResult.no(
            2, _FZF, reason=outcome.reason, stats=outcome.stats
        )
    if not decode_witness:
        return VerificationResult.yes(2, _FZF, witness=None, stats=outcome.stats)
    return VerificationResult.yes(
        2,
        _FZF,
        witness=col.operations(int(i) for i in outcome.witness),
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# LBT setup columns
# ----------------------------------------------------------------------
def lbt_setup(history) -> Dict[str, list]:
    """Vectorized construction of :class:`LBTChecker`'s index columns.

    Returns plain Python lists (the epoch loops index Python lists faster
    than numpy scalars) with exactly the contents the object-path setup
    builds: ``h_starts``, ``h_is_write``, ``h_of_w`` (writes sorted by
    ``(finish, op_id)``), ``w_starts``/``w_finishes``, ``dictated_of_w`` and
    ``dictating_w_of_h``.
    """
    from .columnar import columnar_of

    col = columnar_of(history)
    c = _columns(col)
    writes = c.writes
    order = np.lexsort((c.op_ids[writes], c.finish[writes]))
    h_of_w = writes[order]
    rank_of_ord = np.empty(writes.size, dtype=np.int64)
    rank_of_ord[order] = np.arange(writes.size, dtype=np.int64)
    reads = c.reads
    dictating_w_of_h = np.full(col.n, -1, dtype=np.int64)
    dictated_of_w: List[List[int]] = [[] for _ in range(int(writes.size))]
    if reads.size:
        # Reads of never-written values keep -1, exactly like the object
        # setup (verify() reports the anomaly before the columns matter).
        d = c.dictating[reads]
        reads = reads[d >= 0]
    if reads.size:
        wi_of_read = rank_of_ord[c.write_ord[c.dictating[reads]]]
        dictating_w_of_h[reads] = wi_of_read
        o2 = np.argsort(wi_of_read, kind="stable")
        reads_sorted = reads[o2]
        counts = np.bincount(wi_of_read, minlength=int(writes.size))
        off = np.concatenate(([0], np.cumsum(counts)))
        for wi in range(int(writes.size)):
            dictated_of_w[wi] = reads_sorted[off[wi] : off[wi + 1]].tolist()
    return {
        "h_starts": c.start.tolist(),
        "h_is_write": (c.is_write != 0).tolist(),
        "h_of_w": h_of_w.tolist(),
        "w_starts": c.start[h_of_w].tolist(),
        "w_finishes": c.finish[h_of_w].tolist(),
        "dictated_of_w": dictated_of_w,
        "dictating_w_of_h": dictating_w_of_h.tolist(),
    }


# ----------------------------------------------------------------------
# Building encodings straight from numpy columns (the .rcol read path)
# ----------------------------------------------------------------------
def columnar_from_numpy(
    *,
    key: Optional[Hashable],
    start,
    finish,
    is_write,
    value_id,
    values,
    op_ids,
    weights=None,
    client_id=None,
    clients=None,
    has_key: bool = True,
):
    """Build a :class:`ColumnarHistory` from (possibly memmap-backed) columns.

    The vectorized twin of ``ColumnarHistory.from_rows`` for pre-sorted,
    pre-validated columns: the derived links (writer table, dictating
    indices, write ordinals) are built with array ops instead of Python
    loops, and the decoded-operation cache is sparse, so constructing the
    encoding of a multi-million-operation register allocates a few index
    arrays — never a per-operation object.

    ``values`` may be any sequence (including a lazily-decoding one); only
    duplicate-write errors and per-operation decoding index into it.
    """
    from .columnar import ColumnarHistory
    from .errors import DuplicateValueError

    n = int(start.shape[0])
    col = ColumnarHistory()
    col.key = key
    col.n = n
    col.start = start
    col.finish = finish
    col.is_write = is_write
    col.has_key = (
        np.ones(n, dtype=np.uint8) if has_key else np.zeros(n, dtype=np.uint8)
    )
    col.value_id = value_id
    col.op_ids = op_ids
    col.values = values
    col.weights = (
        weights if weights is not None else np.ones(n, dtype=np.int64)
    )
    if client_id is not None:
        col.client_id = client_id
        col.clients = list(clients or [])
    else:
        col.client_id = np.full(n, -1, dtype=np.int32)
        col.clients = []
    col._ops = _SparseOps()

    iw = _as_np(is_write, np.uint8)
    vid = _as_np(value_id, np.int32)
    writes = np.flatnonzero(iw)
    wvals = vid[writes]
    if writes.size:
        order = np.argsort(wvals, kind="stable")
        sv = wvals[order]
        dup = np.flatnonzero(sv[1:] == sv[:-1])
        if dup.size:
            # Report the same pair as the sequential scan: it trips on the
            # globally earliest *second* write of any duplicated value, and
            # pairs it with that value's first write.
            seconds = writes[order[dup + 1]]
            j = int(dup[int(np.argmin(seconds))])
            first, second = int(writes[order[j]]), int(writes[order[j + 1]])
            raise DuplicateValueError(
                f"two writes assign the value {values[int(sv[j])]!r} "
                f"(operations #{int(op_ids[first])} and "
                f"#{int(op_ids[second])}); the model requires uniquely-valued "
                "writes (Section II-C)"
            )
    write_of_value = np.full(len(values), -1, dtype=np.int32)
    write_of_value[wvals] = writes.astype(np.int32)
    write_ord = np.where(
        iw != 0, np.cumsum(iw, dtype=np.int64) - 1, -1
    ).astype(np.int32)
    dictating = np.where(
        iw != 0, np.arange(n, dtype=np.int32), write_of_value[vid]
    )
    col.write_of_value = write_of_value
    col.write_ord = write_ord
    col.dictating = dictating
    col.writes_idx = writes
    return col


def _with_finish(col, finish):
    """A normalised sibling of ``col`` sharing every column except finish."""
    from .columnar import ColumnarHistory

    # Encodings built from a History defer the decode-only columns; the
    # sibling decodes lazily, so it needs them materialised.
    col._ensure_decode_columns()
    out = ColumnarHistory()
    out.key = col.key
    out.n = col.n
    out.start = col.start
    out.finish = finish
    out.is_write = col.is_write
    out.has_key = col.has_key
    out.value_id = col.value_id
    out.client_id = col.client_id
    out.op_ids = col.op_ids
    out.weights = col.weights
    out.values = col.values
    out.clients = col.clients
    # The derived links are timestamp-independent; share them.
    out.write_of_value = col.write_of_value
    out.dictating = col.dictating
    out.write_ord = col.write_ord
    out.writes_idx = col.writes_idx
    out._ops = _SparseOps() if isinstance(col._ops, _SparseOps) else [None] * col.n
    return out


# ----------------------------------------------------------------------
# Kernel-level verification (no Operation materialisation)
# ----------------------------------------------------------------------
def _anomaly_result_np(col, k: int) -> Optional[VerificationResult]:
    """Replicate ``api.verify``'s preprocess NO verdict, decoding only the
    (at most three) described anomalies."""
    c = _columns(col)
    r = c.reads
    if not r.size:
        return None
    d = c.dictating[r]
    bad = (d < 0) | (c.finish[r] < c.start[np.maximum(d, 0)])
    idx = np.flatnonzero(bad)
    if not idx.size:
        return None
    from .preprocess import Anomaly, AnomalyKind

    described = []
    for j in idx[:3].tolist():
        read_op = col.operation(int(r[j]))
        w = int(d[j])
        if w < 0:
            described.append(Anomaly(AnomalyKind.READ_WITHOUT_WRITE, read_op))
        else:
            described.append(
                Anomaly(AnomalyKind.READ_BEFORE_WRITE, read_op, col.operation(w))
            )
    reasons = "; ".join(a.describe() for a in described)
    more = "" if idx.size <= 3 else f" (+{int(idx.size) - 3} more)"
    return VerificationResult.no(
        k,
        "preprocess",
        reason=f"history contains anomalies that rule out k-atomicity: {reasons}{more}",
    )


def _normalized_columnar(col, *, epsilon: float = 1e-9):
    """Vectorized replica of :func:`repro.core.preprocess.normalize`.

    Returns the normalised encoding (possibly ``col`` itself when already
    normal), or ``None`` when the history has timestamp ties — the
    sequential tie-perturbation is not order-free, so those (rare, clock
    granularity) cases take the materialised object path instead.
    """
    c = _columns(col)
    ts = np.concatenate((c.start, c.finish))
    if np.unique(ts).size != ts.size:
        return None
    r = c.reads
    if not r.size:
        return col
    d = c.dictating[r]
    order = np.argsort(d, kind="stable")
    sd = d[order]
    grp = np.flatnonzero(np.concatenate(([True], sd[1:] != sd[:-1])))
    uw = sd[grp].astype(np.int64)  # write op indices that have reads
    mrf = np.minimum.reduceat(c.finish[r[order]], grp)  # min read finish
    wf = c.finish[uw]
    ws = c.start[uw]
    shorten = wf >= mrf
    if not bool(shorten.any()):
        return col
    # Same float arithmetic as shorten_writes(), element-wise.
    new_finish = mrf - epsilon
    degenerate = new_finish <= ws
    halfway = ws + (mrf - ws) / 2.0
    new_finish = np.where(degenerate, halfway, new_finish)
    apply = shorten & (new_finish > ws)
    if not bool(apply.any()):
        return col
    finish2 = c.finish.copy()
    finish2[uw[apply]] = new_finish[apply]
    # Step 4 of normalize(): shortening may land a finish exactly on an
    # existing timestamp; distinct-timestamp histories stay on the fast path,
    # collisions fall back to the object perturbation.
    ts2 = np.concatenate((c.start, finish2))
    if np.unique(ts2).size != ts2.size:
        return None
    return _with_finish(col, finish2)


def verify_columnar(
    col,
    k: int,
    *,
    algorithm: str = "auto",
    preprocess: bool = True,
    max_exact_ops: int = 40,
    kernel: Optional[str] = None,
    decode_witness: bool = True,
) -> VerificationResult:
    """Verify a :class:`ColumnarHistory` without materialising operations.

    The kernel-level twin of :func:`repro.core.api.verify`: identical
    verdicts, reasons and stats for every input, with Operation objects
    decoded only where a result needs them (NO-reasons, anomaly
    descriptions, and — unless ``decode_witness=False`` — YES witnesses).
    This is the engine's ingestion path for memmap-backed ``.rcol`` shards.

    Falls back to the materialised object path whenever exactness demands it:
    non-numpy kernels, timestamp ties during normalisation, and the
    LBT/exact algorithms (``k >= 3``).
    """
    if k < 1:
        raise VerificationError(f"k must be a positive integer, got {k!r}")
    resolved = resolve_kernel(kernel, None)

    def materialised(history_preprocess: bool):
        from .api import verify

        return verify(
            col.to_history(),
            k,
            algorithm=algorithm,
            preprocess=history_preprocess,
            max_exact_ops=max_exact_ops,
            kernel=kernel,
        )

    if resolved != "numpy" or col.n == 0:
        return materialised(preprocess)
    work = col
    if preprocess:
        anomalous = _anomaly_result_np(col, k)
        if anomalous is not None:
            return anomalous
        work = _normalized_columnar(col)
        if work is None:  # timestamp ties: sequential perturbation required
            return materialised(True)
    name = algorithm
    if algorithm == "auto":
        if k == 1:
            name = "gk"
        elif k == 2:
            name = "fzf"
        elif work.n > max_exact_ops:
            raise VerificationError(
                f"k={k} requires the exact (exponential) oracle, but the history has "
                f"{work.n} operations (> max_exact_ops={max_exact_ops}); "
                "no polynomial algorithm for k >= 3 is known (the paper leaves it open). "
                "Pass algorithm='exact' or raise max_exact_ops to force the search."
            )
        else:
            name = "exact"
    from ..algorithms.registry import get_algorithm

    spec = get_algorithm(name)
    if not spec.supports(k):
        raise VerificationError(
            f"algorithm {spec.name!r} cannot decide {k}-atomicity; "
            f"it supports k in {tuple(spec.supported_k)}"
        )
    if spec.name == "gk":
        return gk_result_np(work)
    if spec.name == "fzf":
        return fzf_result_np(work, decode_witness=decode_witness)
    # LBT variants and the exact oracle need the object model; materialise
    # just this register (already normalised, so preprocessing is done).
    from .api import verify

    return verify(
        work.to_history(),
        k,
        algorithm=name,
        preprocess=False,
        max_exact_ops=max_exact_ops,
    )
