"""Incremental (streaming) construction of histories and traces.

:class:`History` and :class:`MultiHistory` are immutable snapshots: they sort,
index and validate their operations at construction time.  That is the right
contract for the verification algorithms, but it forces callers that *produce*
operations — trace file readers, the simulator's recorder, synthetic workload
generators — to accumulate one flat list and group it at the end.

The builders here invert that: operations are appended one at a time (e.g.
straight off a JSON Lines reader) and are bucketed by register key as they
arrive, so a multi-register trace is already partitioned along register
boundaries by the time it is complete.  The verification engine
(:mod:`repro.engine`) consumes a :class:`TraceBuilder` directly and
materialises each register's sorted/indexed :class:`History` from its bucket
— there is never a global flat operation list, a trace-wide regrouping pass,
or a trace-wide index (the operations themselves, of course, stay in memory).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .errors import HistoryError
from .history import History, MultiHistory
from .operation import Operation
from .windows import Window, WindowPolicy, iter_windows

__all__ = ["HistoryBuilder", "TraceBuilder"]


class HistoryBuilder:
    """Accumulates operations on a *single* register and builds a :class:`History`.

    Parameters
    ----------
    key:
        Optional register name.  When given, appended operations must either
        carry the same key or no key at all; a mismatch raises
        :class:`~repro.core.errors.HistoryError` immediately (rather than at
        ``build()`` time), so streaming producers fail fast.
    """

    __slots__ = ("_key", "_ops")

    def __init__(self, key: Optional[Hashable] = None):
        self._key = key
        self._ops: List[Operation] = []

    def append(self, op: Operation) -> "HistoryBuilder":
        """Add one operation; returns ``self`` for chaining."""
        if op.key is not None:
            if self._key is None:
                self._key = op.key
            elif op.key != self._key:
                raise HistoryError(
                    f"HistoryBuilder for register {self._key!r} received an "
                    f"operation on register {op.key!r}; use TraceBuilder for "
                    "multi-register streams"
                )
        self._ops.append(op)
        return self

    def extend(self, ops: Iterable[Operation]) -> "HistoryBuilder":
        """Add many operations; returns ``self`` for chaining."""
        for op in ops:
            self.append(op)
        return self

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def key(self) -> Optional[Hashable]:
        """The register the accumulated operations belong to."""
        return self._key

    @property
    def op_count(self) -> int:
        """Number of operations appended so far."""
        return len(self._ops)

    def build(self) -> History:
        """Materialise the (sorted, indexed, validated) :class:`History`."""
        return History(self._ops, key=self._key)

    def windows(self, policy: WindowPolicy) -> List[Window]:
        """Cut the accumulated operations into windows, in completion order.

        This is the batch counterpart of the live windowing the streaming
        engine performs: the buffered operations are replayed in finish-time
        order through a :class:`~repro.core.windows.WindowAssembler`, so a
        recorded register history can be analysed with exactly the window
        boundaries an online audit would have used.
        """
        ordered = sorted(self._ops, key=lambda op: (op.finish, op.op_id))
        return list(iter_windows(ordered, policy))


class TraceBuilder:
    """Accumulates a multi-register operation stream, bucketed by key.

    Operations are grouped into per-register buckets as they arrive, so by the
    time the stream ends the trace is already partitioned along the boundary
    that the locality theorem (Section II-B) makes meaningful: the engine
    builds each register's history straight from its bucket, skipping the
    flat-list-then-regroup pass (and the trace-wide indexing) that a
    :class:`MultiHistory` round-trip would cost.

    Registers are remembered in first-appearance order, which is what keeps
    engine output ordering identical to the seed ``verify_trace`` loop.
    """

    __slots__ = ("_ops_by_key", "_op_count")

    def __init__(self, operations: Iterable[Operation] = ()):
        self._ops_by_key: Dict[Hashable, List[Operation]] = {}
        self._op_count = 0
        self.extend(operations)

    def append(self, op: Operation) -> "TraceBuilder":
        """Add one operation to its register's bucket; returns ``self``."""
        self._ops_by_key.setdefault(op.key, []).append(op)
        self._op_count += 1
        return self

    def extend(self, ops: Iterable[Operation]) -> "TraceBuilder":
        """Add many operations; returns ``self`` for chaining."""
        for op in ops:
            self.append(op)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops_by_key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ops_by_key

    @property
    def op_count(self) -> int:
        """Total operations appended across all registers."""
        return self._op_count

    @property
    def num_registers(self) -> int:
        """Number of distinct register keys seen so far."""
        return len(self._ops_by_key)

    def keys(self) -> Tuple[Hashable, ...]:
        """Register keys in first-appearance order."""
        return tuple(self._ops_by_key)

    def operation_counts(self) -> Dict[Hashable, int]:
        """Mapping from register key to its operation count (for sharding)."""
        return {key: len(ops) for key, ops in self._ops_by_key.items()}

    def iter_operations(self) -> Iterator[Operation]:
        """Yield all operations, grouped by register in appearance order."""
        for ops in self._ops_by_key.values():
            yield from ops

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def history(self, key: Hashable) -> History:
        """Materialise the :class:`History` of one register.

        This is the lazy, shard-at-a-time path the engine uses: only the
        requested register is sorted/indexed/validated.
        """
        try:
            ops = self._ops_by_key[key]
        except KeyError:
            raise HistoryError(f"no operations recorded for register {key!r}") from None
        return History(ops, key=key)

    def build(self) -> MultiHistory:
        """Materialise the full :class:`MultiHistory` snapshot."""
        return MultiHistory(
            histories={key: History(ops, key=key) for key, ops in self._ops_by_key.items()}
        )

    def windows(self, policy: WindowPolicy) -> List[Window]:
        """Cut the accumulated multi-register trace into windows.

        Operations from all registers are interleaved in finish-time order —
        the order a completion-time stream would deliver them — and replayed
        through a :class:`~repro.core.windows.WindowAssembler`, reproducing
        the window boundaries of an online audit over the recorded trace.
        """
        ordered = sorted(self.iter_operations(), key=lambda op: (op.finish, op.op_id))
        return list(iter_windows(ordered, policy))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceBuilder keys={len(self._ops_by_key)} ops={self._op_count}>"
