"""Chunk decomposition of a history (FZF Stage 1, Section IV-A).

A *chunk* of a history ``H`` is a set of clusters such that

1. the union of the forward zones of these clusters is a continuous and
   non-empty time interval, and
2. the union of the backward zones of these clusters is a subset of that
   interval.

A chunk is *maximal* if adding another cluster breaks one of the properties.
The *chunk set* ``CS(H)`` is the set of maximal chunks such that every
forward cluster belongs to some chunk.  Clusters in no chunk are *dangling*;
every dangling cluster is necessarily a backward cluster.

The decomposition is computed by a sweep over forward zones sorted by their
low endpoints: overlapping forward zones merge into chains (the continuous
intervals of property 1), and each backward cluster is then assigned to the
unique chain interval that contains its zone, or declared dangling.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .history import History
from .operation import Operation
from .zones import Cluster, build_clusters

__all__ = ["Chunk", "ChunkSet", "compute_chunk_set"]


@dataclass(frozen=True)
class Chunk:
    """A maximal chunk: its clusters and the spanned time interval.

    ``forward_clusters`` are kept sorted by the low endpoints of their zones,
    which is exactly the order FZF needs to build the candidate total order
    ``T_F`` in Stage 2.
    """

    forward_clusters: Tuple[Cluster, ...]
    backward_clusters: Tuple[Cluster, ...]

    @property
    def clusters(self) -> Tuple[Cluster, ...]:
        """All clusters of the chunk (forward first, then backward)."""
        return self.forward_clusters + self.backward_clusters

    @property
    def low(self) -> float:
        """``K.l`` — the minimum zone low endpoint over the chunk's clusters."""
        return min(cl.zone.low for cl in self.clusters)

    @property
    def high(self) -> float:
        """``K.h`` — the maximum zone high endpoint over the chunk's clusters."""
        return max(cl.zone.high for cl in self.clusters)

    @property
    def interval(self) -> Tuple[float, float]:
        """The continuous interval covered by the union of forward zones."""
        lows = [cl.zone.low for cl in self.forward_clusters]
        highs = [cl.zone.high for cl in self.forward_clusters]
        return (min(lows), max(highs))

    @property
    def num_forward(self) -> int:
        """Number of forward clusters in the chunk."""
        return len(self.forward_clusters)

    @property
    def num_backward(self) -> int:
        """Number of backward clusters in the chunk (``B`` in Stage 2)."""
        return len(self.backward_clusters)

    def operations(self) -> List[Operation]:
        """All operations belonging to clusters of this chunk."""
        ops: List[Operation] = []
        for cl in self.clusters:
            ops.extend(cl.operations)
        return ops

    def projection(self, history: History) -> History:
        """The sub-history ``H|K`` containing exactly this chunk's operations."""
        return history.restrict(self.operations())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Chunk fwd={self.num_forward} bwd={self.num_backward} "
            f"interval=[{self.interval[0]:g},{self.interval[1]:g}]>"
        )


@dataclass(frozen=True)
class ChunkSet:
    """The chunk set ``CS(H)`` plus the dangling clusters of a history."""

    chunks: Tuple[Chunk, ...]
    dangling: Tuple[Cluster, ...]

    @property
    def num_chunks(self) -> int:
        """Number of maximal chunks."""
        return len(self.chunks)

    @property
    def num_dangling(self) -> int:
        """Number of dangling (necessarily backward) clusters."""
        return len(self.dangling)

    def largest_chunk_size(self) -> int:
        """The operation count of the largest chunk (0 if there are none)."""
        if not self.chunks:
            return 0
        return max(len(chunk.operations()) for chunk in self.chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChunkSet chunks={self.num_chunks} dangling={self.num_dangling}>"


def _merge_forward_chains(forward: List[Cluster]) -> List[List[Cluster]]:
    """Group forward clusters into chains with continuous zone unions.

    The input must be sorted by zone low endpoint.  Two consecutive zones
    belong to the same chain iff the next zone starts no later than the
    running high endpoint of the chain (their union stays continuous).
    """
    chains: List[List[Cluster]] = []
    current: List[Cluster] = []
    current_high = float("-inf")
    for cl in forward:
        if not current:
            current = [cl]
            current_high = cl.zone.high
            continue
        if cl.zone.low <= current_high:
            current.append(cl)
            current_high = max(current_high, cl.zone.high)
        else:
            chains.append(current)
            current = [cl]
            current_high = cl.zone.high
    if current:
        chains.append(current)
    return chains


def compute_chunk_set(history: History, clusters: Optional[List[Cluster]] = None) -> ChunkSet:
    """Compute ``CS(H)`` and the dangling clusters of ``history``.

    Parameters
    ----------
    history:
        The (anomaly-free) history to decompose.
    clusters:
        Optional pre-computed cluster list (as returned by
        :func:`repro.core.zones.build_clusters`); recomputed when omitted.

    Returns
    -------
    ChunkSet
        Maximal chunks sorted by their interval's low endpoint, and the
        dangling clusters sorted by zone low endpoint.
    """
    if clusters is None:
        clusters = build_clusters(history)
    forward = sorted((cl for cl in clusters if cl.is_forward), key=lambda cl: cl.zone.low)
    backward = [cl for cl in clusters if cl.is_backward]

    chains = _merge_forward_chains(forward)
    chain_intervals: List[Tuple[float, float]] = []
    for chain in chains:
        low = min(cl.zone.low for cl in chain)
        high = max(cl.zone.high for cl in chain)
        chain_intervals.append((low, high))

    # Chain intervals are pairwise disjoint and sorted by their low endpoint,
    # so the only chain that can contain a backward zone is the last one whose
    # low endpoint does not exceed the zone's low endpoint — found by binary
    # search rather than a linear scan.
    chain_lows = [low for low, _ in chain_intervals]
    chunk_backward: List[List[Cluster]] = [[] for _ in chains]
    dangling: List[Cluster] = []
    for cl in backward:
        zone_low = cl.zone.low
        zone_high = cl.zone.high
        idx = bisect.bisect_right(chain_lows, zone_low) - 1
        if idx >= 0:
            low, high = chain_intervals[idx]
            if low <= zone_low and zone_high <= high:
                chunk_backward[idx].append(cl)
                continue
        dangling.append(cl)

    chunks = [
        Chunk(forward_clusters=tuple(chain), backward_clusters=tuple(bwd))
        for chain, bwd in zip(chains, chunk_backward)
    ]
    chunks.sort(key=lambda k: k.interval[0])
    dangling.sort(key=lambda cl: cl.zone.low)
    return ChunkSet(chunks=tuple(chunks), dangling=tuple(dangling))
