"""Windowing of operation streams (the online-audit ingestion unit).

Batch verification sees a complete trace; online verification sees an
unbounded operation stream and must produce verdicts *while* operations
arrive.  The bridge between the two is the **window**: a finite slice of the
stream that the streaming engine (:mod:`repro.engine.streaming`) hands to the
verification machinery, either to advance persistent incremental checkers or
to verify as a standalone mini-trace.

Two window shapes are supported, both tumbling and sliding:

* **count windows** close after a fixed number of fresh operations;
* **time windows** close when an operation's *finish* timestamp crosses the
  next boundary of a fixed-width time grid (completion-ordered streams, such
  as those produced by :class:`~repro.simulation.recorder.HistoryRecorder` or
  an audit pipeline tailing a log, have non-decreasing finish times).

A sliding window carries an *overlap margin* — the trailing ``overlap``
operations (count mode) or the trailing ``overlap`` time units (time mode) of
the previous window are replayed at the head of the next one.  The margin
matters when windows are verified independently: a cluster whose zone spans a
boundary would otherwise be split across two windows and neither half would
see the complete zone.  With an overlap of at least the typical zone length,
every boundary-spanning zone appears whole in at least one window.  (The
rolling-checker mode does not need the margin — checkers are persistent — so
it consumes only the fresh operations of each window.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from .errors import VerificationError
from .operation import Operation

__all__ = ["WindowPolicy", "Window", "WindowAssembler", "iter_windows"]


@dataclass(frozen=True)
class WindowPolicy:
    """How an operation stream is cut into windows.

    Attributes
    ----------
    mode:
        ``"count"`` or ``"time"``.
    size:
        Window size: number of fresh operations (count mode, positive int) or
        width in time units (time mode, positive float).
    overlap:
        Sliding margin carried from each window into the next: trailing
        operations (count mode) or trailing time units (time mode).  ``0``
        gives tumbling windows.  Must be strictly smaller than ``size``.
    """

    mode: str
    size: float
    overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("count", "time"):
            raise VerificationError(
                f"window mode must be 'count' or 'time', got {self.mode!r}"
            )
        if self.size <= 0:
            raise VerificationError(f"window size must be positive, got {self.size!r}")
        if self.mode == "count" and int(self.size) != self.size:
            raise VerificationError(
                f"count windows need an integer size, got {self.size!r}"
            )
        if self.mode == "count" and int(self.overlap) != self.overlap:
            raise VerificationError(
                f"count windows need an integer overlap, got {self.overlap!r}"
            )
        if self.overlap < 0:
            raise VerificationError(f"window overlap must be >= 0, got {self.overlap!r}")
        if self.overlap >= self.size:
            raise VerificationError(
                f"window overlap ({self.overlap!r}) must be smaller than the "
                f"window size ({self.size!r})"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def count(size: int, *, overlap: int = 0) -> "WindowPolicy":
        """A count-based policy (tumbling unless ``overlap`` > 0)."""
        return WindowPolicy(mode="count", size=size, overlap=overlap)

    @staticmethod
    def time(size: float, *, overlap: float = 0.0) -> "WindowPolicy":
        """A time-based policy (tumbling unless ``overlap`` > 0)."""
        return WindowPolicy(mode="time", size=size, overlap=overlap)

    @property
    def is_sliding(self) -> bool:
        """True iff consecutive windows share an overlap margin."""
        return self.overlap > 0

    def describe(self) -> str:
        """Short human-readable form, e.g. ``count(64, overlap=8)``."""
        size = int(self.size) if self.mode == "count" else self.size
        if self.is_sliding:
            overlap = int(self.overlap) if self.mode == "count" else self.overlap
            return f"{self.mode}({size}, overlap={overlap})"
        return f"{self.mode}({size})"


@dataclass(frozen=True)
class Window:
    """One finite slice of an operation stream.

    ``ops`` holds the carried overlap margin (if any) followed by the fresh
    operations; ``fresh_ops`` is the suffix that has not been seen by any
    earlier window.  ``t_low``/``t_high`` span the finish timestamps of all
    contained operations.
    """

    index: int
    ops: Tuple[Operation, ...]
    carried: int
    t_low: float
    t_high: float
    is_last: bool = False

    @property
    def fresh_ops(self) -> Tuple[Operation, ...]:
        """The operations first seen in this window (overlap margin excluded)."""
        return self.ops[self.carried :]

    @property
    def num_fresh(self) -> int:
        """Number of fresh operations in the window."""
        return len(self.ops) - self.carried

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Window #{self.index} ops={len(self.ops)} carried={self.carried} "
            f"t=[{self.t_low:g},{self.t_high:g}]{' last' if self.is_last else ''}>"
        )


class WindowAssembler:
    """Cuts a fed operation stream into :class:`Window` objects.

    Feed operations one at a time; each :meth:`feed` returns the window the
    operation *closed* (or ``None``).  Call :meth:`flush` at end-of-stream to
    obtain the final partial window.

    Count mode closes a window as soon as it holds ``size`` fresh operations.
    Time mode lays a grid of width ``size`` anchored at the first operation's
    finish timestamp and closes the current window when an operation's finish
    crosses the current boundary; empty grid cells are skipped rather than
    emitted.  Operations are expected in non-decreasing finish order; a
    straggler with an older finish timestamp is simply included in the current
    window (windows never reopen).
    """

    def __init__(self, policy: WindowPolicy):
        self.policy = policy
        self._buffer: List[Operation] = []
        self._carried = 0
        self._index = 0
        self._boundary: Optional[float] = None  # time mode: current window end
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Operations buffered in the currently open window."""
        return len(self._buffer)

    def feed(self, op: Operation) -> Optional[Window]:
        """Add one operation; returns the window it closed, if any."""
        if self._closed:
            raise VerificationError("WindowAssembler already flushed")
        policy = self.policy
        window: Optional[Window] = None
        if policy.mode == "time":
            if self._boundary is None:
                self._boundary = op.finish + policy.size
            elif op.finish >= self._boundary:
                window = self._close()
                # Skip empty grid cells so the new operation lands inside the
                # freshly opened window.
                while op.finish >= self._boundary:
                    self._boundary += policy.size
            self._buffer.append(op)
        else:
            self._buffer.append(op)
            if len(self._buffer) - self._carried >= policy.size:
                window = self._close()
        return window

    def extend(self, ops: Iterable[Operation]) -> List[Window]:
        """Feed many operations; returns every window they closed."""
        windows = []
        for op in ops:
            window = self.feed(op)
            if window is not None:
                windows.append(window)
        return windows

    def flush(self) -> Optional[Window]:
        """Close the stream; returns the final partial window, if non-empty.

        The returned window is marked ``is_last``.  A flushed assembler
        rejects further :meth:`feed` calls.
        """
        self._closed = True
        if len(self._buffer) - self._carried <= 0:
            return None
        return self._close(last=True)

    def snapshot(self) -> dict:
        """Picklable copy of the assembler state (open window included).

        Together with :meth:`restore` this lets a checkpointed audit session
        resume mid-window: the buffered-but-unclosed operations travel with
        the checkpoint, so the resumed stream closes windows at exactly the
        boundaries an uninterrupted run would have used.
        """
        return {
            "policy": (self.policy.mode, self.policy.size, self.policy.overlap),
            "buffer": list(self._buffer),
            "carried": self._carried,
            "index": self._index,
            "boundary": self._boundary,
            "closed": self._closed,
        }

    def restore(self, state: dict) -> None:
        """Rehydrate the state captured by :meth:`snapshot`."""
        mode, size, overlap = state["policy"]
        if (mode, size, overlap) != (
            self.policy.mode,
            self.policy.size,
            self.policy.overlap,
        ):
            raise VerificationError(
                f"snapshot was cut by {WindowPolicy(mode=mode, size=size, overlap=overlap).describe()}; "
                f"this assembler uses {self.policy.describe()}"
            )
        self._buffer = list(state["buffer"])
        self._carried = state["carried"]
        self._index = state["index"]
        self._boundary = state["boundary"]
        self._closed = state["closed"]

    # ------------------------------------------------------------------
    def _close(self, *, last: bool = False) -> Window:
        ops = tuple(self._buffer)
        window = Window(
            index=self._index,
            ops=ops,
            carried=self._carried,
            t_low=min(op.finish for op in ops),
            t_high=max(op.finish for op in ops),
            is_last=last,
        )
        self._index += 1
        policy = self.policy
        if last or not policy.is_sliding:
            carry: List[Operation] = []
        elif policy.mode == "count":
            carry = list(ops[-int(policy.overlap) :])
        else:
            threshold = self._boundary - policy.overlap if self._boundary is not None else window.t_high
            carry = [op for op in ops if op.finish >= threshold]
        self._buffer = carry
        self._carried = len(carry)
        return window


def iter_windows(ops: Iterable[Operation], policy: WindowPolicy) -> Iterator[Window]:
    """Cut a complete operation iterable into windows (flushing at the end)."""
    assembler = WindowAssembler(policy)
    for op in ops:
        window = assembler.feed(op)
        if window is not None:
            yield window
    tail = assembler.flush()
    if tail is not None:
        yield tail
