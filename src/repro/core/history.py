"""History model (Section II-A / II-B).

A :class:`History` is a collection of operations on the *same* register.  It
provides the derived structure every verification algorithm needs:

* the mapping from written values to their (unique) writer,
* clusters (a write plus its dictated reads),
* the *precedes* partial order,
* concurrency statistics such as the maximum number of concurrent writes
  (the ``c`` parameter in Theorem 3.2).

Multi-register traces are represented by :class:`MultiHistory`, which exploits
the locality of k-atomicity (Section II-B): a trace is k-atomic iff each
per-register projection is.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .errors import DuplicateValueError, HistoryError
from .operation import Operation, OpType

__all__ = ["History", "MultiHistory"]


class History:
    """An immutable collection of operations on a single register.

    Parameters
    ----------
    operations:
        The operations of the history.  They may be given in any order; the
        history keeps them sorted by start time (with the operation id as a
        deterministic tie-breaker).
    key:
        Optional register name.  Purely informational.

    Raises
    ------
    DuplicateValueError
        If two writes assign the same value (Section II-C assumption).
    HistoryError
        If operations carry conflicting keys.
    """

    __slots__ = (
        "_ops",
        "_key",
        "_writes",
        "_reads",
        "_write_of_value",
        "_reads_of_value",
        "_derived",
    )

    def __init__(self, operations: Iterable[Operation], key: Optional[Hashable] = None):
        ops = sorted(operations, key=lambda op: (op.start, op.finish, op.op_id))
        self._ops: Tuple[Operation, ...] = tuple(ops)
        self._key = key
        self._derived: Dict[str, object] = {}

        keys = {op.key for op in self._ops if op.key is not None}
        if key is not None:
            keys.add(key)
        if len(keys) > 1:
            raise HistoryError(
                f"a History must contain operations on a single register, got keys {sorted(map(repr, keys))}; "
                "use MultiHistory for multi-register traces"
            )
        if self._key is None and keys:
            self._key = next(iter(keys))

        self._writes: Tuple[Operation, ...] = tuple(op for op in self._ops if op.is_write)
        self._reads: Tuple[Operation, ...] = tuple(op for op in self._ops if op.is_read)

        write_of_value: Dict[Hashable, Operation] = {}
        for w in self._writes:
            if w.value in write_of_value:
                raise DuplicateValueError(
                    f"two writes assign the value {w.value!r} "
                    f"(operations #{write_of_value[w.value].op_id} and #{w.op_id}); "
                    "the model requires uniquely-valued writes (Section II-C)"
                )
            write_of_value[w.value] = w
        self._write_of_value: Mapping[Hashable, Operation] = write_of_value

        reads_of_value: Dict[Hashable, List[Operation]] = defaultdict(list)
        for r in self._reads:
            reads_of_value[r.value].append(r)
        self._reads_of_value: Dict[Hashable, Tuple[Operation, ...]] = {
            v: tuple(rs) for v, rs in reads_of_value.items()
        }

    @classmethod
    def _from_trusted_sorted(
        cls, ops: Sequence[Operation], key: Optional[Hashable]
    ) -> "History":
        """Rebuild a history from operations known to be sorted and valid.

        Internal fast path for the shard codec and the columnar decoder: the
        operations originate from an existing :class:`History`, so the sort
        order, single-key and unique-write-value invariants already hold and
        are not re-checked.
        """
        self = object.__new__(cls)
        self._ops = tuple(ops)
        self._key = key
        self._derived = {}
        self._writes = tuple(op for op in self._ops if op.op_type is OpType.WRITE)
        self._reads = tuple(op for op in self._ops if op.op_type is OpType.READ)
        self._write_of_value = {w.value: w for w in self._writes}
        reads_of_value: Dict[Hashable, List[Operation]] = defaultdict(list)
        for r in self._reads:
            reads_of_value[r.value].append(r)
        self._reads_of_value = {v: tuple(rs) for v, rs in reads_of_value.items()}
        return self

    # ------------------------------------------------------------------
    # Derived-structure cache
    # ------------------------------------------------------------------
    def cached(self, name: str, factory):
        """Return the memoized derived structure ``name``, computing it once.

        Histories are immutable, so structures derived purely from the
        operations — the cluster list, the anomaly scan, the normalisation
        output, the columnar encoding — can be computed once and shared by
        every verifier that needs them (GK → chunk decomposition → FZF, and
        the per-k staleness-spectrum sweep).  Callers must treat the returned
        value as read-only.
        """
        try:
            return self._derived[name]
        except KeyError:
            value = self._derived[name] = factory()
            return value

    def __getstate__(self):
        # The derived-structure cache is a pure function of the operations:
        # never ship it across process boundaries, each side recomputes.
        return (self._ops, self._key)

    def __setstate__(self, state):
        ops, key = state
        self.__init__(ops, key=key)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __contains__(self, op: Operation) -> bool:
        return op in set(self._ops)

    def __eq__(self, other) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        key = "" if self._key is None else f" key={self._key!r}"
        return f"<History{key} |ops|={len(self._ops)} writes={len(self._writes)} reads={len(self._reads)}>"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def key(self) -> Optional[Hashable]:
        """The register this history belongs to (``None`` if unspecified)."""
        return self._key

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations sorted by start time."""
        return self._ops

    @property
    def writes(self) -> Tuple[Operation, ...]:
        """All write operations sorted by start time."""
        return self._writes

    @property
    def reads(self) -> Tuple[Operation, ...]:
        """All read operations sorted by start time."""
        return self._reads

    @property
    def is_empty(self) -> bool:
        """True iff the history contains no operations."""
        return not self._ops

    # ------------------------------------------------------------------
    # Dictating writes / dictated reads (Section II-A)
    # ------------------------------------------------------------------
    def dictating_write(self, op: Operation) -> Optional[Operation]:
        """Return the unique write whose value ``op`` (a read) obtained.

        Returns ``None`` if no write in the history wrote that value — which
        is one of the anomalies of Section II-C.
        """
        if not op.is_read:
            raise HistoryError(f"dictating_write() requires a read, got {op!r}")
        return self._write_of_value.get(op.value)

    def dictated_reads(self, op: Operation) -> Tuple[Operation, ...]:
        """Return the reads that obtained the value written by ``op`` (a write)."""
        if not op.is_write:
            raise HistoryError(f"dictated_reads() requires a write, got {op!r}")
        return self._reads_of_value.get(op.value, ())

    def writer_of(self, value: Hashable) -> Optional[Operation]:
        """Return the write that assigned ``value``, or ``None``."""
        return self._write_of_value.get(value)

    def readers_of(self, value: Hashable) -> Tuple[Operation, ...]:
        """Return all reads that observed ``value``."""
        return self._reads_of_value.get(value, ())

    def clusters(self) -> Dict[Operation, Tuple[Operation, ...]]:
        """Return the cluster map: dictating write -> its dictated reads.

        Every write appears as a key, including writes with zero dictated
        reads (Section II-A explicitly allows those).  The map is memoized on
        the instance; treat it as read-only.
        """
        return self.cached(
            "cluster_map", lambda: {w: self.dictated_reads(w) for w in self._writes}
        )

    # ------------------------------------------------------------------
    # Concurrency structure
    # ------------------------------------------------------------------
    def max_concurrent_writes(self) -> int:
        """The maximum number of writes concurrently in progress at any time.

        This is the parameter ``c`` of Theorem 3.2 governing LBT's running
        time.  Computed by a sweep over write start/finish events.
        """
        events: List[Tuple[float, int]] = []
        for w in self._writes:
            events.append((w.start, 1))
            events.append((w.finish, -1))
        # Finishes sort before starts at equal timestamps, which is the
        # conservative choice (the model assumes distinct timestamps anyway).
        events.sort(key=lambda e: (e[0], e[1]))
        best = 0
        current = 0
        for _, delta in events:
            current += delta
            best = max(best, current)
        return best

    def concurrency_profile(self) -> List[Tuple[float, int]]:
        """Return ``(time, #concurrent writes)`` breakpoints of the history."""
        events: List[Tuple[float, int]] = []
        for w in self._writes:
            events.append((w.start, 1))
            events.append((w.finish, -1))
        events.sort(key=lambda e: (e[0], e[1]))
        profile: List[Tuple[float, int]] = []
        current = 0
        for t, delta in events:
            current += delta
            profile.append((t, current))
        return profile

    def span(self) -> Tuple[float, float]:
        """Return the ``(earliest start, latest finish)`` of the history."""
        if not self._ops:
            raise HistoryError("an empty history has no time span")
        return (min(op.start for op in self._ops), max(op.finish for op in self._ops))

    # ------------------------------------------------------------------
    # Derived histories
    # ------------------------------------------------------------------
    def restrict(self, ops: Iterable[Operation]) -> "History":
        """Return the sub-history containing exactly ``ops``.

        Used by FZF to form the projection ``H|K`` of the history onto a
        chunk (Section IV-A, Stage 1).
        """
        keep = set(ops)
        return History([op for op in self._ops if op in keep], key=self._key)

    def without(self, ops: Iterable[Operation]) -> "History":
        """Return the sub-history with ``ops`` removed."""
        drop = set(ops)
        return History([op for op in self._ops if op not in drop], key=self._key)

    def with_operations(self, extra: Iterable[Operation]) -> "History":
        """Return a new history with ``extra`` operations added."""
        return History(list(self._ops) + list(extra), key=self._key)

    # ------------------------------------------------------------------
    # Validity of candidate total orders
    # ------------------------------------------------------------------
    def is_valid_total_order(self, order: Sequence[Operation]) -> bool:
        """Check that ``order`` respects the *precedes* partial order.

        ``order`` must contain every operation of the history exactly once.
        This is the validity notion of Section II-A.  The check runs in
        ``O(n log n)`` by verifying that, scanning the order left to right,
        no operation starts after the minimum finish time of the operations
        placed after it — equivalently, for each position the operation's
        finish must exceed the largest start seen so far only in allowed ways.
        """
        ops = list(order)
        if len(ops) != len(self._ops) or set(ops) != set(self._ops):
            return False
        # op1 < op2 (op1.finish < op2.start) requires op1 placed before op2.
        # Scan left to right keeping the minimal finish time of all operations
        # placed so far *after* the current prefix; simpler: keep max start of
        # prefix?  Direct O(n^2) is too slow for large n, so we use the
        # standard trick: order is valid iff for every i<j it is NOT the case
        # that ops[j].finish < ops[i].start, i.e. min finish over suffix(i+1)
        # is never < start of some earlier op.  We verify by scanning right to
        # left and tracking the minimum finish of the suffix.
        suffix_min_finish = float("inf")
        for op in reversed(ops):
            if suffix_min_finish < op.start:
                return False
            suffix_min_finish = min(suffix_min_finish, op.finish)
        return True

    def is_k_atomic_total_order(self, order: Sequence[Operation], k: int) -> bool:
        """Check that ``order`` is a valid *k-atomic* total order.

        A valid total order is k-atomic iff every read follows its dictating
        write and is separated from it by at most ``k - 1`` other writes
        (Section II-A).
        """
        if k < 1:
            return False
        if not self.is_valid_total_order(order):
            return False
        writes_seen: List[Operation] = []
        position_of_write: Dict[Operation, int] = {}
        for op in order:
            if op.is_write:
                position_of_write[op] = len(writes_seen)
                writes_seen.append(op)
            else:
                w = self.dictating_write(op)
                if w is None or w not in position_of_write:
                    return False
                intervening = len(writes_seen) - 1 - position_of_write[w]
                if intervening > k - 1:
                    return False
        return True

    def is_weighted_k_atomic_total_order(self, order: Sequence[Operation], k: int) -> bool:
        """Check the weighted k-atomicity condition of Section V.

        The total weight of the writes separating a dictating write from any
        of its dictated reads — *including the dictating write itself* — must
        be at most ``k``.
        """
        if k < 1:
            return False
        if not self.is_valid_total_order(order):
            return False
        writes_seen: List[Operation] = []
        prefix_weight: List[int] = [0]
        position_of_write: Dict[Operation, int] = {}
        for op in order:
            if op.is_write:
                position_of_write[op] = len(writes_seen)
                writes_seen.append(op)
                prefix_weight.append(prefix_weight[-1] + op.weight)
            else:
                w = self.dictating_write(op)
                if w is None or w not in position_of_write:
                    return False
                idx = position_of_write[w]
                total = prefix_weight[len(writes_seen)] - prefix_weight[idx]
                if total > k:
                    return False
        return True


class MultiHistory:
    """A collection of per-register histories.

    k-atomicity is a *local* property (Section II-B): a trace over many
    registers is k-atomic iff the projection onto each register is.  This
    class groups raw operations by their ``key`` attribute and exposes the
    per-register :class:`History` objects.
    """

    __slots__ = ("_histories",)

    def __init__(self, operations: Iterable[Operation] = (), *,
                 histories: Optional[Mapping[Hashable, History]] = None):
        if histories is not None:
            self._histories: Dict[Hashable, History] = dict(histories)
            return
        by_key: Dict[Hashable, List[Operation]] = defaultdict(list)
        for op in operations:
            by_key[op.key].append(op)
        self._histories = {key: History(ops, key=key) for key, ops in by_key.items()}

    def __len__(self) -> int:
        return len(self._histories)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._histories)

    def __getitem__(self, key: Hashable) -> History:
        return self._histories[key]

    def keys(self):
        """Register identifiers present in the trace."""
        return self._histories.keys()

    def items(self):
        """``(key, History)`` pairs."""
        return self._histories.items()

    def histories(self) -> List[History]:
        """All per-register histories."""
        return list(self._histories.values())

    def total_operations(self) -> int:
        """Total number of operations across all registers."""
        return sum(len(h) for h in self._histories.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MultiHistory keys={len(self._histories)} ops={self.total_operations()}>"
