"""Verification results with witnesses and refutations.

Every verifier in :mod:`repro.algorithms` returns a
:class:`VerificationResult` rather than a bare boolean so that callers can

* inspect a *witness* — a valid k-atomic total order — when the answer is YES,
* read a human-oriented *reason* when the answer is NO,
* and record which algorithm produced the verdict (useful when
  cross-validating LBT, FZF and the exact oracle).

Results are truthy exactly when the history was verified k-atomic, so the
common idiom ``if verify_2atomic(h): ...`` works as expected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .history import History
from .operation import Operation

__all__ = ["VerificationResult", "StreamVerdict", "Verdict"]


# Backwards-compatible alias used in a few call sites and examples.
Verdict = bool


@dataclass(frozen=True)
class VerificationResult:
    """The outcome of a k-atomicity (or weighted k-atomicity) verification.

    Attributes
    ----------
    is_k_atomic:
        The verdict: ``True`` iff the history admits a valid k-atomic total
        order for the ``k`` that was asked about.
    k:
        The staleness bound that was verified.
    algorithm:
        Short name of the algorithm that produced the verdict (``"LBT"``,
        ``"FZF"``, ``"GK"``, ``"exact"``, ``"wkav-exact"`` …).
    witness:
        A valid k-atomic total order over all operations when the verdict is
        YES and the algorithm produces one (LBT and the exact oracle do; FZF
        produces per-chunk witnesses that are stitched together).  ``None``
        when the verdict is NO or the algorithm is purely decision-based.
    reason:
        A human-readable explanation, primarily for NO verdicts (e.g. which
        chunk failed, or which zone condition was violated).
    stats:
        Free-form counters the algorithm chose to expose (epochs run,
        candidates tried, chunks examined…), for benchmarking and debugging.
    """

    is_k_atomic: bool
    k: int
    algorithm: str
    witness: Optional[Tuple[Operation, ...]] = None
    reason: str = ""
    stats: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.is_k_atomic

    def require_witness(self) -> Tuple[Operation, ...]:
        """Return the witness order, raising if there is none."""
        if self.witness is None:
            raise ValueError(
                f"verification result from {self.algorithm} carries no witness "
                f"(verdict={self.is_k_atomic})"
            )
        return self.witness

    def check_witness(self, history: History) -> bool:
        """Re-validate the witness against ``history``.

        Returns ``True`` iff the stored witness is a valid k-atomic total
        order of the history.  Useful in tests and when results cross module
        boundaries.
        """
        if self.witness is None:
            return False
        return history.is_k_atomic_total_order(self.witness, self.k)

    def summary(self) -> str:
        """One-line human-readable summary of the result."""
        verdict = "YES" if self.is_k_atomic else "NO"
        parts = [f"{self.algorithm}: {verdict} (k={self.k})"]
        if self.reason:
            parts.append(self.reason)
        return " — ".join(parts)

    @staticmethod
    def yes(
        k: int,
        algorithm: str,
        witness: Optional[Sequence[Operation]] = None,
        reason: str = "",
        stats: Optional[dict] = None,
    ) -> "VerificationResult":
        """Construct a positive result."""
        return VerificationResult(
            is_k_atomic=True,
            k=k,
            algorithm=algorithm,
            witness=tuple(witness) if witness is not None else None,
            reason=reason,
            stats=dict(stats or {}),
        )

    @staticmethod
    def no(
        k: int,
        algorithm: str,
        reason: str = "",
        stats: Optional[dict] = None,
    ) -> "VerificationResult":
        """Construct a negative result."""
        return VerificationResult(
            is_k_atomic=False,
            k=k,
            algorithm=algorithm,
            witness=None,
            reason=reason,
            stats=dict(stats or {}),
        )


@dataclass(frozen=True)
class StreamVerdict:
    """A mid-stream verdict emitted by an incremental checker.

    Online verification is asymmetric: a history that is not k-atomic stays
    not k-atomic when more operations arrive (any dictating-closed prefix of a
    k-atomic history is itself k-atomic), whereas a prefix that *is* k-atomic
    may still be ruined by later operations.  A stream verdict therefore comes
    in two strengths:

    * ``final=True`` — a NO that will never be retracted (or the verdict of a
      finished stream); the audit can alarm immediately;
    * ``final=False`` — a provisional YES: every operation seen so far admits
      a k-atomic total order, subject to revision as the stream continues.

    Attributes
    ----------
    result:
        The underlying :class:`VerificationResult` for the checked prefix.
    ops_seen:
        How many operations the checker had ingested when the verdict was
        produced (pending/unresolved reads included).
    final:
        Whether the verdict is immune to future operations.
    """

    result: VerificationResult
    ops_seen: int
    final: bool

    def __bool__(self) -> bool:
        return bool(self.result)

    def summary(self) -> str:
        """One-line human-readable summary of the stream verdict."""
        strength = "final" if self.final else "provisional"
        return f"{self.result.summary()} [{strength}, after {self.ops_seen} ops]"
