"""Columnar (struct-of-arrays) fast path for the verification kernels.

The object model — frozen :class:`~repro.core.operation.Operation` dataclasses
indexed by :class:`~repro.core.history.History` — is the right *public*
contract, but it is a poor *hot-path* representation in CPython: every sweep
pays an attribute lookup (and often a bound-method call) per operation per
pass, and the ``O(n log n + c·n)`` bounds of the paper drown in interpreter
overhead long before the asymptotics matter.

:class:`ColumnarHistory` re-encodes a single-register history as parallel
columns:

* ``start`` / ``finish`` — ``array('d')`` timestamp columns,
* ``is_write`` — a ``bytearray`` of 0/1 flags,
* ``value_id`` / ``client_id`` — interned integer ids with side tables,
* ``op_ids`` / ``weights`` — ``array('q')`` columns,
* ``dictating`` — for each read, the *index* of its dictating write (−1 when
  the value was never written).

Indices follow the canonical history order (start, finish, op id), so index
``i`` corresponds exactly to ``history.operations[i]`` and sorting index lists
ascending reproduces every ``(start, finish, op_id)`` sort in the object
implementation.  The encoding is buildable from a :class:`History` (cached on
the instance via :func:`columnar_of`) or straight from decoded trace rows
without ever materialising ``Operation`` objects
(:meth:`ColumnarHistory.from_rows`); operations are decoded lazily, only when
a caller needs a witness or a NO-reason.

On top of the encoding this module implements the hot kernels as index-based
loops: the Section II-C anomaly scan, cluster/zone construction
(:class:`ClusterArrays`), the Gibbons–Korach forward-overlap and
backward-in-forward sweeps, the FZF Stage-1 chunk decomposition and the
Stage-2 viability check.  Each kernel mirrors its object-path counterpart in
:mod:`repro.algorithms.gk`, :mod:`repro.core.chunks` and
:mod:`repro.algorithms.fzf` step for step — identical verdicts, identical
reason strings, identical stats — so the two paths stay interchangeable and
cross-checkable.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .errors import DuplicateValueError, MalformedOperationError
from .history import History
from .operation import Operation, OpType, trusted_operation
from .zones import Zone

__all__ = [
    "ColumnarHistory",
    "ClusterArrays",
    "columnar_of",
    "default_enabled",
    "set_default_enabled",
    "gk_violation",
    "chunk_decomposition",
    "fzf_verdict",
    "FZFOutcome",
]

# ----------------------------------------------------------------------
# Global default for the fast path (overridable per verify() call)
# ----------------------------------------------------------------------
_DEFAULT_ENABLED = True


def default_enabled() -> bool:
    """Whether verifiers pick the columnar kernels when not told explicitly."""
    return _DEFAULT_ENABLED


def set_default_enabled(enabled: bool) -> bool:
    """Set the process-wide columnar default; returns the previous value.

    The object path remains the reference implementation; this switch exists
    for benchmarks, parity tests and ``repro verify --no-columnar``.
    """
    global _DEFAULT_ENABLED
    previous = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)
    return previous


def resolve(columnar: Optional[bool]) -> bool:
    """Resolve a per-call ``columnar`` option against the process default."""
    return _DEFAULT_ENABLED if columnar is None else bool(columnar)


class ColumnarHistory:
    """A single-register history encoded as parallel columns.

    Instances are immutable once built.  ``_ops[i]`` caches the decoded
    :class:`Operation` for index ``i``; when the encoding was built from a
    :class:`History` the whole tuple is present up front, otherwise operations
    are materialised lazily through the trusted constructor.
    """

    __slots__ = (
        "key",
        "n",
        "start",
        "finish",
        "is_write",
        "has_key",
        "value_id",
        "client_id",
        "op_ids",
        "weights",
        "values",
        "clients",
        "write_of_value",
        "dictating",
        "write_ord",
        "writes_idx",
        "_ops",
        "_history",
        "_clusters",
        "_anomalous",
        "_vector",
    )

    def __init__(self) -> None:  # populated by the classmethod constructors
        self.key: Optional[Hashable] = None
        self.n = 0
        self.start = array("d")
        self.finish = array("d")
        self.is_write = bytearray()
        self.has_key = bytearray()
        self.value_id = array("i")
        self.client_id = array("i")
        self.op_ids = array("q")
        self.weights = array("q")
        self.values: List[Hashable] = []
        self.clients: List[Hashable] = []
        self.write_of_value = array("i")
        self.dictating = array("i")
        self.write_ord = array("i")
        self.writes_idx: List[int] = []
        self._ops: List[Optional[Operation]] = []
        self._history: Optional[History] = None
        self._clusters: Optional[ClusterArrays] = None
        self._anomalous: Optional[bool] = None
        # Derived numpy-side state (cluster/chunk tables), owned by
        # repro.core.vector; None until the vectorized kernels touch this
        # encoding.
        self._vector = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_history(cls, history: History) -> "ColumnarHistory":
        """Encode an existing (sorted, validated) history into columns.

        Only the kernel columns (timestamps, type flags, interned values, op
        ids) are built eagerly; the decode-only columns (clients, weights,
        per-op key flags) are derived lazily because the operation objects are
        already at hand.
        """
        ops = history.operations
        col = cls()
        col.key = history.key
        col.n = len(ops)
        col._history = history
        col._ops = list(ops)
        col.start = array("d", [op.start for op in ops])
        col.finish = array("d", [op.finish for op in ops])
        write_type = OpType.WRITE
        col.is_write = bytearray(
            1 if op.op_type is write_type else 0 for op in ops
        )
        col.op_ids = array("q", [op.op_id for op in ops])
        # setdefault(v, len(table)) assigns dense ids in first-seen order.
        table: Dict[Hashable, int] = {}
        assign = table.setdefault
        col.value_id = array("i", [assign(op.value, len(table)) for op in ops])
        col.values = list(table)
        col.has_key = None
        col.client_id = None
        col.clients = None
        col.weights = None
        col._finalize()
        return col

    def _ensure_decode_columns(self) -> None:
        """Materialise the columns needed only for decoding/serialisation."""
        if self.weights is not None:
            return
        ops = self._ops  # complete whenever the decode columns are lazy
        self.has_key = bytearray(0 if op.key is None else 1 for op in ops)
        self.weights = array("q", [op.weight for op in ops])
        table: Dict[Hashable, int] = {}
        assign = table.setdefault
        self.client_id = array(
            "i",
            [-1 if op.client is None else assign(op.client, len(table)) for op in ops],
        )
        self.clients = list(table)

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Tuple[bool, Hashable, float, float, Optional[Hashable], int]],
        *,
        key: Optional[Hashable] = None,
        op_ids: Optional[Sequence[int]] = None,
    ) -> "ColumnarHistory":
        """Build the encoding straight from decoded trace rows.

        Each row is ``(is_write, value, start, finish, client, weight)``.  No
        :class:`Operation` objects are created; rows are validated inline
        (positive duration, positive write weights, uniquely-valued writes)
        and sorted into canonical order.  Fresh operation ids are assigned in
        that order unless ``op_ids`` supplies them per input row.
        """
        materialised = [
            (s, f, seq, w, v, c, wt)
            for seq, (w, v, s, f, c, wt) in enumerate(rows)
        ]
        for s, f, seq, w, v, c, wt in materialised:
            if f <= s:
                raise MalformedOperationError(
                    f"operation row {seq} has finish {f!r} <= start {s!r}; "
                    "operations must take a positive amount of time"
                )
            if w and wt < 1:
                raise MalformedOperationError(
                    f"write row {seq} has non-positive weight {wt!r}; "
                    "weights must be positive integers (Section V)"
                )
        if op_ids is None:
            # Fresh ids are assigned in sorted order below, so the input
            # sequence number is the correct (start, finish, id) tie-breaker.
            materialised.sort(key=lambda row: (row[0], row[1], row[2]))
        else:
            # Caller-supplied ids must drive tie-breaking exactly as
            # History's (start, finish, op_id) sort would.
            materialised.sort(key=lambda row: (row[0], row[1], op_ids[row[2]]))
        col = cls()
        col.key = key
        col.n = len(materialised)
        col._ops = [None] * col.n
        col.start = array("d", [row[0] for row in materialised])
        col.finish = array("d", [row[1] for row in materialised])
        col.is_write = bytearray(1 if row[3] else 0 for row in materialised)
        col.has_key = bytearray(col.n) if key is None else bytearray(b"\x01" * col.n)
        if op_ids is None:
            col.op_ids = array("q", [_next_op_id() for _ in range(col.n)])
        else:
            col.op_ids = array("q", [op_ids[row[2]] for row in materialised])
        col.weights = array("q", [row[6] for row in materialised])
        value_table: Dict[Hashable, int] = {}
        assign_value = value_table.setdefault
        col.value_id = array(
            "i", [assign_value(row[4], len(value_table)) for row in materialised]
        )
        col.values = list(value_table)
        client_table: Dict[Hashable, int] = {}
        assign_client = client_table.setdefault
        col.client_id = array(
            "i",
            [
                -1 if row[5] is None else assign_client(row[5], len(client_table))
                for row in materialised
            ],
        )
        col.clients = list(client_table)
        col._finalize()
        return col

    def _finalize(self) -> None:
        """Build the derived index columns (writer table, dictating links)."""
        n = self.n
        is_write = self.is_write
        value_id = self.value_id
        # b"\xff" * 8 decodes to -1 in a signed 8-byte array slot.
        write_of_value = (
            array("i", b"\xff" * (4 * len(self.values))) if self.values else array("i")
        )
        writes_idx: List[int] = []
        write_ord = array("i", bytes(4 * n))
        for i in range(n):
            if is_write[i]:
                vid = value_id[i]
                if write_of_value[vid] != -1:
                    raise DuplicateValueError(
                        f"two writes assign the value {self.values[vid]!r} "
                        f"(operations #{self.op_ids[write_of_value[vid]]} and "
                        f"#{self.op_ids[i]}); the model requires uniquely-valued "
                        "writes (Section II-C)"
                    )
                write_of_value[vid] = i
                write_ord[i] = len(writes_idx)
                writes_idx.append(i)
            else:
                write_ord[i] = -1
        dictating = array("i", bytes(4 * n))
        for i in range(n):
            dictating[i] = i if is_write[i] else write_of_value[value_id[i]]
        self.write_of_value = write_of_value
        self.writes_idx = writes_idx
        self.write_ord = write_ord
        self.dictating = dictating

    # ------------------------------------------------------------------
    # Introspection / decoding
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    @property
    def num_writes(self) -> int:
        """Number of write operations."""
        return len(self.writes_idx)

    def value_of(self, index: int) -> Hashable:
        """The (un-interned) value of the operation at ``index``."""
        return self.values[self.value_id[index]]

    def operation(self, index: int) -> Operation:
        """Decode the operation at ``index``, materialising it lazily."""
        op = self._ops[index]
        if op is None:
            cid = self.client_id[index]
            # float()/int() are no-ops for the array-module columns and
            # normalise numpy scalars from memmap-backed columns, so decoded
            # operations are identical regardless of the column storage.
            op = trusted_operation(
                OpType.WRITE if self.is_write[index] else OpType.READ,
                self.values[self.value_id[index]],
                float(self.start[index]),
                float(self.finish[index]),
                key=self.key if self.has_key[index] else None,
                client=None if cid < 0 else self.clients[cid],
                op_id=int(self.op_ids[index]),
                weight=int(self.weights[index]),
            )
            self._ops[index] = op
        return op

    def operations(self, indices: Optional[Iterable[int]] = None) -> List[Operation]:
        """Decode many operations (all of them when ``indices`` is omitted)."""
        if indices is None:
            indices = range(self.n)
        operation = self.operation
        return [operation(i) for i in indices]

    # ------------------------------------------------------------------
    # Column-level serialisation (the engine's compact shard codec)
    # ------------------------------------------------------------------
    def to_columns(self) -> Tuple:
        """Dump the encoding as a tuple of raw column buffers.

        The result contains only ``bytes`` blobs, ints and the (small)
        interning side tables — no ``Operation`` objects — so pickling it is
        both fast and far more compact than pickling the object graph.
        Columns that are uniform in the common case (all-1 weights, no
        clients, homogeneous per-op key flags) collapse to ``None`` sentinels
        rather than shipping ``n`` identical entries.  The inverse is
        :meth:`from_columns`.
        """
        self._ensure_decode_columns()
        all_default_weights = not any(w != 1 for w in self.weights)
        no_clients = not self.clients
        uniform_key = (
            0
            if not any(self.has_key)
            else (1 if all(self.has_key) else None)
        )
        return (
            self.key,
            self.n,
            self.start.tobytes(),
            self.finish.tobytes(),
            bytes(self.is_write),
            uniform_key if uniform_key is not None else bytes(self.has_key),
            self.value_id.tobytes(),
            None if no_clients else self.client_id.tobytes(),
            self.op_ids.tobytes(),
            None if all_default_weights else self.weights.tobytes(),
            list(self.values),
            None if no_clients else list(self.clients),
        )

    @classmethod
    def from_columns(cls, columns: Tuple) -> "ColumnarHistory":
        """Rebuild an encoding from :meth:`to_columns` output."""
        (
            key,
            n,
            start,
            finish,
            is_write,
            has_key,
            value_id,
            client_id,
            op_ids,
            weights,
            values,
            clients,
        ) = columns
        col = cls()
        col.key = key
        col.n = n
        col._ops = [None] * n
        col.start = array("d")
        col.start.frombytes(start)
        col.finish = array("d")
        col.finish.frombytes(finish)
        col.is_write = bytearray(is_write)
        if isinstance(has_key, int):
            col.has_key = bytearray(n) if has_key == 0 else bytearray(b"\x01" * n)
        else:
            col.has_key = bytearray(has_key)
        col.value_id = array("i")
        col.value_id.frombytes(value_id)
        if client_id is None:
            col.client_id = array("i", b"\xff" * (4 * n))
            col.clients = []
        else:
            col.client_id = array("i")
            col.client_id.frombytes(client_id)
            col.clients = clients
        col.op_ids = array("q")
        col.op_ids.frombytes(op_ids)
        if weights is None:
            col.weights = array("q", [1]) * n if n else array("q")
        else:
            col.weights = array("q")
            col.weights.frombytes(weights)
        col.values = values
        col._finalize()
        return col

    def to_history(self) -> History:
        """Materialise the :class:`History` view of this encoding.

        The history's derived-structure cache is seeded with this encoding,
        so verifying the returned history goes straight through the columnar
        kernels without re-encoding.
        """
        if self._history is None:
            history = History._from_trusted_sorted(self.operations(), self.key)
            history._derived.setdefault("columnar", self)
            self._history = history
        return self._history

    # ------------------------------------------------------------------
    # Kernels: anomaly scan and cluster construction
    # ------------------------------------------------------------------
    def has_anomalies(self) -> bool:
        """Columnar Section II-C anomaly scan (memoized).

        True iff some read returns a never-written value or finishes before
        its dictating write starts — exactly
        :func:`repro.core.preprocess.has_anomalies`.  The scan runs once per
        encoding; repeated verifier calls (GK then FZF, the per-k spectrum
        sweep) reuse the cached answer.
        """
        if self._anomalous is None:
            self._anomalous = self._scan_anomalies()
        return self._anomalous

    def _scan_anomalies(self) -> bool:
        is_write = self.is_write
        dictating = self.dictating
        finish = self.finish
        start = self.start
        for i in range(self.n):
            if is_write[i]:
                continue
            w = dictating[i]
            if w < 0 or finish[i] < start[w]:
                return True
        return False

    def cluster_arrays(self) -> "ClusterArrays":
        """The cluster/zone table of the history (memoized).

        Requires an anomaly-free history (every read must have a dictating
        write); mirrors :func:`repro.core.zones.build_clusters` including the
        ``(low, high, write op id)`` sort order.
        """
        if self._clusters is None:
            self._clusters = ClusterArrays._build(self)
        return self._clusters

    def cluster_zone(self, cluster_index: int) -> Zone:
        """Decode the :class:`~repro.core.zones.Zone` of one cluster."""
        ca = self.cluster_arrays()
        return Zone(
            min_finish=ca.min_finish[cluster_index],
            max_start=ca.max_start[cluster_index],
        )

    def cluster_value(self, cluster_index: int) -> Hashable:
        """The value written by a cluster's dictating write."""
        return self.value_of(self.cluster_arrays().write[cluster_index])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        key = "" if self.key is None else f" key={self.key!r}"
        return f"<ColumnarHistory{key} |ops|={self.n} writes={len(self.writes_idx)}>"


def _next_op_id() -> int:
    from .operation import _OP_COUNTER

    return next(_OP_COUNTER)


def columnar_of(history: History) -> ColumnarHistory:
    """The columnar encoding of ``history``, memoized on the instance."""
    return history.cached("columnar", lambda: ColumnarHistory.from_history(history))


class ClusterArrays:
    """Struct-of-arrays cluster table, sorted like ``build_clusters``.

    ``write[c]`` is the op index of cluster ``c``'s dictating write and
    ``reads[c]`` the ascending op indices of its dictated reads;
    ``min_finish``/``max_start`` are the zone endpoints (``Z.f``/``Z.s̄``),
    ``low``/``high`` their min/max, and ``forward[c]`` the forward-zone flag.
    ``cluster_of_write_ord`` maps a write's ordinal (its rank among writes in
    history order) to its cluster index.
    """

    __slots__ = (
        "num",
        "write",
        "reads",
        "min_finish",
        "max_start",
        "low",
        "high",
        "forward",
        "cluster_of_write_ord",
    )

    @classmethod
    def _build(cls, col: ColumnarHistory) -> "ClusterArrays":
        writes_idx = col.writes_idx
        num = len(writes_idx)
        start = col.start
        finish = col.finish
        dictating = col.dictating
        write_ord = col.write_ord
        is_write = col.is_write
        min_finish = [finish[w] for w in writes_idx]
        max_start = [start[w] for w in writes_idx]
        reads: List[List[int]] = [[] for _ in range(num)]
        for i in range(col.n):
            if is_write[i]:
                continue
            w = dictating[i]
            if w < 0:
                from .errors import HistoryError

                raise HistoryError(
                    f"read #{col.op_ids[i]} has no dictating write; normalise "
                    "the history with repro.core.preprocess.normalize() first"
                )
            ordinal = write_ord[w]
            reads[ordinal].append(i)
            f = finish[i]
            if f < min_finish[ordinal]:
                min_finish[ordinal] = f
            s = start[i]
            if s > max_start[ordinal]:
                max_start[ordinal] = s
        op_ids = col.op_ids
        order = sorted(
            range(num),
            key=lambda o: (
                min(min_finish[o], max_start[o]),
                max(min_finish[o], max_start[o]),
                op_ids[writes_idx[o]],
            ),
        )
        ca = object.__new__(cls)
        ca.num = num
        ca.write = [writes_idx[o] for o in order]
        ca.reads = [reads[o] for o in order]
        ca.min_finish = [min_finish[o] for o in order]
        ca.max_start = [max_start[o] for o in order]
        ca.low = [min(mf, ms) for mf, ms in zip(ca.min_finish, ca.max_start)]
        ca.high = [max(mf, ms) for mf, ms in zip(ca.min_finish, ca.max_start)]
        ca.forward = [mf < ms for mf, ms in zip(ca.min_finish, ca.max_start)]
        cluster_of_write_ord = [0] * num
        for c, o in enumerate(order):
            cluster_of_write_ord[o] = c
        ca.cluster_of_write_ord = cluster_of_write_ord
        return ca

    def cluster_ops(self, cluster_index: int) -> List[int]:
        """All op indices of one cluster (write first, then its reads)."""
        return [self.write[cluster_index]] + self.reads[cluster_index]


# ======================================================================
# Gibbons–Korach sweeps (columnar twin of algorithms.gk)
# ======================================================================
def gk_violation(col: ColumnarHistory) -> Optional[Tuple[str, int, int]]:
    """Columnar Gibbons–Korach violation scan.

    Returns ``(condition, cluster_a, cluster_b)`` with *cluster indices* into
    :meth:`ColumnarHistory.cluster_arrays`, or ``None`` when the history is
    1-atomic.  Mirrors
    :func:`repro.algorithms.gk.find_1atomicity_violation` exactly, including
    which pair of clusters is reported.
    """
    ca = col.cluster_arrays()
    forward = ca.forward
    low = ca.low
    high = ca.high
    # Condition 1: no two forward zones overlap.  The cluster table is sorted
    # by low endpoint, so the forward subsequence is too.
    forward_indices: List[int] = []
    prev = -1
    running_high = float("-inf")
    for c in range(ca.num):
        if not forward[c]:
            continue
        forward_indices.append(c)
        if prev != -1 and low[c] <= running_high:
            return ("forward-overlap", prev, c)
        if high[c] > running_high:
            running_high = high[c]
            prev = c
    # Condition 2: no backward zone contained in a forward zone, via a
    # merge-style scan over the two sorted subsequences.
    fi = 0
    num_forward = len(forward_indices)
    for c in range(ca.num):
        if forward[c]:
            continue
        while fi < num_forward and high[forward_indices[fi]] < low[c]:
            fi += 1
        if fi < num_forward:
            f = forward_indices[fi]
            if low[f] <= low[c] and high[c] <= high[f]:
                return ("backward-in-forward", f, c)
    return None


# ======================================================================
# Chunk decomposition (columnar twin of core.chunks)
# ======================================================================
def chunk_decomposition(
    col: ColumnarHistory,
) -> Tuple[List[Tuple[List[int], List[int]]], List[int], List[Tuple[float, float]]]:
    """Columnar FZF Stage 1.

    Returns ``(chunks, dangling, intervals)`` where each chunk is a pair of
    cluster-index lists ``(forward, backward)`` (forward sorted by zone low
    endpoint — the ``T_F`` order), ``dangling`` lists the cluster indices
    outside every chunk, and ``intervals[i]`` is chunk ``i``'s continuous
    forward-zone interval.  Mirrors
    :func:`repro.core.chunks.compute_chunk_set`.
    """
    ca = col.cluster_arrays()
    low = ca.low
    high = ca.high
    forward_flags = ca.forward
    # Merge overlapping forward zones into chains with continuous unions.
    chains: List[List[int]] = []
    chain_low: List[float] = []
    chain_high: List[float] = []
    for c in range(ca.num):
        if not forward_flags[c]:
            continue
        if chains and low[c] <= chain_high[-1]:
            chains[-1].append(c)
            if high[c] > chain_high[-1]:
                chain_high[-1] = high[c]
        else:
            chains.append([c])
            chain_low.append(low[c])
            chain_high.append(high[c])
    chunk_backward: List[List[int]] = [[] for _ in chains]
    dangling: List[int] = []
    for c in range(ca.num):
        if forward_flags[c]:
            continue
        zone_low = low[c]
        idx = bisect_right(chain_low, zone_low) - 1
        if idx >= 0 and chain_low[idx] <= zone_low and high[c] <= chain_high[idx]:
            chunk_backward[idx].append(c)
        else:
            dangling.append(c)
    chunks = list(zip(chains, chunk_backward))
    intervals = list(zip(chain_low, chain_high))
    return chunks, dangling, intervals


# ======================================================================
# FZF Stage 2/3 (columnar twin of algorithms.fzf)
# ======================================================================
class FZFOutcome:
    """Raw result of the columnar FZF run, before decoding to Operations."""

    __slots__ = ("ok", "witness", "reason", "stats")

    def __init__(self, ok: bool, witness: Optional[List[int]], reason: str, stats: Dict[str, int]):
        self.ok = ok
        self.witness = witness
        self.reason = reason
        self.stats = stats


def _check_viable_columnar(
    col: ColumnarHistory,
    order: Sequence[int],
    ops_local: List[int],
    reads_of_write: Dict[int, List[int]],
) -> Optional[List[int]]:
    """Columnar twin of :func:`repro.algorithms.fzf.check_viable`.

    ``order`` is a candidate sequence of write op indices; ``ops_local`` the
    ascending op indices of the chunk.  Returns the extended witness as op
    indices, or ``None`` when the order is not viable.
    """
    n = len(ops_local)
    pos: Dict[int, int] = {op: p for p, op in enumerate(ops_local)}
    prev = list(range(-1, n - 1))
    nxt = list(range(1, n + 1))
    if n:
        nxt[n - 1] = -1
    tail = n - 1
    removed = bytearray(n)
    remaining = n
    start = col.start
    finish = col.finish
    is_write = col.is_write
    dictating = col.dictating

    segments: List[List[int]] = []
    for oi in range(len(order) - 1, -1, -1):
        w = order[oi]
        pred = order[oi - 1] if oi > 0 else -1
        w_pos = pos.get(w)
        if w_pos is None or removed[w_pos]:
            return None
        container: List[int] = []
        w_finish = finish[w]
        # Operations starting after w's finish form a suffix of the remaining
        # chunk operations (sorted by start).
        j = tail
        while j != -1 and start[ops_local[j]] > w_finish:
            op = ops_local[j]
            nxt_j = prev[j]
            if is_write[op]:
                return None
            dw = dictating[op]
            if dw != w and dw != pred:
                return None
            container.append(op)
            # Unlink j.
            p, nx = prev[j], nxt[j]
            if p != -1:
                nxt[p] = nx
            if nx != -1:
                prev[nx] = p
            else:
                tail = p
            removed[j] = 1
            remaining -= 1
            j = nxt_j
        for r in reads_of_write.get(w, ()):
            rp = pos.get(r)
            if rp is not None and not removed[rp]:
                container.append(r)
                p, nx = prev[rp], nxt[rp]
                if p != -1:
                    nxt[p] = nx
                if nx != -1:
                    prev[nx] = p
                else:
                    tail = p
                removed[rp] = 1
                remaining -= 1
        if not removed[w_pos]:
            p, nx = prev[w_pos], nxt[w_pos]
            if p != -1:
                nxt[p] = nx
            if nx != -1:
                prev[nx] = p
            else:
                tail = p
            removed[w_pos] = 1
            remaining -= 1
        container.sort()
        container.insert(0, w)
        segments.append(container)
    if remaining:
        return None
    witness: List[int] = []
    for segment in reversed(segments):
        witness.extend(segment)
    return witness


def _candidate_orders_columnar(
    tf: Tuple[int, ...], backward_writes: List[int]
) -> List[Tuple[int, ...]]:
    """Columnar twin of :func:`repro.algorithms.fzf.candidate_orders`."""
    if len(tf) >= 2:
        tf_prime = (tf[1], tf[0]) + tf[2:]
    else:
        tf_prime = tf
    b = len(backward_writes)
    raw: List[Tuple[int, ...]]
    if b == 0:
        raw = [tf, tf_prime]
    elif b == 1:
        w = backward_writes[0]
        raw = [(w,) + tf, tf + (w,), (w,) + tf_prime, tf_prime + (w,)]
    elif b == 2:
        w1, w2 = backward_writes
        raw = [
            (w1,) + tf + (w2,),
            (w2,) + tf + (w1,),
            (w1,) + tf_prime + (w2,),
            (w2,) + tf_prime + (w1,),
        ]
    else:
        raw = []
    seen = set()
    unique: List[Tuple[int, ...]] = []
    for order in raw:
        if order not in seen:
            seen.add(order)
            unique.append(order)
    return unique


def fzf_verdict(col: ColumnarHistory) -> FZFOutcome:
    """Columnar FZF over an anomaly-free, non-empty history.

    Produces the same verdict, reason string and stats as
    :func:`repro.algorithms.fzf.verify_2atomic_fzf` (empty/anomalous inputs
    are the caller's responsibility, as in the object path); the witness is
    returned as op indices for the caller to decode.
    """
    ca = col.cluster_arrays()
    chunks, dangling, intervals = chunk_decomposition(col)
    stats = {
        "chunks": len(chunks),
        "dangling_clusters": len(dangling),
        "orders_tested": 0,
    }
    orders_tested = 0
    reads_of_write: Optional[Dict[int, List[int]]] = None
    write_of = ca.write
    reads_of = ca.reads
    low = ca.low

    pieces: List[Tuple[float, List[int]]] = []
    for chunk_index, (forward_clusters, backward_clusters) in enumerate(chunks):
        if len(forward_clusters) == 1 and not backward_clusters:
            # A lone forward cluster is always viable: its single candidate
            # order places the write first and its reads after (the object
            # path tests exactly one order here and always succeeds).
            orders_tested += 1
            c = forward_clusters[0]
            # ca.reads lists are already ascending, so the object path's
            # container sort is a no-op here.
            pieces.append((low[c], [write_of[c]] + reads_of[c]))
            continue
        if len(backward_clusters) >= 3:
            interval_low, interval_high = intervals[chunk_index]
            stats["orders_tested"] = orders_tested
            return FZFOutcome(
                False,
                None,
                (
                    f"chunk spanning [{interval_low:g}, {interval_high:g}] "
                    f"contains {len(backward_clusters)} backward clusters (>= 3), "
                    "so no viable write order exists (Lemma 4.3)"
                ),
                stats,
            )
        if reads_of_write is None:
            reads_of_write = {write_of[c]: reads_of[c] for c in range(ca.num)}
        chunk_ops: List[int] = []
        for c in forward_clusters:
            chunk_ops.append(write_of[c])
            chunk_ops.extend(reads_of[c])
        for c in backward_clusters:
            chunk_ops.append(write_of[c])
            chunk_ops.extend(reads_of[c])
        chunk_ops.sort()
        tf = tuple(write_of[c] for c in forward_clusters)
        backward_writes = [write_of[c] for c in backward_clusters]
        chunk_witness: Optional[List[int]] = None
        for order in _candidate_orders_columnar(tf, backward_writes):
            orders_tested += 1
            extended = _check_viable_columnar(col, order, chunk_ops, reads_of_write)
            if extended is not None:
                chunk_witness = extended
                break
        if chunk_witness is None:
            interval_low, interval_high = intervals[chunk_index]
            stats["orders_tested"] = orders_tested
            return FZFOutcome(
                False,
                None,
                (
                    f"no candidate write order is viable for the chunk spanning "
                    f"[{interval_low:g}, {interval_high:g}] "
                    f"({len(forward_clusters)} forward / "
                    f"{len(backward_clusters)} backward clusters)"
                ),
                stats,
            )
        # The chunk's minimum zone low endpoint is its first forward
        # cluster's: backward clusters only join a chunk whose interval
        # already covers their zone.
        pieces.append((low[forward_clusters[0]], chunk_witness))

    for c in dangling:
        pieces.append((low[c], [write_of[c]] + reads_of[c]))
    pieces.sort(key=lambda item: item[0])
    witness: List[int] = []
    for _, piece in pieces:
        witness.extend(piece)
    stats["orders_tested"] = orders_tested
    return FZFOutcome(True, witness, "", stats)
