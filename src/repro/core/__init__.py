"""Core data model and unified verification API.

The ``core`` package contains everything the verification algorithms share:
the operation/history model of Section II, the cluster/zone/chunk machinery
of Section IV, anomaly detection and normalisation (Section II-C), the
result type, and the top-level :func:`repro.core.api.verify` entry point.
"""

from .api import MinimalKBound, minimal_k, minimal_k_bound, verify, verify_trace
from .builder import HistoryBuilder, TraceBuilder
from .columnar import ColumnarHistory, columnar_of
from .chunks import Chunk, ChunkSet, compute_chunk_set
from .errors import (
    AnomalyError,
    DuplicateValueError,
    HistoryError,
    MalformedOperationError,
    ReductionError,
    ReproError,
    SimulationError,
    TraceFormatError,
    VerificationError,
)
from .history import History, MultiHistory
from .operation import Operation, OpType, read, write
from .preprocess import Anomaly, AnomalyKind, find_anomalies, has_anomalies, normalize
from .result import StreamVerdict, VerificationResult
from .windows import Window, WindowAssembler, WindowPolicy, iter_windows
from .zones import Cluster, Zone, build_clusters, zones_of

__all__ = [
    "Anomaly",
    "AnomalyError",
    "AnomalyKind",
    "ColumnarHistory",
    "Chunk",
    "ChunkSet",
    "Cluster",
    "DuplicateValueError",
    "History",
    "HistoryBuilder",
    "HistoryError",
    "MalformedOperationError",
    "MinimalKBound",
    "MultiHistory",
    "Operation",
    "OpType",
    "ReductionError",
    "ReproError",
    "SimulationError",
    "StreamVerdict",
    "TraceBuilder",
    "TraceFormatError",
    "VerificationError",
    "VerificationResult",
    "Window",
    "WindowAssembler",
    "WindowPolicy",
    "Zone",
    "build_clusters",
    "columnar_of",
    "compute_chunk_set",
    "find_anomalies",
    "has_anomalies",
    "iter_windows",
    "minimal_k",
    "minimal_k_bound",
    "normalize",
    "read",
    "verify",
    "verify_trace",
    "write",
    "zones_of",
]
