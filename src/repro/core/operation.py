"""Operation model for read/write register histories (Section II-A).

An *operation* is an invocation of ``read`` or ``write`` on a single register.
It carries a start time, a finish time, a type and a value.  Two operations
are related by the *precedes* partial order iff one finishes before the other
starts; otherwise they are concurrent.

The classes here are deliberately small, immutable and hashable so they can be
used as graph nodes, dictionary keys and members of frozensets throughout the
verification algorithms.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Optional

from .errors import MalformedOperationError

__all__ = [
    "OpType",
    "Operation",
    "read",
    "write",
    "precedes",
    "concurrent",
    "trusted_operation",
    "ensure_op_ids_above",
]

_OP_COUNTER = itertools.count()


def ensure_op_ids_above(minimum: int) -> None:
    """Advance the auto-id counter past ``minimum``.

    Checkpoint restoration rehydrates operations that carry op_ids assigned by
    a *previous* process, while this process's counter restarts at zero; a
    freshly decoded operation could then collide with a restored one (equality
    and hashing are id-based).  Restorers call this with the largest restored
    id so every id minted afterwards is unique.  Consumes at most one id.
    """
    global _OP_COUNTER
    if next(_OP_COUNTER) <= minimum:
        _OP_COUNTER = itertools.count(minimum + 1)


class OpType(enum.Enum):
    """The type of an operation: a read or a write."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=False)
class Operation:
    """A single read or write operation on a register.

    Attributes
    ----------
    op_type:
        Whether the operation is a read or a write.
    value:
        The value written (for writes) or returned (for reads).  The paper
        assumes values are unique per write; the library enforces this when a
        :class:`repro.core.history.History` is constructed.
    start:
        Invocation timestamp.  Timestamps are floats on a global clock.
    finish:
        Response timestamp.  Must be strictly greater than ``start``.
    key:
        Optional register/key identifier.  k-atomicity is a local property, so
        multi-key traces are split per key before verification.
    client:
        Optional identifier of the client/process that issued the operation.
    op_id:
        A unique identifier.  Auto-assigned when not given; used only for
        reporting and stable tie-breaking, never for algorithmic decisions.
    weight:
        Positive integer weight of a write, used by the weighted k-AV problem
        (Section V).  Ignored for reads.  Defaults to 1, which makes plain
        k-AV the special case of k-WAV described in the paper.
    """

    op_type: OpType
    value: Hashable
    start: float
    finish: float
    key: Optional[Hashable] = None
    client: Optional[Hashable] = None
    op_id: int = field(default_factory=lambda: next(_OP_COUNTER))
    weight: int = 1

    def __post_init__(self) -> None:
        if self.finish <= self.start:
            raise MalformedOperationError(
                f"operation {self.op_id!r} has finish {self.finish!r} <= start "
                f"{self.start!r}; operations must take a positive amount of time"
            )
        if self.op_type is OpType.WRITE and self.weight < 1:
            raise MalformedOperationError(
                f"write {self.op_id!r} has non-positive weight {self.weight!r}; "
                "weights must be positive integers (Section V)"
            )

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        """True iff this operation is a read."""
        return self.op_type is OpType.READ

    @property
    def is_write(self) -> bool:
        """True iff this operation is a write."""
        return self.op_type is OpType.WRITE

    @property
    def interval(self) -> tuple:
        """The ``(start, finish)`` interval of the operation."""
        return (self.start, self.finish)

    def precedes(self, other: "Operation") -> bool:
        """True iff this operation finishes before ``other`` starts."""
        return self.finish < other.start

    def concurrent_with(self, other: "Operation") -> bool:
        """True iff neither operation precedes the other."""
        return not self.precedes(other) and not other.precedes(self)

    def with_times(self, start: float = None, finish: float = None) -> "Operation":
        """Return a copy of this operation with adjusted start/finish times.

        Used by the preprocessing step of Section II-C that shortens writes so
        that each write finishes before any of its dictated reads.
        """
        new_start = self.start if start is None else start
        new_finish = self.finish if finish is None else finish
        return replace(self, start=new_start, finish=new_finish)

    def __hash__(self) -> int:
        return hash(self.op_id)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.op_id == other.op_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "w" if self.is_write else "r"
        key = "" if self.key is None else f"{self.key}:"
        return (
            f"{kind}({key}{self.value!r})[{self.start:g},{self.finish:g}]#{self.op_id}"
        )


# ----------------------------------------------------------------------
# Factory helpers
# ----------------------------------------------------------------------
_object_new = object.__new__
_object_setattr = object.__setattr__


def trusted_operation(
    op_type: OpType,
    value: Hashable,
    start: float,
    finish: float,
    key: Optional[Hashable] = None,
    client: Optional[Hashable] = None,
    op_id: Optional[int] = None,
    weight: int = 1,
) -> Operation:
    """Build an :class:`Operation` without re-running ``__post_init__``.

    Internal fast path for *trusted* producers — the columnar decoder, the
    shard codec, and the streaming ingestion layer — whose inputs either were
    validated once already or are validated inline by the caller.  Skipping the
    dataclass ``__init__``/``__post_init__`` machinery roughly halves
    construction cost, which matters when materialising 100k+ operations.

    The caller is responsible for the invariants ``finish > start`` and
    ``weight >= 1``; external (untrusted) inputs must keep going through
    :class:`Operation` directly.
    """
    op = _object_new(Operation)
    _object_setattr(op, "op_type", op_type)
    _object_setattr(op, "value", value)
    _object_setattr(op, "start", start)
    _object_setattr(op, "finish", finish)
    _object_setattr(op, "key", key)
    _object_setattr(op, "client", client)
    _object_setattr(op, "op_id", next(_OP_COUNTER) if op_id is None else op_id)
    _object_setattr(op, "weight", weight)
    return op


def read(
    value: Hashable,
    start: float,
    finish: float,
    *,
    key: Optional[Hashable] = None,
    client: Optional[Hashable] = None,
    op_id: Optional[int] = None,
) -> Operation:
    """Create a read operation.

    Example
    -------
    >>> r = read("a", 1.0, 2.0)
    >>> r.is_read
    True
    """
    kwargs = dict(op_type=OpType.READ, value=value, start=start, finish=finish,
                  key=key, client=client)
    if op_id is not None:
        kwargs["op_id"] = op_id
    return Operation(**kwargs)


def write(
    value: Hashable,
    start: float,
    finish: float,
    *,
    key: Optional[Hashable] = None,
    client: Optional[Hashable] = None,
    op_id: Optional[int] = None,
    weight: int = 1,
) -> Operation:
    """Create a write operation.

    Example
    -------
    >>> w = write("a", 0.0, 0.5)
    >>> w.is_write
    True
    """
    kwargs = dict(op_type=OpType.WRITE, value=value, start=start, finish=finish,
                  key=key, client=client, weight=weight)
    if op_id is not None:
        kwargs["op_id"] = op_id
    return Operation(**kwargs)


def precedes(op1: Operation, op2: Operation) -> bool:
    """Module-level form of :meth:`Operation.precedes` (``op1 < op2``)."""
    return op1.precedes(op2)


def concurrent(op1: Operation, op2: Operation) -> bool:
    """Module-level form of :meth:`Operation.concurrent_with`."""
    return op1.concurrent_with(op2)
