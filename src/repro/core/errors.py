"""Exception hierarchy for the k-atomicity-verification library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish malformed inputs (:class:`HistoryError` and its
subclasses) from misuse of the API (:class:`VerificationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class HistoryError(ReproError):
    """A history violates a structural requirement of the model (Section II)."""


class MalformedOperationError(HistoryError):
    """An operation has an invalid shape (e.g. finish time before start time)."""


class DuplicateValueError(HistoryError):
    """Two writes assign the same value.

    The paper assumes writes are uniquely valued (Section II-C); without that
    assumption even 1-AV is NP-complete, so the library refuses such input
    rather than silently producing an unsound answer.
    """


class AnomalyError(HistoryError):
    """The history contains an anomaly that trivially breaks k-atomicity.

    The two anomalies from Section II-C are a read without a dictating write
    and a read that precedes its dictating write.  The anomaly detector in
    :mod:`repro.core.preprocess` reports them; algorithms raise this error if
    they are handed a history that still contains one.
    """

    def __init__(self, message: str, anomalies=None):
        super().__init__(message)
        #: The list of :class:`repro.core.preprocess.Anomaly` objects found.
        self.anomalies = list(anomalies) if anomalies is not None else []


class VerificationError(ReproError):
    """The verification API was used incorrectly (e.g. unsupported ``k``)."""


class SimulationError(ReproError):
    """The discrete-event simulator was configured inconsistently."""


class ReductionError(ReproError):
    """A problem reduction received an invalid source instance."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed into a history."""


class StateError(ReproError):
    """A durable state-store operation failed (missing entry, backend I/O).

    Raised by the pluggable :mod:`repro.state` backends; the checkpoint
    layer re-wraps it in :class:`ServiceError` so the audit service's
    in-band error contract is unchanged by the choice of backend.
    """


class CorruptStateError(StateError):
    """A stored blob or segment failed validation (torn write, bad checksum).

    The durability contract of :class:`repro.state.StateStore` is that a
    reader never observes partial state: a value interrupted mid-write
    either loads as the previous value or raises this typed error.
    """


class ServiceError(ReproError):
    """The audit service (or its wire protocol) was used incorrectly.

    Service errors carry two wire-visible attributes: ``code``, a short
    machine-readable tag travelling in error frames, and ``retryable``,
    which tells a client whether reconnecting (possibly with ``resume``)
    can succeed — the distinction the self-healing client keys on.
    """

    #: Machine-readable error code for the wire ("" = unspecified).
    code: str = ""
    #: Whether a client may retry the session later.
    retryable: bool = False


class RetryableServiceError(ServiceError):
    """A service error where reconnecting (with backoff) is expected to work."""

    retryable = True


class ServerOverloaded(RetryableServiceError):
    """The server is shedding load; retry after a backoff."""

    code = "overloaded"


class SessionIdleTimeout(RetryableServiceError):
    """The per-session idle watchdog fired; any checkpoint is kept for resume."""

    code = "idle_timeout"


class WorkerCrashLoopError(ServiceError):
    """A pool worker kept dying on respawn; its shards are failed, not retried.

    Raised instead of spinning when crash-loop detection trips (N respawns
    within T seconds) — the shard state is preserved in the parent, but the
    pool refuses to feed the affected worker until it is resized or
    restarted.
    """

    code = "crash_loop"


class ServerDraining(RetryableServiceError):
    """The server drained this session (graceful shutdown).

    Carries the resume token from the ``draining`` frame: the session id,
    how many operations the server checkpointed, and whether a checkpoint
    store is attached (``resumable``) — everything a client needs to
    reconnect with ``resume: true`` once a replacement server is up.
    """

    code = "draining"

    def __init__(
        self,
        message: str = "server is draining",
        *,
        session=None,
        ops: int = 0,
        checkpoints: int = 0,
        resumable: bool = False,
    ):
        super().__init__(message)
        #: Session id to resume under.
        self.session = session
        #: Operations the server had fed (and checkpointed) at drain time.
        self.ops = int(ops)
        #: Checkpoints the session has persisted.
        self.checkpoints = int(checkpoints)
        #: True iff the server has a checkpoint store to resume from.
        self.resumable = bool(resumable)
