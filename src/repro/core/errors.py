"""Exception hierarchy for the k-atomicity-verification library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish malformed inputs (:class:`HistoryError` and its
subclasses) from misuse of the API (:class:`VerificationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class HistoryError(ReproError):
    """A history violates a structural requirement of the model (Section II)."""


class MalformedOperationError(HistoryError):
    """An operation has an invalid shape (e.g. finish time before start time)."""


class DuplicateValueError(HistoryError):
    """Two writes assign the same value.

    The paper assumes writes are uniquely valued (Section II-C); without that
    assumption even 1-AV is NP-complete, so the library refuses such input
    rather than silently producing an unsound answer.
    """


class AnomalyError(HistoryError):
    """The history contains an anomaly that trivially breaks k-atomicity.

    The two anomalies from Section II-C are a read without a dictating write
    and a read that precedes its dictating write.  The anomaly detector in
    :mod:`repro.core.preprocess` reports them; algorithms raise this error if
    they are handed a history that still contains one.
    """

    def __init__(self, message: str, anomalies=None):
        super().__init__(message)
        #: The list of :class:`repro.core.preprocess.Anomaly` objects found.
        self.anomalies = list(anomalies) if anomalies is not None else []


class VerificationError(ReproError):
    """The verification API was used incorrectly (e.g. unsupported ``k``)."""


class SimulationError(ReproError):
    """The discrete-event simulator was configured inconsistently."""


class ReductionError(ReproError):
    """A problem reduction received an invalid source instance."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed into a history."""


class ServiceError(ReproError):
    """The audit service (or its wire protocol) was used incorrectly."""
