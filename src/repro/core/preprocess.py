"""Anomaly detection and history normalisation (Section II-C).

The verification algorithms assume:

1. every read has a dictating write present in the history,
2. no read precedes its dictating write,
3. every write finishes before each of its dictated reads finishes
   (enforceable without loss of generality by *shortening* writes),
4. all start/finish timestamps are distinct.

:func:`find_anomalies` detects violations of (1) and (2), which make a history
trivially non-k-atomic for every ``k``.  :func:`normalize` enforces (3) and
(4) by adjusting timestamps, exactly as the paper prescribes, and raises if
(1) or (2) is violated (unless asked to drop the offending reads instead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .errors import AnomalyError
from .history import History
from .operation import Operation

__all__ = [
    "AnomalyKind",
    "Anomaly",
    "find_anomalies",
    "has_anomalies",
    "shorten_writes",
    "perturb_equal_timestamps",
    "normalize",
]


class AnomalyKind(enum.Enum):
    """The anomalies of Section II-C that rule out k-atomicity outright."""

    READ_WITHOUT_WRITE = "read-without-dictating-write"
    READ_BEFORE_WRITE = "read-precedes-dictating-write"


@dataclass(frozen=True)
class Anomaly:
    """A single anomaly found in a history."""

    kind: AnomalyKind
    read: Operation
    write: Optional[Operation] = None

    def describe(self) -> str:
        """A human-readable description of the anomaly."""
        if self.kind is AnomalyKind.READ_WITHOUT_WRITE:
            return (
                f"read #{self.read.op_id} returned value {self.read.value!r} "
                "which no write in the history assigned"
            )
        return (
            f"read #{self.read.op_id} of value {self.read.value!r} finished at "
            f"{self.read.finish:g}, before its dictating write #{self.write.op_id} "
            f"started at {self.write.start:g}"
        )


def _scan_anomalies(history: History) -> List[Anomaly]:
    anomalies: List[Anomaly] = []
    for r in history.reads:
        w = history.dictating_write(r)
        if w is None:
            anomalies.append(Anomaly(AnomalyKind.READ_WITHOUT_WRITE, r))
        elif r.precedes(w):
            anomalies.append(Anomaly(AnomalyKind.READ_BEFORE_WRITE, r, w))
    return anomalies


def find_anomalies(history: History) -> List[Anomaly]:
    """Return all Section II-C anomalies present in ``history``.

    An anomaly is either a read whose value was never written, or a read that
    *precedes* its dictating write (finishes before the write starts).  Either
    one makes the history non-k-atomic for every ``k``, so the verification
    algorithms require the history to be anomaly-free.  The scan is memoized
    on the history; treat the returned list as read-only.
    """
    return history.cached("anomalies", lambda: _scan_anomalies(history))


def has_anomalies(history: History) -> bool:
    """True iff :func:`find_anomalies` would return a non-empty list."""
    cached = history._derived.get("anomalies")
    if cached is not None:
        return bool(cached)
    for r in history.reads:
        w = history.dictating_write(r)
        if w is None or r.precedes(w):
            return True
    history._derived["anomalies"] = []
    return False


def shorten_writes(history: History, *, epsilon: float = 1e-9) -> History:
    """Enforce the assumption that a write ends before its dictated reads end.

    Section II-C: "we assume that a write ends before any of its dictated
    reads.  If a given history does not satisfy this assumption, we can
    enforce it by shortening writes so that their finish time is slightly
    smaller than the minimum finish time of their dictated reads."  The
    shortening never moves a write's finish before its own start (the model
    guarantees this is possible because a read cannot precede its dictating
    write in an anomaly-free history).
    """
    replacements = {}
    for w in history.writes:
        reads = history.dictated_reads(w)
        if not reads:
            continue
        min_read_finish = min(r.finish for r in reads)
        if w.finish < min_read_finish:
            continue
        new_finish = min_read_finish - epsilon
        if new_finish <= w.start:
            # Keep the write non-degenerate; place the finish just after the
            # start but still before the read finish (possible because the
            # read finishes after the write starts in anomaly-free input).
            new_finish = w.start + (min_read_finish - w.start) / 2.0
            if new_finish <= w.start:
                # Degenerate borderline case: a dictated read finishes at (or
                # numerically indistinguishably after) the write's start, so
                # no positive-length shortening exists.  Leave the write as is
                # and let the timestamp perturbation separate the tie.
                continue
        replacements[w] = w.with_times(finish=new_finish)
    if not replacements:
        return history
    ops = [replacements.get(op, op) for op in history.operations]
    return History(ops, key=history.key)


def perturb_equal_timestamps(history: History, *, epsilon: float = 1e-9) -> History:
    """Make all start/finish timestamps distinct.

    The model assumes unique timestamps (Section II-C).  Real traces often
    contain ties because of coarse clocks; this helper breaks ties by nudging
    later events forward by multiples of ``epsilon`` in a deterministic order
    (timestamp, then operation id, finishes before starts).  The perturbation
    is strictly order-preserving for already-distinct timestamps.
    """
    events: List[Tuple[float, int, int, Operation, str]] = []
    for op in history.operations:
        events.append((op.start, 0, op.op_id, op, "start"))
        events.append((op.finish, 1, op.op_id, op, "finish"))
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    seen = set()
    new_times = {}
    for t, _, _, op, which in events:
        t_new = t
        while t_new in seen:
            t_new += epsilon
        seen.add(t_new)
        new_times[(op.op_id, which)] = t_new

    ops = []
    changed = False
    for op in history.operations:
        s = new_times[(op.op_id, "start")]
        f = new_times[(op.op_id, "finish")]
        if s != op.start or f != op.finish:
            changed = True
            if f <= s:
                f = s + epsilon
            ops.append(op.with_times(start=s, finish=f))
        else:
            ops.append(op)
    if not changed:
        return history
    return History(ops, key=history.key)


def normalize(
    history: History,
    *,
    drop_anomalous_reads: bool = False,
    epsilon: float = 1e-9,
) -> History:
    """Produce a history satisfying every Section II-C assumption.

    Steps, in order:

    1. detect anomalies; raise :class:`~repro.core.errors.AnomalyError`
       (or drop the anomalous reads if ``drop_anomalous_reads=True``),
    2. break timestamp ties,
    3. shorten writes so they finish strictly before their dictated reads
       finish,
    4. break timestamp ties once more (shortening may land a write's finish
       exactly on an existing timestamp; the perturbation preserves the strict
       order of distinct timestamps, so it cannot undo step 3).

    The result is suitable input for every verifier in
    :mod:`repro.algorithms`.

    With the default options the result is memoized on the input history (and
    the output normalises to itself), so GK, FZF and the per-k staleness
    sweep pay the normalisation cost once per history rather than once per
    verifier call.
    """
    default_args = not drop_anomalous_reads and epsilon == 1e-9
    if default_args:
        cached = history._derived.get("normalized")
        if cached is not None:
            return cached
    anomalies = find_anomalies(history)
    if anomalies:
        if not drop_anomalous_reads:
            raise AnomalyError(
                f"history contains {len(anomalies)} anomalies that rule out "
                "k-atomicity for every k; pass drop_anomalous_reads=True to "
                "remove the offending reads instead",
                anomalies,
            )
        bad_reads = {a.read for a in anomalies}
        history = history.without(bad_reads)
    result = perturb_equal_timestamps(history, epsilon=epsilon)
    result = shorten_writes(result, epsilon=epsilon)
    result = perturb_equal_timestamps(result, epsilon=epsilon)
    if default_args:
        # Normalisation is idempotent: distinct timestamps stay distinct and
        # already-shortened writes are untouched, so the output may safely
        # normalise to itself.
        history._derived["normalized"] = result
        result._derived.setdefault("normalized", result)
    return result
