"""Clusters and zones (Gibbons–Korach terminology, Section IV).

A *cluster* is a write together with its dictated reads.  Its *zone* is the
time interval between the minimum finish time of any operation in the cluster
(``Z.f``) and the maximum start time of any such operation (``Z.s_bar``).  A
zone is *forward* if ``Z.f < Z.s_bar`` and *backward* otherwise.  The low and
high endpoints are the min and max of the two quantities respectively.

These definitions drive both the Gibbons–Korach 1-AV conditions
(:mod:`repro.algorithms.gk`) and the chunk decomposition used by FZF
(:mod:`repro.core.chunks`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .errors import HistoryError
from .history import History
from .operation import Operation

__all__ = ["Zone", "Cluster", "build_clusters", "zones_of", "zone_table"]


@dataclass(frozen=True)
class Zone:
    """The zone of a cluster.

    Attributes
    ----------
    min_finish:
        ``Z.f`` — the minimum finish time of any operation in the cluster.
    max_start:
        ``Z.s_bar`` — the maximum start time of any operation in the cluster.
    """

    min_finish: float
    max_start: float

    @property
    def is_forward(self) -> bool:
        """True iff ``Z.f < Z.s_bar`` (the zone covers a real time interval)."""
        return self.min_finish < self.max_start

    @property
    def is_backward(self) -> bool:
        """True iff the zone is not forward."""
        return not self.is_forward

    @property
    def low(self) -> float:
        """``Z.l = min(Z.f, Z.s_bar)`` — the low endpoint."""
        return min(self.min_finish, self.max_start)

    @property
    def high(self) -> float:
        """``Z.h = max(Z.f, Z.s_bar)`` — the high endpoint."""
        return max(self.min_finish, self.max_start)

    @property
    def length(self) -> float:
        """The length ``Z.h - Z.l`` of the zone."""
        return self.high - self.low

    def overlaps(self, other: "Zone") -> bool:
        """True iff the closed intervals ``[low, high]`` intersect."""
        return self.low <= other.high and other.low <= self.high

    def contains_zone(self, other: "Zone") -> bool:
        """True iff ``other`` lies entirely within this zone's interval."""
        return self.low <= other.low and other.high <= self.high

    def contains_point(self, t: float) -> bool:
        """True iff the point ``t`` lies in ``[low, high]``."""
        return self.low <= t <= self.high

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "FZ" if self.is_forward else "BZ"
        return f"{kind}[{self.low:g},{self.high:g}]"


@dataclass(frozen=True)
class Cluster:
    """A write and its dictated reads, together with the derived zone."""

    write: Operation
    reads: Tuple[Operation, ...]
    zone: Zone

    @property
    def value(self):
        """The value assigned by the dictating write."""
        return self.write.value

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations of the cluster (write first, then reads)."""
        return (self.write,) + self.reads

    @property
    def is_forward(self) -> bool:
        """True iff the cluster's zone is a forward zone."""
        return self.zone.is_forward

    @property
    def is_backward(self) -> bool:
        """True iff the cluster's zone is a backward zone."""
        return self.zone.is_backward

    @property
    def size(self) -> int:
        """Number of operations in the cluster."""
        return 1 + len(self.reads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster value={self.value!r} reads={len(self.reads)} zone={self.zone!r}>"


def _zone_for(write: Operation, reads: Tuple[Operation, ...]) -> Zone:
    ops = (write,) + reads
    min_finish = min(op.finish for op in ops)
    max_start = max(op.start for op in ops)
    return Zone(min_finish=min_finish, max_start=max_start)


def build_clusters(history: History) -> List[Cluster]:
    """Build the cluster list of a history, sorted by zone low endpoint.

    Every write yields exactly one cluster (possibly with zero reads).  The
    reads of a cluster are the dictated reads of the write.  The history must
    be anomaly-free; reads without a dictating write raise
    :class:`~repro.core.errors.HistoryError`.

    The list is memoized on the history instance, so GK, the chunk
    decomposition and FZF share one computation; treat it as read-only.
    """
    return history.cached("cluster_list", lambda: _build_clusters_uncached(history))


def _build_clusters_uncached(history: History) -> List[Cluster]:
    for r in history.reads:
        if history.dictating_write(r) is None:
            raise HistoryError(
                f"read #{r.op_id} has no dictating write; normalise the history "
                "with repro.core.preprocess.normalize() first"
            )
    clusters = []
    for w in history.writes:
        reads = history.dictated_reads(w)
        clusters.append(Cluster(write=w, reads=reads, zone=_zone_for(w, reads)))
    clusters.sort(key=lambda cl: (cl.zone.low, cl.zone.high, cl.write.op_id))
    return clusters


def zones_of(history: History) -> List[Zone]:
    """Return the zones of all clusters, sorted by low endpoint."""
    return [cl.zone for cl in build_clusters(history)]


def zone_table(history: History) -> Dict[Operation, Zone]:
    """Return a mapping from each dictating write to its cluster's zone."""
    return {cl.write: cl.zone for cl in build_clusters(history)}
